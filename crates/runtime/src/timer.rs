//! Hierarchical timer wheel with pluggable clocks.
//!
//! Four levels of 64 slots at a 1 ms tick give O(1) insertion and
//! cascading coverage from 1 ms out to ~4.6 hours; anything later parks
//! in the top level and re-cascades. The wheel itself is clock-agnostic —
//! it only ever sees virtual ticks — and three drivers map virtual time
//! onto the host:
//!
//! * [`Clock::Manual`] — time moves only via [`Timer::advance`]; this is
//!   what deterministic unit tests use.
//! * [`Clock::Wall`] — a driver thread advances the wheel in real time.
//! * [`Clock::Scaled`] — like `Wall`, but virtual time runs `factor`×
//!   faster than real time. The gateway runs its *simulated* retry-after
//!   and backoff waits on a scaled clock, so a 50 ms simulated shed wait
//!   parks the session for 50 ms ÷ factor of real time: pacing survives,
//!   wall-clock seconds do not.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Virtual seconds per tick (1 ms).
const TICK_SECS: f64 = 1e-3;
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 4;
/// Ticks covered by the whole wheel; farther deadlines clamp into the top
/// level and re-cascade as time approaches them.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// How a [`Timer`] maps virtual time onto the host clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Clock {
    /// No driver thread; only [`Timer::advance`] moves time.
    Manual,
    /// Driver thread tracks real time 1:1.
    Wall,
    /// Driver thread runs virtual time `factor`× faster than real time
    /// (`factor` must be finite and > 0).
    Scaled(f64),
}

/// One registered sleep, shared between the wheel and its [`Sleep`] future.
struct SleepState {
    fired: bool,
    cancelled: bool,
    registered: bool,
    waker: Option<Waker>,
}

struct Entry {
    deadline: u64,
    sleep: Arc<Mutex<SleepState>>,
}

struct Wheel {
    tick: u64,
    pending: usize,
    slots: Vec<Vec<VecDeque<Entry>>>,
    stopped: bool,
}

impl Wheel {
    fn new() -> Self {
        Self {
            tick: 0,
            pending: 0,
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            stopped: false,
        }
    }

    /// Level and slot for a deadline, given the current tick. A `delta` of
    /// zero (a cascaded entry that is due right now) lands in the current
    /// level-0 slot, which the advance loop drains immediately after
    /// cascading.
    fn place(&self, deadline: u64) -> (usize, usize) {
        let delta = deadline.saturating_sub(self.tick);
        let clamped = self.tick + delta.min(HORIZON - 1);
        for level in 0..LEVELS {
            if delta < 1 << (SLOT_BITS * (level as u32 + 1)) {
                let slot = (clamped >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                return (level, slot);
            }
        }
        let slot = (clamped >> (SLOT_BITS * (LEVELS as u32 - 1))) as usize & (SLOTS - 1);
        (LEVELS - 1, slot)
    }

    fn insert(&mut self, deadline: u64, sleep: Arc<Mutex<SleepState>>) {
        let (level, slot) = self.place(deadline);
        self.slots[level][slot].push_back(Entry { deadline, sleep });
        self.pending += 1;
    }

    /// Earliest live deadline, or `None` when nothing is pending.
    fn next_deadline(&self) -> Option<u64> {
        let mut earliest = None;
        for level in &self.slots {
            for slot in level {
                for entry in slot {
                    let state = entry.sleep.lock().unwrap_or_else(|e| e.into_inner());
                    if state.cancelled || state.fired {
                        continue;
                    }
                    earliest = Some(match earliest {
                        None => entry.deadline,
                        Some(e) if entry.deadline < e => entry.deadline,
                        Some(e) => e,
                    });
                }
            }
        }
        earliest
    }

    /// Advances virtual time to `target` ticks, collecting the wakers of
    /// every sleep that came due.
    fn advance_to(&mut self, target: u64, fired: &mut Vec<Waker>) {
        while self.tick < target {
            if self.pending == 0 {
                self.tick = target;
                return;
            }
            self.tick += 1;
            let now = self.tick;
            // Cascade each higher level whose slot boundary we just
            // crossed, innermost first.
            for level in 1..LEVELS {
                if now.trailing_zeros() < SLOT_BITS * level as u32 {
                    break;
                }
                let slot = (now >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                let entries: Vec<Entry> = self.slots[level][slot].drain(..).collect();
                for entry in entries {
                    // Cancelled sleeps already left the pending count; drop
                    // them here instead of re-inserting.
                    let cancelled = entry
                        .sleep
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .cancelled;
                    if cancelled {
                        continue;
                    }
                    self.pending -= 1;
                    self.insert(entry.deadline, entry.sleep);
                }
            }
            let slot = now as usize & (SLOTS - 1);
            while let Some(entry) = self.slots[0][slot].pop_front() {
                let mut state = entry.sleep.lock().unwrap_or_else(|e| e.into_inner());
                if state.cancelled {
                    continue;
                }
                self.pending -= 1;
                state.fired = true;
                if let Some(waker) = state.waker.take() {
                    fired.push(waker);
                }
            }
        }
    }
}

struct TimerInner {
    wheel: Mutex<Wheel>,
    changed: Condvar,
    clock: Clock,
    epoch: Instant,
}

/// A cloneable handle to one timer wheel.
///
/// Created via [`Timer::manual`], [`Timer::wall`], or [`Timer::scaled`];
/// hand out clones freely. Wall/scaled timers own a driver thread —
/// dropping the last handle stops it.
#[derive(Clone)]
pub struct Timer {
    inner: Arc<TimerInner>,
    // Present on the original handle of a wall/scaled timer, held only
    // for its `Drop`: joining happens when the last clone drops the Arc.
    _driver: Option<Arc<DriverGuard>>,
}

struct DriverGuard {
    inner: Arc<TimerInner>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for DriverGuard {
    fn drop(&mut self) {
        {
            let mut wheel = self.inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
            wheel.stopped = true;
        }
        self.inner.changed.notify_all();
        if let Some(handle) = self.handle.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = handle.join();
        }
    }
}

impl Timer {
    /// A timer whose time moves only through [`Timer::advance`].
    pub fn manual() -> Self {
        Self::with_clock(Clock::Manual)
    }

    /// A timer driven by real time.
    pub fn wall() -> Self {
        Self::with_clock(Clock::Wall)
    }

    /// A timer whose virtual time runs `factor`× faster than real time.
    ///
    /// # Panics
    /// Panics unless `factor` is finite and positive.
    pub fn scaled(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "time compression factor must be finite and positive"
        );
        Self::with_clock(Clock::Scaled(factor))
    }

    fn with_clock(clock: Clock) -> Self {
        let inner = Arc::new(TimerInner {
            wheel: Mutex::new(Wheel::new()),
            changed: Condvar::new(),
            clock,
            epoch: Instant::now(),
        });
        let driver = match clock {
            Clock::Manual => None,
            Clock::Wall | Clock::Scaled(_) => {
                let driver_inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("medsen-rt-timer".into())
                    .spawn(move || drive(driver_inner))
                    .expect("spawn timer driver");
                Some(Arc::new(DriverGuard {
                    inner: Arc::clone(&inner),
                    handle: Mutex::new(Some(handle)),
                }))
            }
        };
        Self {
            inner,
            _driver: driver,
        }
    }

    /// The configured clock mode.
    pub fn clock(&self) -> Clock {
        self.inner.clock
    }

    /// Virtual time elapsed since the timer was created.
    pub fn now(&self) -> Duration {
        let wheel = self.inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
        Duration::from_secs_f64(wheel.tick as f64 * TICK_SECS)
    }

    /// Number of registered, not-yet-fired sleeps.
    pub fn pending(&self) -> usize {
        let wheel = self.inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
        wheel.pending
    }

    /// Returns a future that completes after `duration` of virtual time.
    /// A zero duration completes immediately without touching the wheel.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        let ticks = if duration.is_zero() {
            0
        } else {
            (duration.as_secs_f64() / TICK_SECS).ceil().max(1.0) as u64
        };
        Sleep {
            timer: self.clone(),
            delay_ticks: ticks,
            deadline: None,
            state: Arc::new(Mutex::new(SleepState {
                fired: ticks == 0,
                cancelled: false,
                registered: false,
                waker: None,
            })),
        }
    }

    /// Blocks the calling thread for `duration` of virtual time.
    ///
    /// Useful for pacing synchronous code off a scaled clock; on a
    /// [`Clock::Manual`] timer this parks until some other thread calls
    /// [`Timer::advance`] far enough.
    pub fn sleep_blocking(&self, duration: Duration) {
        crate::executor::block_on(self.sleep(duration));
    }

    /// Manually advances virtual time, firing due sleeps. Returns how many
    /// sleeps fired. Only meaningful on a [`Clock::Manual`] timer (the
    /// driver owns the other clocks).
    pub fn advance(&self, duration: Duration) -> usize {
        let mut fired = Vec::new();
        {
            let mut wheel = self.inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
            let target = wheel.tick + (duration.as_secs_f64() / TICK_SECS).round() as u64;
            wheel.advance_to(target, &mut fired);
        }
        let count = fired.len();
        for waker in fired {
            waker.wake();
        }
        count
    }
}

impl std::fmt::Debug for Timer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timer")
            .field("clock", &self.inner.clock)
            .field("pending", &self.pending())
            .finish()
    }
}

/// Driver loop for wall/scaled timers: advance to the virtual "now", then
/// park until the next deadline (or until an insert re-arms us earlier).
fn drive(inner: Arc<TimerInner>) {
    let factor = match inner.clock {
        Clock::Wall => 1.0,
        Clock::Scaled(f) => f,
        Clock::Manual => unreachable!("manual timers have no driver"),
    };
    let mut wheel = inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if wheel.stopped {
            return;
        }
        let virtual_now = (inner.epoch.elapsed().as_secs_f64() * factor / TICK_SECS) as u64;
        let mut fired = Vec::new();
        wheel.advance_to(virtual_now, &mut fired);
        if !fired.is_empty() {
            drop(wheel);
            for waker in fired {
                waker.wake();
            }
            wheel = inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
            continue;
        }
        wheel = match wheel.next_deadline() {
            None => inner.changed.wait(wheel).unwrap_or_else(|e| e.into_inner()),
            Some(deadline) => {
                let real = Duration::from_secs_f64(
                    (deadline.saturating_sub(virtual_now)).max(1) as f64 * TICK_SECS / factor,
                );
                inner
                    .changed
                    .wait_timeout(wheel, real)
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
        };
    }
}

/// Future returned by [`Timer::sleep`].
pub struct Sleep {
    timer: Timer,
    delay_ticks: u64,
    deadline: Option<u64>,
    state: Arc<Mutex<SleepState>>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        // Lock order is wheel → sleep everywhere (registration here, firing
        // in `advance_to`), so the two can never deadlock.
        let mut wheel = self
            .timer
            .inner
            .wheel
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.fired {
            return Poll::Ready(());
        }
        state.waker = Some(cx.waker().clone());
        if !state.registered {
            state.registered = true;
            let deadline = wheel.tick + self.delay_ticks;
            drop(state);
            wheel.insert(deadline, Arc::clone(&self.state));
            drop(wheel);
            self.deadline = Some(deadline);
            // A fresh earlier deadline may need the driver to re-arm.
            self.timer.inner.changed.notify_all();
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if self.deadline.is_none() {
            return;
        }
        // Lock order: wheel → sleep, matching poll and fire.
        let mut wheel = self
            .timer
            .inner
            .wheel
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.fired && !state.cancelled {
            state.cancelled = true;
            // The entry stays in its slot until the wheel sweeps past it,
            // but it no longer counts as pending.
            wheel.pending = wheel.pending.saturating_sub(1);
        }
    }
}

impl std::fmt::Debug for Sleep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sleep")
            .field("delay_ticks", &self.delay_ticks)
            .field("registered", &self.deadline.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Polls a future once with a no-op waker-backed counter.
    fn poll_once<F: Future>(future: Pin<&mut F>, order: &Arc<OrderWaker>) -> Poll<F::Output> {
        let waker = Waker::from(Arc::clone(order));
        let mut cx = Context::from_waker(&waker);
        future.poll(&mut cx)
    }

    struct OrderWaker {
        id: usize,
        log: Arc<Mutex<Vec<usize>>>,
    }

    impl std::task::Wake for OrderWaker {
        fn wake(self: Arc<Self>) {
            self.log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(self.id);
        }
    }

    #[test]
    fn timers_fire_in_deadline_order_across_levels() {
        let timer = Timer::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        // Deadlines chosen to land on three different wheel levels.
        let delays_ms = [5u64, 200, 70, 5000, 1];
        let mut sleeps: Vec<(usize, Sleep)> = delays_ms
            .iter()
            .enumerate()
            .map(|(i, &ms)| (i, timer.sleep(Duration::from_millis(ms))))
            .collect();
        for (i, sleep) in &mut sleeps {
            let waker = Arc::new(OrderWaker {
                id: *i,
                log: Arc::clone(&log),
            });
            assert!(poll_once(Pin::new(sleep), &waker).is_pending());
        }
        assert_eq!(timer.pending(), delays_ms.len());
        // Advance in one giant leap: cascade order must still sort by
        // deadline.
        timer.advance(Duration::from_millis(6000));
        assert_eq!(timer.pending(), 0);
        let fired = log.lock().unwrap().clone();
        assert_eq!(fired, vec![4, 0, 2, 1, 3], "wakes must follow deadlines");
        // All sleeps now report ready.
        for (_, sleep) in &mut sleeps {
            let waker = Arc::new(OrderWaker {
                id: 99,
                log: Arc::clone(&log),
            });
            assert!(poll_once(Pin::new(sleep), &waker).is_ready());
        }
    }

    #[test]
    fn stepwise_advance_fires_exactly_on_deadline() {
        let timer = Timer::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sleep = timer.sleep(Duration::from_millis(10));
        let waker = Arc::new(OrderWaker {
            id: 0,
            log: Arc::clone(&log),
        });
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_pending());
        assert_eq!(timer.advance(Duration::from_millis(9)), 0, "too early");
        assert_eq!(timer.advance(Duration::from_millis(1)), 1, "on time");
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_ready());
    }

    #[test]
    fn zero_sleep_is_immediately_ready() {
        let timer = Timer::manual();
        let mut sleep = timer.sleep(Duration::ZERO);
        let waker = Arc::new(OrderWaker {
            id: 0,
            log: Arc::new(Mutex::new(Vec::new())),
        });
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_ready());
        assert_eq!(timer.pending(), 0);
    }

    #[test]
    fn dropped_sleep_is_cancelled_not_fired() {
        let timer = Timer::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sleep = timer.sleep(Duration::from_millis(5));
        let waker = Arc::new(OrderWaker {
            id: 7,
            log: Arc::clone(&log),
        });
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_pending());
        assert_eq!(timer.pending(), 1);
        drop(sleep);
        assert_eq!(timer.pending(), 0);
        assert_eq!(timer.advance(Duration::from_millis(10)), 0);
        assert!(
            log.lock().unwrap().is_empty(),
            "cancelled sleep must not wake"
        );
    }

    #[test]
    fn far_deadline_clamps_into_horizon_and_still_fires() {
        let timer = Timer::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        // ~5.6 hours: beyond the 4-level horizon.
        let mut sleep = timer.sleep(Duration::from_secs(20_000));
        let waker = Arc::new(OrderWaker {
            id: 1,
            log: Arc::clone(&log),
        });
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_pending());
        timer.advance(Duration::from_secs(19_999));
        assert!(log.lock().unwrap().is_empty());
        timer.advance(Duration::from_secs(2));
        assert_eq!(log.lock().unwrap().as_slice(), &[1]);
    }

    #[test]
    fn wall_clock_sleep_actually_sleeps() {
        let timer = Timer::wall();
        let started = Instant::now();
        timer.sleep_blocking(Duration::from_millis(20));
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn scaled_clock_compresses_real_time() {
        let timer = Timer::scaled(100.0);
        let started = Instant::now();
        // 2 virtual seconds at 100× ≈ 20 ms real.
        timer.sleep_blocking(Duration::from_secs(2));
        let real = started.elapsed();
        assert!(real < Duration::from_secs(1), "must compress: {real:?}");
        assert!(timer.now() >= Duration::from_secs(2));
    }

    #[test]
    fn executor_tasks_wake_from_manual_timer() {
        let executor = crate::Executor::new(2);
        let timer = Timer::manual();
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let timer = timer.clone();
                let done = Arc::clone(&done);
                executor.spawn(async move {
                    timer.sleep(Duration::from_millis(10 + i)).await;
                    done.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        while timer.pending() < 8 {
            std::thread::yield_now();
        }
        timer.advance(Duration::from_millis(64));
        for handle in handles {
            handle.join();
        }
        assert_eq!(done.load(Ordering::Relaxed), 8);
        executor.shutdown();
    }
}
