//! Hierarchical timer wheel with pluggable clocks.
//!
//! Four levels of 64 slots at a 1 ms tick give O(1) insertion and
//! cascading coverage from 1 ms out to ~4.6 hours; anything later parks
//! in the top level and re-cascades. The wheel itself is clock-agnostic —
//! it only ever sees virtual ticks — and three drivers map virtual time
//! onto the host:
//!
//! * [`Clock::Manual`] — time moves only via [`Timer::advance`]; this is
//!   what deterministic unit tests use.
//! * [`Clock::Wall`] — a driver thread advances the wheel in real time.
//! * [`Clock::Scaled`] — like `Wall`, but virtual time runs `factor`×
//!   faster than real time. The gateway runs its *simulated* retry-after
//!   and backoff waits on a scaled clock, so a 50 ms simulated shed wait
//!   parks the session for 50 ms ÷ factor of real time: pacing survives,
//!   wall-clock seconds do not.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Virtual seconds per tick (1 ms).
const TICK_SECS: f64 = 1e-3;
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 4;
/// Ticks covered by the whole wheel; farther deadlines clamp into the top
/// level and re-cascade as time approaches them.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// How a [`Timer`] maps virtual time onto the host clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Clock {
    /// No driver thread; only [`Timer::advance`] moves time.
    Manual,
    /// Driver thread tracks real time 1:1.
    Wall,
    /// Driver thread runs virtual time `factor`× faster than real time
    /// (`factor` must be finite and > 0).
    Scaled(f64),
}

/// One registered sleep, shared between the wheel and its [`Sleep`] future.
struct SleepState {
    fired: bool,
    cancelled: bool,
    registered: bool,
    waker: Option<Waker>,
}

struct Entry {
    deadline: u64,
    sleep: Arc<Mutex<SleepState>>,
}

struct Wheel {
    tick: u64,
    pending: usize,
    slots: Vec<Vec<VecDeque<Entry>>>,
    stopped: bool,
    /// Lower bound on the earliest deadline still in the wheel, maintained
    /// incrementally on insert (`u64::MAX` when unknown). May lag behind
    /// after the entry holding it fires or cancels; [`Wheel::next_deadline`]
    /// rescans only when the bound is no longer ahead of `tick`, so the
    /// common driver wake-up is O(1) instead of O(pending).
    min_deadline: u64,
}

impl Wheel {
    fn new() -> Self {
        Self {
            tick: 0,
            pending: 0,
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            stopped: false,
            min_deadline: u64::MAX,
        }
    }

    /// Level and slot for a deadline, given the current tick. A `delta` of
    /// zero (a cascaded entry that is due right now) lands in the current
    /// level-0 slot, which the advance loop drains immediately after
    /// cascading.
    fn place(&self, deadline: u64) -> (usize, usize) {
        let delta = deadline.saturating_sub(self.tick);
        let clamped = self.tick + delta.min(HORIZON - 1);
        for level in 0..LEVELS {
            if delta < 1 << (SLOT_BITS * (level as u32 + 1)) {
                let slot = (clamped >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                return (level, slot);
            }
        }
        let slot = (clamped >> (SLOT_BITS * (LEVELS as u32 - 1))) as usize & (SLOTS - 1);
        (LEVELS - 1, slot)
    }

    fn insert(&mut self, deadline: u64, sleep: Arc<Mutex<SleepState>>) {
        let (level, slot) = self.place(deadline);
        self.slots[level][slot].push_back(Entry { deadline, sleep });
        self.pending += 1;
        self.min_deadline = self.min_deadline.min(deadline);
    }

    /// Earliest deadline still in the wheel, or `None` when nothing is
    /// pending. Usually answers from the cached bound; rescans the slots
    /// (deadlines only, no entry locks) when the bound went stale. The
    /// bound may name a cancelled entry — that costs the driver one
    /// spurious wake-up, after which the sweep drops the entry and the
    /// next rescan corrects the bound.
    fn next_deadline(&mut self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        if self.min_deadline <= self.tick {
            self.min_deadline = self
                .slots
                .iter()
                .flatten()
                .flatten()
                .map(|entry| entry.deadline)
                .min()
                .unwrap_or(u64::MAX);
        }
        (self.min_deadline != u64::MAX).then_some(self.min_deadline)
    }

    /// Advances virtual time to `target` ticks, collecting the wakers of
    /// every sleep that came due. Rather than stepping 1 ms at a time,
    /// each iteration jumps straight to the next event: the first occupied
    /// level-0 slot in the current 64-tick window, the window boundary
    /// (where higher levels cascade), or `target`, whichever comes first.
    /// Entries in an upcoming level-0 slot are always due in the current
    /// window — anything later sits at a slot index the wheel has already
    /// passed or in a higher level — so draining the slot we land on is
    /// exact, and crossing a long idle gap costs O(gap / 64) slot scans
    /// instead of O(gap) ticks.
    fn advance_to(&mut self, target: u64, fired: &mut Vec<Waker>) {
        while self.tick < target {
            if self.pending == 0 {
                self.tick = target;
                return;
            }
            let window = self.tick & !(SLOTS as u64 - 1);
            let mut next = (window + SLOTS as u64).min(target);
            for idx in (self.tick as usize & (SLOTS - 1)) + 1..SLOTS {
                if !self.slots[0][idx].is_empty() {
                    next = next.min(window + idx as u64);
                    break;
                }
            }
            self.tick = next;
            let now = self.tick;
            // Cascade each higher level whose slot boundary we just
            // crossed, innermost first.
            for level in 1..LEVELS {
                if now.trailing_zeros() < SLOT_BITS * level as u32 {
                    break;
                }
                let slot = (now >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                let entries: Vec<Entry> = self.slots[level][slot].drain(..).collect();
                for entry in entries {
                    // Cancelled sleeps already left the pending count; drop
                    // them here instead of re-inserting.
                    let cancelled = entry
                        .sleep
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .cancelled;
                    if cancelled {
                        continue;
                    }
                    self.pending -= 1;
                    self.insert(entry.deadline, entry.sleep);
                }
            }
            let slot = now as usize & (SLOTS - 1);
            while let Some(entry) = self.slots[0][slot].pop_front() {
                let mut state = entry.sleep.lock().unwrap_or_else(|e| e.into_inner());
                if state.cancelled {
                    continue;
                }
                self.pending -= 1;
                state.fired = true;
                if let Some(waker) = state.waker.take() {
                    fired.push(waker);
                }
            }
        }
    }
}

struct TimerInner {
    wheel: Mutex<Wheel>,
    changed: Condvar,
    clock: Clock,
    epoch: Instant,
}

impl TimerInner {
    /// Current virtual time in ticks. For wall/scaled clocks this is
    /// derived from the host clock, NOT from `wheel.tick`: the driver
    /// parks while no sleeps are pending, so the wheel's tick goes stale
    /// across idle gaps and must never be used as "now".
    fn virtual_now_ticks(&self, wheel: &Wheel) -> u64 {
        match self.clock {
            Clock::Manual => wheel.tick,
            Clock::Wall => (self.epoch.elapsed().as_secs_f64() / TICK_SECS) as u64,
            Clock::Scaled(factor) => {
                (self.epoch.elapsed().as_secs_f64() * factor / TICK_SECS) as u64
            }
        }
    }
}

/// A cloneable handle to one timer wheel.
///
/// Created via [`Timer::manual`], [`Timer::wall`], or [`Timer::scaled`];
/// hand out clones freely. Wall/scaled timers own a driver thread —
/// dropping the last handle stops it.
#[derive(Clone)]
pub struct Timer {
    inner: Arc<TimerInner>,
    // Present on the original handle of a wall/scaled timer, held only
    // for its `Drop`: joining happens when the last clone drops the Arc.
    _driver: Option<Arc<DriverGuard>>,
}

struct DriverGuard {
    inner: Arc<TimerInner>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for DriverGuard {
    fn drop(&mut self) {
        {
            let mut wheel = self.inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
            wheel.stopped = true;
        }
        self.inner.changed.notify_all();
        if let Some(handle) = self.handle.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = handle.join();
        }
    }
}

impl Timer {
    /// A timer whose time moves only through [`Timer::advance`].
    pub fn manual() -> Self {
        Self::with_clock(Clock::Manual)
    }

    /// A timer driven by real time.
    pub fn wall() -> Self {
        Self::with_clock(Clock::Wall)
    }

    /// A timer whose virtual time runs `factor`× faster than real time.
    ///
    /// # Panics
    /// Panics unless `factor` is finite and positive.
    pub fn scaled(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "time compression factor must be finite and positive"
        );
        Self::with_clock(Clock::Scaled(factor))
    }

    fn with_clock(clock: Clock) -> Self {
        let inner = Arc::new(TimerInner {
            wheel: Mutex::new(Wheel::new()),
            changed: Condvar::new(),
            clock,
            epoch: Instant::now(),
        });
        let driver = match clock {
            Clock::Manual => None,
            Clock::Wall | Clock::Scaled(_) => {
                let driver_inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("medsen-rt-timer".into())
                    .spawn(move || drive(driver_inner))
                    .expect("spawn timer driver");
                Some(Arc::new(DriverGuard {
                    inner: Arc::clone(&inner),
                    handle: Mutex::new(Some(handle)),
                }))
            }
        };
        Self {
            inner,
            _driver: driver,
        }
    }

    /// The configured clock mode.
    pub fn clock(&self) -> Clock {
        self.inner.clock
    }

    /// Virtual time elapsed since the timer was created. On wall/scaled
    /// clocks this follows the host clock even while the driver is parked
    /// with nothing pending; on a manual clock it is the advanced tick.
    pub fn now(&self) -> Duration {
        let wheel = self.inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
        let ticks = self.inner.virtual_now_ticks(&wheel).max(wheel.tick);
        Duration::from_secs_f64(ticks as f64 * TICK_SECS)
    }

    /// Number of registered, not-yet-fired sleeps.
    pub fn pending(&self) -> usize {
        let wheel = self.inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
        wheel.pending
    }

    /// Returns a future that completes after `duration` of virtual time.
    /// A zero duration completes immediately without touching the wheel.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        let ticks = if duration.is_zero() {
            0
        } else {
            (duration.as_secs_f64() / TICK_SECS).ceil().max(1.0) as u64
        };
        Sleep {
            timer: self.clone(),
            delay_ticks: ticks,
            deadline: None,
            state: Arc::new(Mutex::new(SleepState {
                fired: ticks == 0,
                cancelled: false,
                registered: false,
                waker: None,
            })),
        }
    }

    /// Blocks the calling thread for `duration` of virtual time.
    ///
    /// Useful for pacing synchronous code off a scaled clock; on a
    /// [`Clock::Manual`] timer this parks until some other thread calls
    /// [`Timer::advance`] far enough.
    pub fn sleep_blocking(&self, duration: Duration) {
        crate::executor::block_on(self.sleep(duration));
    }

    /// Manually advances virtual time, firing due sleeps. Returns how many
    /// sleeps fired. Only meaningful on a [`Clock::Manual`] timer (the
    /// driver owns the other clocks).
    pub fn advance(&self, duration: Duration) -> usize {
        let mut fired = Vec::new();
        {
            let mut wheel = self.inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
            let target = wheel.tick + (duration.as_secs_f64() / TICK_SECS).round() as u64;
            wheel.advance_to(target, &mut fired);
        }
        let count = fired.len();
        for waker in fired {
            waker.wake();
        }
        count
    }
}

impl std::fmt::Debug for Timer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timer")
            .field("clock", &self.inner.clock)
            .field("pending", &self.pending())
            .finish()
    }
}

/// Driver loop for wall/scaled timers: advance to the virtual "now", then
/// park until the next deadline (or until an insert re-arms us earlier).
fn drive(inner: Arc<TimerInner>) {
    let factor = match inner.clock {
        Clock::Wall => 1.0,
        Clock::Scaled(f) => f,
        Clock::Manual => unreachable!("manual timers have no driver"),
    };
    let mut wheel = inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if wheel.stopped {
            return;
        }
        let virtual_now = inner.virtual_now_ticks(&wheel);
        let mut fired = Vec::new();
        wheel.advance_to(virtual_now, &mut fired);
        if !fired.is_empty() {
            drop(wheel);
            for waker in fired {
                waker.wake();
            }
            wheel = inner.wheel.lock().unwrap_or_else(|e| e.into_inner());
            continue;
        }
        wheel = match wheel.next_deadline() {
            None => inner.changed.wait(wheel).unwrap_or_else(|e| e.into_inner()),
            Some(deadline) => {
                let real = Duration::from_secs_f64(
                    (deadline.saturating_sub(virtual_now)).max(1) as f64 * TICK_SECS / factor,
                );
                inner
                    .changed
                    .wait_timeout(wheel, real)
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
        };
    }
}

/// Future returned by [`Timer::sleep`].
pub struct Sleep {
    timer: Timer,
    delay_ticks: u64,
    deadline: Option<u64>,
    state: Arc<Mutex<SleepState>>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        // Lock order is wheel → sleep everywhere (registration here, firing
        // in `advance_to`), so the two can never deadlock.
        let mut wheel = self
            .timer
            .inner
            .wheel
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Catch the wheel up to the clock's current virtual time before
        // computing the deadline. On wall/scaled clocks the driver parks
        // while nothing is pending and `wheel.tick` goes stale; anchoring
        // the deadline to the stale tick would date it in the past and the
        // sleep would fire immediately (the jump-advance makes this O(gap
        // / 64), and with nothing pending it is a single assignment).
        let mut due = Vec::new();
        let virtual_now = self.timer.inner.virtual_now_ticks(&wheel);
        if virtual_now > wheel.tick {
            wheel.advance_to(virtual_now, &mut due);
        }
        let mut new_deadline = None;
        let result = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.fired {
                Poll::Ready(())
            } else {
                state.waker = Some(cx.waker().clone());
                if !state.registered {
                    state.registered = true;
                    new_deadline = Some(wheel.tick + self.delay_ticks);
                }
                Poll::Pending
            }
        };
        // Registration completes outside the state lock but still under
        // the wheel lock, so fire/cancel cannot interleave.
        if let Some(deadline) = new_deadline {
            wheel.insert(deadline, Arc::clone(&self.state));
        }
        drop(wheel);
        if new_deadline.is_some() {
            self.deadline = new_deadline;
        }
        // Wake anything the catch-up advance fired, then poke the driver:
        // a fresh earlier deadline may need it to re-arm.
        for waker in due {
            waker.wake();
        }
        if result.is_pending() {
            self.timer.inner.changed.notify_all();
        }
        result
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if self.deadline.is_none() {
            return;
        }
        // Lock order: wheel → sleep, matching poll and fire.
        let mut wheel = self
            .timer
            .inner
            .wheel
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.fired && !state.cancelled {
            state.cancelled = true;
            // The entry stays in its slot until the wheel sweeps past it,
            // but it no longer counts as pending.
            wheel.pending = wheel.pending.saturating_sub(1);
        }
    }
}

impl std::fmt::Debug for Sleep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sleep")
            .field("delay_ticks", &self.delay_ticks)
            .field("registered", &self.deadline.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Polls a future once with a no-op waker-backed counter.
    fn poll_once<F: Future>(future: Pin<&mut F>, order: &Arc<OrderWaker>) -> Poll<F::Output> {
        let waker = Waker::from(Arc::clone(order));
        let mut cx = Context::from_waker(&waker);
        future.poll(&mut cx)
    }

    struct OrderWaker {
        id: usize,
        log: Arc<Mutex<Vec<usize>>>,
    }

    impl std::task::Wake for OrderWaker {
        fn wake(self: Arc<Self>) {
            self.log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(self.id);
        }
    }

    #[test]
    fn timers_fire_in_deadline_order_across_levels() {
        let timer = Timer::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        // Deadlines chosen to land on three different wheel levels.
        let delays_ms = [5u64, 200, 70, 5000, 1];
        let mut sleeps: Vec<(usize, Sleep)> = delays_ms
            .iter()
            .enumerate()
            .map(|(i, &ms)| (i, timer.sleep(Duration::from_millis(ms))))
            .collect();
        for (i, sleep) in &mut sleeps {
            let waker = Arc::new(OrderWaker {
                id: *i,
                log: Arc::clone(&log),
            });
            assert!(poll_once(Pin::new(sleep), &waker).is_pending());
        }
        assert_eq!(timer.pending(), delays_ms.len());
        // Advance in one giant leap: cascade order must still sort by
        // deadline.
        timer.advance(Duration::from_millis(6000));
        assert_eq!(timer.pending(), 0);
        let fired = log.lock().unwrap().clone();
        assert_eq!(fired, vec![4, 0, 2, 1, 3], "wakes must follow deadlines");
        // All sleeps now report ready.
        for (_, sleep) in &mut sleeps {
            let waker = Arc::new(OrderWaker {
                id: 99,
                log: Arc::clone(&log),
            });
            assert!(poll_once(Pin::new(sleep), &waker).is_ready());
        }
    }

    #[test]
    fn stepwise_advance_fires_exactly_on_deadline() {
        let timer = Timer::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sleep = timer.sleep(Duration::from_millis(10));
        let waker = Arc::new(OrderWaker {
            id: 0,
            log: Arc::clone(&log),
        });
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_pending());
        assert_eq!(timer.advance(Duration::from_millis(9)), 0, "too early");
        assert_eq!(timer.advance(Duration::from_millis(1)), 1, "on time");
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_ready());
    }

    #[test]
    fn zero_sleep_is_immediately_ready() {
        let timer = Timer::manual();
        let mut sleep = timer.sleep(Duration::ZERO);
        let waker = Arc::new(OrderWaker {
            id: 0,
            log: Arc::new(Mutex::new(Vec::new())),
        });
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_ready());
        assert_eq!(timer.pending(), 0);
    }

    #[test]
    fn dropped_sleep_is_cancelled_not_fired() {
        let timer = Timer::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sleep = timer.sleep(Duration::from_millis(5));
        let waker = Arc::new(OrderWaker {
            id: 7,
            log: Arc::clone(&log),
        });
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_pending());
        assert_eq!(timer.pending(), 1);
        drop(sleep);
        assert_eq!(timer.pending(), 0);
        assert_eq!(timer.advance(Duration::from_millis(10)), 0);
        assert!(
            log.lock().unwrap().is_empty(),
            "cancelled sleep must not wake"
        );
    }

    #[test]
    fn far_deadline_clamps_into_horizon_and_still_fires() {
        let timer = Timer::manual();
        let log = Arc::new(Mutex::new(Vec::new()));
        // ~5.6 hours: beyond the 4-level horizon.
        let mut sleep = timer.sleep(Duration::from_secs(20_000));
        let waker = Arc::new(OrderWaker {
            id: 1,
            log: Arc::clone(&log),
        });
        assert!(poll_once(Pin::new(&mut sleep), &waker).is_pending());
        timer.advance(Duration::from_secs(19_999));
        assert!(log.lock().unwrap().is_empty());
        timer.advance(Duration::from_secs(2));
        assert_eq!(log.lock().unwrap().as_slice(), &[1]);
    }

    #[test]
    fn wall_clock_sleep_actually_sleeps() {
        let timer = Timer::wall();
        let started = Instant::now();
        timer.sleep_blocking(Duration::from_millis(20));
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn scaled_clock_compresses_real_time() {
        let timer = Timer::scaled(100.0);
        let started = Instant::now();
        // 2 virtual seconds at 100× ≈ 20 ms real.
        timer.sleep_blocking(Duration::from_secs(2));
        let real = started.elapsed();
        assert!(real < Duration::from_secs(1), "must compress: {real:?}");
        assert!(timer.now() >= Duration::from_secs(2));
    }

    #[test]
    fn sleep_after_idle_gap_waits_full_duration() {
        // Regression test: while no sleeps are pending the driver parks
        // and `wheel.tick` goes stale. A sleep registered after such a gap
        // must anchor its deadline to the clock's virtual "now" — anchored
        // to the stale tick, the deadline here (2000 ticks) would already
        // be inside the gap (≥ 4000 virtual ticks) and fire immediately.
        let timer = Timer::scaled(100.0);
        std::thread::sleep(Duration::from_millis(40));
        let started = Instant::now();
        // 2 virtual seconds at 100× ≈ 20 ms real.
        timer.sleep_blocking(Duration::from_secs(2));
        let real = started.elapsed();
        assert!(
            real >= Duration::from_millis(15),
            "sleep after idle gap fired early: {real:?}"
        );
        assert!(timer.now() >= Duration::from_secs(6), "gap + sleep");
    }

    #[test]
    fn executor_tasks_wake_from_manual_timer() {
        let executor = crate::Executor::new(2);
        let timer = Timer::manual();
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let timer = timer.clone();
                let done = Arc::clone(&done);
                executor.spawn(async move {
                    timer.sleep(Duration::from_millis(10 + i)).await;
                    done.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        while timer.pending() < 8 {
            std::thread::yield_now();
        }
        timer.advance(Duration::from_millis(64));
        for handle in handles {
            handle.join();
        }
        assert_eq!(done.load(Ordering::Relaxed), 8);
        executor.shutdown();
    }
}
