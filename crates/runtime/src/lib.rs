//! # medsen-runtime — a hand-rolled async substrate for the fleet
//!
//! The MedSen deployment story is many cheap dongles streaming encrypted
//! traces to one cloud service. Serving that fleet with an OS thread per
//! session caps concurrency at a few hundred; this crate provides the
//! task model that removes the cap, built on `std` alone (the workspace's
//! dependency set is frozen, and a concurrency substrate is exactly the
//! code that should not ride on vendored stubs):
//!
//! * [`Executor`] — a fixed pool of worker threads multiplexing any
//!   number of tasks over a mutex+condvar run queue, with `Arc`-based
//!   [`std::task::Wake`] wakers. Wakes landing mid-poll re-arm the task
//!   (`RUNNING → NOTIFIED`), so no wakeup is lost.
//! * [`block_on`] — drives one future on the calling thread, parking
//!   between polls; how synchronous session code awaits timer pacing.
//! * [`Timer`] — a four-level hierarchical timer wheel (64 slots/level,
//!   1 ms ticks) with three clocks: [`Clock::Manual`] for deterministic
//!   tests, [`Clock::Wall`] for real time, and [`Clock::Scaled`] for
//!   compressed simulated time (a 50 ms simulated shed wait parks
//!   50 ms ÷ factor of real time).
//! * [`channel`] — an async bounded MPMC channel whose close semantics
//!   (drain, then disconnect) mirror the gateway's shutdown contract.
//! * [`yield_now`] — a cooperative yield point so long-running tasks
//!   share their worker thread.
//!
//! [`Runtime`] bundles an executor with a timer for consumers — the
//! gateway among them — that want both under one handle.

pub mod channel;
mod executor;
mod task;
mod timer;

pub use executor::{block_on, Executor};
pub use task::JoinHandle;
pub use timer::{Clock, Sleep, Timer};

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

/// An executor paired with a timer: the full substrate under one handle.
#[derive(Debug)]
pub struct Runtime {
    executor: Executor,
    timer: Timer,
}

impl Runtime {
    /// A pool of `threads` workers and a timer on the given clock.
    pub fn new(threads: usize, clock: Clock) -> Self {
        let timer = match clock {
            Clock::Manual => Timer::manual(),
            Clock::Wall => Timer::wall(),
            Clock::Scaled(factor) => Timer::scaled(factor),
        };
        Self {
            executor: Executor::new(threads),
            timer,
        }
    }

    /// Schedules a task on the pool.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.executor.spawn(future)
    }

    /// A future completing after `duration` of virtual time.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.timer.sleep(duration)
    }

    /// The timer half (cloneable).
    pub fn timer(&self) -> &Timer {
        &self.timer
    }

    /// The executor half.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Stops the worker pool; the timer's driver stops when the last
    /// [`Timer`] clone drops.
    pub fn shutdown(self) {
        self.executor.shutdown();
    }
}

/// Cooperatively yields the current task back to the run queue once, so
/// sibling tasks on the same worker thread get a turn.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn yield_now_suspends_exactly_once() {
        let polls = Arc::new(AtomicUsize::new(0));
        let inner = Arc::clone(&polls);
        block_on(async move {
            inner.fetch_add(1, Ordering::Relaxed);
            yield_now().await;
            inner.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(polls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn runtime_bundles_spawn_and_sleep() {
        let runtime = Runtime::new(2, Clock::Scaled(1000.0));
        let timer = runtime.timer().clone();
        let handle = runtime.spawn(async move {
            timer.sleep(Duration::from_millis(500)).await;
            "slept"
        });
        assert_eq!(handle.join(), "slept");
        runtime.shutdown();
    }

    #[test]
    fn yield_interleaves_two_tasks_on_one_thread() {
        let runtime = Runtime::new(1, Clock::Manual);
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..2)
            .map(|id| {
                let log = Arc::clone(&log);
                runtime.spawn(async move {
                    for step in 0..3 {
                        log.lock().unwrap().push((id, step));
                        yield_now().await;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join();
        }
        let log = log.lock().unwrap().clone();
        // Both tasks made progress before either finished: cooperative
        // scheduling on a single worker thread.
        let first_done = log.iter().position(|&(_, s)| s == 2).unwrap();
        assert!(
            log[..first_done].iter().any(|&(id, _)| id == 0)
                && log[..first_done].iter().any(|&(id, _)| id == 1),
            "tasks must interleave: {log:?}"
        );
        runtime.shutdown();
    }
}
