//! Task state machine and join handles.
//!
//! A [`Task`] owns one boxed future plus an atomic state word; the state
//! word is what makes `Waker`s cheap and idempotent. Wakes arriving while
//! the task is being polled park in the `NOTIFIED` state and re-arm the
//! task the moment its poll returns `Pending`, so no wakeup is ever lost
//! to the classic poll/wake race.

use crate::executor::Inner;
use medsen_telemetry::TaskSlot;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

pub(crate) type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Waiting for a wake; not queued.
const IDLE: u8 = 0;
/// In the run queue, awaiting a worker.
const SCHEDULED: u8 = 1;
/// A worker is polling the future right now.
const RUNNING: u8 = 2;
/// Woken while `RUNNING`; reschedule as soon as the poll returns.
const NOTIFIED: u8 = 3;
/// The future returned `Ready` and was dropped.
const COMPLETE: u8 = 4;

pub(crate) struct Task {
    state: AtomicU8,
    future: Mutex<Option<BoxFuture>>,
    executor: Arc<Inner>,
    /// Task-local telemetry context, parked here between polls so a trace
    /// installed inside the task follows the *task* across worker threads
    /// instead of leaking onto whichever thread happened to poll it.
    telemetry: TaskSlot,
}

impl Task {
    pub(crate) fn new(future: BoxFuture, executor: Arc<Inner>) -> Arc<Self> {
        Arc::new(Self {
            state: AtomicU8::new(SCHEDULED),
            future: Mutex::new(Some(future)),
            executor,
            // Inherit the spawner's active trace (if any): a task spawned
            // mid-request keeps recording against that request.
            telemetry: TaskSlot::capture(),
        })
    }

    /// Polls the task once. Called by a worker that just popped the task
    /// off the run queue (state `SCHEDULED`).
    pub(crate) fn run(self: &Arc<Self>) {
        self.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock().unwrap_or_else(|e| e.into_inner());
        let Some(future) = slot.as_mut() else {
            self.state.store(COMPLETE, Ordering::Release);
            return;
        };
        // Swap the task's parked trace context in for the duration of the
        // poll; the guard parks whatever is active when the poll returns.
        // Scoped to the poll itself: it must be back in the slot before
        // the re-arm below can hand the task to another worker.
        let polled = {
            let _telemetry = self.telemetry.enter();
            future.as_mut().poll(&mut cx)
        };
        match polled {
            Poll::Ready(()) => {
                *slot = None;
                self.state.store(COMPLETE, Ordering::Release);
            }
            Poll::Pending => {
                drop(slot);
                // A wake may have landed while we were polling: the waker
                // moved us RUNNING → NOTIFIED, and we must re-arm.
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    self.state.store(SCHEDULED, Ordering::Release);
                    self.executor.enqueue(Arc::clone(self));
                }
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        Self::wake_by_ref(&self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        loop {
            match self
                .state
                .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.executor.enqueue(Arc::clone(self));
                    return;
                }
                // Already queued, already flagged, or finished: idempotent.
                Err(SCHEDULED) | Err(NOTIFIED) | Err(COMPLETE) => return,
                Err(_running) => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                    // State moved under us (poll just finished); retry.
                }
            }
        }
    }
}

/// Shared completion slot between a spawned task and its [`JoinHandle`].
pub(crate) struct JoinShared<T> {
    slot: Mutex<JoinSlot<T>>,
    done: Condvar,
}

struct JoinSlot<T> {
    value: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

impl<T> JoinShared<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(JoinSlot {
                value: None,
                waker: None,
                finished: false,
            }),
            done: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, value: T) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        slot.value = Some(value);
        slot.finished = true;
        let waker = slot.waker.take();
        drop(slot);
        self.done.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Owned handle to a spawned task's output.
///
/// Await it from async code, or call [`JoinHandle::join`] to block an OS
/// thread until the task finishes.
pub struct JoinHandle<T> {
    pub(crate) shared: Arc<JoinShared<T>>,
}

impl<T> JoinHandle<T> {
    /// Blocks the calling thread until the task completes.
    pub fn join(self) -> T {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        while !slot.finished {
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        slot.value.take().expect("join handle consumed once")
    }

    /// True once the task has completed (its output is ready to take).
    pub fn is_finished(&self) -> bool {
        self.shared
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .finished
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.finished {
            Poll::Ready(slot.value.take().expect("join handle polled after ready"))
        } else {
            slot.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}
