//! Async MPMC bounded channel.
//!
//! Senders park when the ring is full, receivers park when it is empty;
//! both sides are cloneable, so N producer tasks can feed M consumer
//! tasks. Closing is explicit ([`Sender::close`]/[`Receiver::close`]) or
//! implicit (last handle of a side drops); a closed channel still lets
//! receivers drain whatever was buffered before reporting disconnection —
//! exactly the semantics the gateway's shutdown path relies on.

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// `try_send` failure: the value rides back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The buffer is at capacity.
    Full(T),
    /// The channel is closed (explicitly, or no receivers remain).
    Closed(T),
}

/// Async `send` failure: the channel closed; the value rides back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// `try_recv` failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now.
    Empty,
    /// Closed and fully drained.
    Closed,
}

/// Async `recv` failure: closed and fully drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel closed and drained")
    }
}

impl std::error::Error for RecvError {}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel closed")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
    closed: bool,
    next_waiter: u64,
    send_waiters: Vec<(u64, Waker)>,
    recv_waiters: Vec<(u64, Waker)>,
}

impl<T> State<T> {
    /// No more values will ever arrive.
    fn disconnected(&self) -> bool {
        self.closed || self.senders == 0
    }

    fn wake_one_recv(&mut self) {
        if !self.recv_waiters.is_empty() {
            let (_, waker) = self.recv_waiters.remove(0);
            waker.wake();
        }
    }

    fn wake_one_send(&mut self) {
        if !self.send_waiters.is_empty() {
            let (_, waker) = self.send_waiters.remove(0);
            waker.wake();
        }
    }

    fn wake_all(&mut self) {
        for (_, waker) in self.send_waiters.drain(..) {
            waker.wake();
        }
        for (_, waker) in self.recv_waiters.drain(..) {
            waker.wake();
        }
    }
}

struct Shared<T> {
    state: Mutex<State<T>>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Creates a bounded MPMC channel with room for `capacity` values.
///
/// # Panics
/// Panics if `capacity` is zero (rendezvous channels are not modeled).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be positive");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receivers: 1,
            closed: false,
            next_waiter: 0,
            send_waiters: Vec::new(),
            recv_waiters: Vec::new(),
        }),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Producer half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half; cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.closed || state.receivers == 0 {
            return Err(TrySendError::Closed(value));
        }
        if state.queue.len() >= state.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        state.wake_one_recv();
        Ok(())
    }

    /// Awaits buffer space, then enqueues `value`.
    pub fn send(&self, value: T) -> Send<'_, T> {
        Send {
            sender: self,
            value: Some(value),
            waiter: None,
        }
    }

    /// Values currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the channel: future sends fail, receivers drain then
    /// disconnect.
    pub fn close(&self) {
        let mut state = self.shared.lock();
        state.closed = true;
        state.wake_all();
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        match state.queue.pop_front() {
            Some(value) => {
                state.wake_one_send();
                Ok(value)
            }
            None if state.disconnected() => Err(TryRecvError::Closed),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Awaits the next value; `Err(RecvError)` once closed *and* drained.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv {
            receiver: self,
            waiter: None,
        }
    }

    /// Values currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the channel from the consumer side: senders start failing,
    /// buffered values remain drainable.
    pub fn close(&self) {
        let mut state = self.shared.lock();
        state.closed = true;
        state.wake_all();
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Receivers must observe the disconnect.
            state.wake_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            state.wake_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").field("len", &self.len()).finish()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("len", &self.len())
            .finish()
    }
}

/// Future returned by [`Sender::send`].
pub struct Send<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
    waiter: Option<u64>,
}

impl<T: Unpin> Future for Send<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        let mut state = this.sender.shared.lock();
        let value = this.value.take().expect("send future polled after ready");
        if state.closed || state.receivers == 0 {
            return Poll::Ready(Err(SendError(value)));
        }
        if state.queue.len() < state.capacity {
            if let Some(id) = this.waiter.take() {
                state.send_waiters.retain(|(wid, _)| *wid != id);
            }
            state.queue.push_back(value);
            state.wake_one_recv();
            return Poll::Ready(Ok(()));
        }
        this.value = Some(value);
        let state = &mut *state;
        let id = *this.waiter.get_or_insert_with(|| {
            let id = state.next_waiter;
            state.next_waiter += 1;
            id
        });
        upsert_waiter(&mut state.send_waiters, id, cx.waker().clone());
        Poll::Pending
    }
}

impl<T> Drop for Send<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.waiter {
            let mut state = self.sender.shared.lock();
            state.send_waiters.retain(|(wid, _)| *wid != id);
            // Hand our missed slot (if any) to the next waiting sender.
            if state.queue.len() < state.capacity {
                state.wake_one_send();
            }
        }
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a Receiver<T>,
    waiter: Option<u64>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Result<T, RecvError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        let mut state = this.receiver.shared.lock();
        if let Some(value) = state.queue.pop_front() {
            if let Some(id) = this.waiter.take() {
                state.recv_waiters.retain(|(wid, _)| *wid != id);
            }
            state.wake_one_send();
            return Poll::Ready(Ok(value));
        }
        if state.disconnected() {
            return Poll::Ready(Err(RecvError));
        }
        let state = &mut *state;
        let id = *this.waiter.get_or_insert_with(|| {
            let id = state.next_waiter;
            state.next_waiter += 1;
            id
        });
        upsert_waiter(&mut state.recv_waiters, id, cx.waker().clone());
        Poll::Pending
    }
}

impl<T> Drop for Recv<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.waiter {
            let mut state = self.receiver.shared.lock();
            state.recv_waiters.retain(|(wid, _)| *wid != id);
            // A value may have been routed at us; pass the wake along.
            if !state.queue.is_empty() {
                state.wake_one_recv();
            }
        }
    }
}

fn upsert_waiter(waiters: &mut Vec<(u64, Waker)>, id: u64, waker: Waker) {
    match waiters.iter_mut().find(|(wid, _)| *wid == id) {
        Some((_, slot)) => *slot = waker,
        None => waiters.push((id, waker)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{block_on, Executor};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn try_send_try_recv_round_trip() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn close_lets_receivers_drain_then_disconnects() {
        let (tx, rx) = bounded(4);
        tx.try_send("a").unwrap();
        tx.try_send("b").unwrap();
        tx.close();
        assert_eq!(tx.try_send("c"), Err(TrySendError::Closed("c")));
        assert_eq!(rx.try_recv(), Ok("a"));
        assert_eq!(block_on(rx.recv()), Ok("b"));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
        assert_eq!(block_on(rx.recv()), Err(RecvError));
    }

    #[test]
    fn dropping_all_senders_closes_after_drain() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7), "still drains: tx2 alive");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx2.try_send(8).unwrap();
        drop(tx2);
        assert_eq!(block_on(rx.recv()), Ok(8), "buffered value survives close");
        assert_eq!(block_on(rx.recv()), Err(RecvError));
    }

    #[test]
    fn dropping_all_receivers_fails_senders() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Closed(1)));
        assert_eq!(block_on(tx.send(2)), Err(SendError(2)));
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = bounded(1);
        let executor = Executor::new(1);
        let consumer = executor.spawn(async move { rx.recv().await });
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.try_send(99).unwrap();
        assert_eq!(consumer.join(), Ok(99));
        executor.shutdown();
    }

    #[test]
    fn blocked_sender_wakes_on_recv() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        let executor = Executor::new(1);
        let producer = executor.spawn(async move { tx.send(2).await });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(producer.join(), Ok(()));
        assert_eq!(rx.try_recv(), Ok(2));
        executor.shutdown();
    }

    #[test]
    fn mpmc_many_producers_many_consumers_lose_nothing() {
        const PRODUCERS: usize = 8;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 100;
        let (tx, rx) = bounded(4);
        let executor = Executor::new(4);
        let received = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let rx = rx.clone();
                let received = Arc::clone(&received);
                executor.spawn(async move {
                    while let Ok(value) = rx.recv().await {
                        received.fetch_add(value, Ordering::Relaxed);
                        crate::yield_now().await;
                    }
                })
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|_| {
                let tx = tx.clone();
                executor.spawn(async move {
                    for _ in 0..PER_PRODUCER {
                        tx.send(1).await.expect("receivers alive");
                    }
                })
            })
            .collect();
        drop(tx);
        for producer in producers {
            producer.join();
        }
        for consumer in consumers {
            consumer.join();
        }
        assert_eq!(received.load(Ordering::Relaxed), PRODUCERS * PER_PRODUCER);
        executor.shutdown();
    }
}
