//! Fleet-scale acceptance test for the runtime: thousands of concurrently
//! *idle* sessions must cost a task each, not a thread each.
//!
//! Each simulated session parks twice — once on a timer-wheel sleep
//! (modeling a retry-after wait) and once on a channel receive (modeling
//! an idle dongle waiting for its next sample window) — while the whole
//! fleet is multiplexed over a four-thread executor.

use medsen_runtime::{channel, Clock, Runtime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 2048;
const POOL_THREADS: usize = 4;

#[test]
fn two_thousand_idle_sessions_on_a_four_thread_pool() {
    let runtime = Runtime::new(POOL_THREADS, Clock::Manual);
    assert_eq!(runtime.executor().threads(), POOL_THREADS);

    let (work_tx, work_rx) = channel::bounded::<usize>(64);
    let completed = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let timer = runtime.timer().clone();
            let work_rx = work_rx.clone();
            let completed = Arc::clone(&completed);
            runtime.spawn(async move {
                // Phase 1: every session idles on the timer wheel. With a
                // manual clock nothing can fire until the test advances
                // time, so all SESSIONS tasks are provably parked at once.
                timer
                    .sleep(Duration::from_millis(10 + (i % 50) as u64))
                    .await;
                // Phase 2: idle again, now on the work channel.
                let token = work_rx.recv().await.expect("work arrives");
                medsen_runtime::yield_now().await;
                completed.fetch_add(1, Ordering::Relaxed);
                token
            })
        })
        .collect();
    drop(work_rx);

    // All sessions must reach the timer park. The executor pool is busy
    // only while first-polling; once pending() hits SESSIONS, every task
    // is simultaneously idle and no OS thread is blocked per session.
    while runtime.timer().pending() < SESSIONS {
        std::thread::yield_now();
    }
    assert_eq!(runtime.timer().pending(), SESSIONS);
    assert_eq!(completed.load(Ordering::Relaxed), 0, "nothing fired yet");
    assert_eq!(runtime.executor().tasks_spawned(), SESSIONS);

    // Release phase 1 in one advance; the wheel cascades 50 distinct
    // deadlines in order.
    runtime.timer().advance(Duration::from_millis(64));
    assert_eq!(runtime.timer().pending(), 0);

    // Feed phase 2: the bounded queue (64 deep) forces producers and the
    // 2048 waiting consumers through the backpressure path.
    for i in 0..SESSIONS {
        medsen_runtime::block_on(work_tx.send(i)).expect("receivers alive");
    }

    let mut tokens: Vec<usize> = handles.into_iter().map(|h| h.join()).collect();
    tokens.sort_unstable();
    assert_eq!(tokens, (0..SESSIONS).collect::<Vec<_>>(), "no token lost");
    assert_eq!(completed.load(Ordering::Relaxed), SESSIONS);
    runtime.shutdown();
}
