//! Sample composition: what is inside the mini-pipette.
//!
//! A MedSen test draws < 0.01 mL of blood, dilutes it in PBS 0.9 % (the
//! buffer used throughout the evaluation), and — for authenticated tests —
//! mixes in the user's cyto-coded password beads.

use crate::particle::ParticleKind;
use medsen_units::{Concentration, Microliters};
use serde::{Deserialize, Serialize};

/// One species at one concentration inside a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleComponent {
    /// The particle species.
    pub kind: ParticleKind,
    /// Concentration in the final (post-dilution) sample.
    pub concentration: Concentration,
}

/// A fully specified pipette load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSpec {
    /// Total liquid volume.
    pub volume: Microliters,
    /// All particle species present.
    components: Vec<SampleComponent>,
}

impl SampleSpec {
    /// An empty buffer-only sample (pure PBS).
    pub fn buffer(volume: Microliters) -> Self {
        Self {
            volume,
            components: Vec::new(),
        }
    }

    /// Whole blood diluted `dilution`-fold into PBS.
    ///
    /// Undiluted blood carries ≈ 5 × 10⁶ RBC/µL, ≈ 7 × 10³ WBC/µL and
    /// ≈ 3 × 10⁵ platelets/µL; impedance cytometry needs strong dilution to
    /// singulate particles.
    ///
    /// # Panics
    ///
    /// Panics if `dilution < 1`.
    pub fn whole_blood_dilution(volume: Microliters, dilution: f64) -> Self {
        assert!(dilution >= 1.0, "dilution must be >= 1");
        let mut s = Self::buffer(volume);
        s.add(
            ParticleKind::RedBloodCell,
            Concentration::new(5.0e6).diluted(dilution),
        );
        s.add(
            ParticleKind::WhiteBloodCell,
            Concentration::new(7.0e3).diluted(dilution),
        );
        s.add(
            ParticleKind::Platelet,
            Concentration::new(3.0e5).diluted(dilution),
        );
        s
    }

    /// A bead-only calibration sample, as used in Figs. 12–13.
    pub fn bead_calibration(volume: Microliters, kind: ParticleKind, c: Concentration) -> Self {
        let mut s = Self::buffer(volume);
        s.add(kind, c);
        s
    }

    /// Adds (or tops up) a species.
    pub fn add(&mut self, kind: ParticleKind, concentration: Concentration) -> &mut Self {
        if let Some(existing) = self.components.iter_mut().find(|c| c.kind == kind) {
            existing.concentration += concentration;
        } else {
            self.components.push(SampleComponent {
                kind,
                concentration,
            });
        }
        self
    }

    /// Concentration of one species (zero when absent).
    pub fn concentration_of(&self, kind: ParticleKind) -> Concentration {
        self.components
            .iter()
            .find(|c| c.kind == kind)
            .map(|c| c.concentration)
            .unwrap_or(Concentration::ZERO)
    }

    /// All components.
    pub fn components(&self) -> &[SampleComponent] {
        &self.components
    }

    /// Expected (mean) particle count of one species in the full volume.
    pub fn expected_count(&self, kind: ParticleKind) -> f64 {
        self.concentration_of(kind).expected_count(self.volume)
    }

    /// Expected total particle count across all species.
    pub fn expected_total(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.concentration.expected_count(self.volume))
            .sum()
    }

    /// Total event rate (particles/s) when pumped at a volumetric rate that
    /// processes the sample in `total_seconds`.
    pub fn event_rate(&self, total_seconds: f64) -> f64 {
        assert!(total_seconds > 0.0, "duration must be positive");
        self.expected_total() / total_seconds
    }

    /// Further dilutes every component by `factor` (volume unchanged —
    /// models drawing an aliquot into more buffer).
    pub fn diluted(&self, factor: f64) -> Self {
        Self {
            volume: self.volume,
            components: self
                .components
                .iter()
                .map(|c| SampleComponent {
                    kind: c.kind,
                    concentration: c.concentration.diluted(factor),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blood_dilution_scales_all_species() {
        let s = SampleSpec::whole_blood_dilution(Microliters::new(0.01), 100.0);
        assert_eq!(
            s.concentration_of(ParticleKind::RedBloodCell).value(),
            5.0e4
        );
        assert_eq!(
            s.concentration_of(ParticleKind::WhiteBloodCell).value(),
            70.0
        );
    }

    #[test]
    fn add_merges_same_species() {
        let mut s = SampleSpec::buffer(Microliters::new(1.0));
        s.add(ParticleKind::Bead78, Concentration::new(100.0));
        s.add(ParticleKind::Bead78, Concentration::new(50.0));
        assert_eq!(s.components().len(), 1);
        assert_eq!(s.concentration_of(ParticleKind::Bead78).value(), 150.0);
    }

    #[test]
    fn absent_species_has_zero_concentration() {
        let s = SampleSpec::buffer(Microliters::new(1.0));
        assert_eq!(s.concentration_of(ParticleKind::Bead358).value(), 0.0);
    }

    #[test]
    fn expected_counts() {
        let s = SampleSpec::bead_calibration(
            Microliters::new(2.0),
            ParticleKind::Bead358,
            Concentration::new(250.0),
        );
        assert_eq!(s.expected_count(ParticleKind::Bead358), 500.0);
        assert_eq!(s.expected_total(), 500.0);
    }

    #[test]
    fn event_rate_spreads_total_over_duration() {
        let s = SampleSpec::bead_calibration(
            Microliters::new(1.0),
            ParticleKind::Bead78,
            Concentration::new(600.0),
        );
        assert!((s.event_rate(300.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dilution_preserves_species_set() {
        let s = SampleSpec::whole_blood_dilution(Microliters::new(0.01), 10.0).diluted(5.0);
        assert_eq!(s.components().len(), 3);
        assert_eq!(
            s.concentration_of(ParticleKind::RedBloodCell).value(),
            1.0e5
        );
    }

    #[test]
    #[should_panic(expected = "dilution must be >= 1")]
    fn rejects_sub_unity_dilution() {
        let _ = SampleSpec::whole_blood_dilution(Microliters::new(0.01), 0.5);
    }
}
