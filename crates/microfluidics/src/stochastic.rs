//! Minimal random-sampling helpers.
//!
//! Only `rand` is in the approved dependency set (no `rand_distr`), so the
//! exponential, Gaussian, and Poisson draws the transport model needs are
//! implemented here from first principles.

use rand::Rng;

/// Samples an exponential inter-arrival time with rate `lambda` (events/s)
/// via inverse-transform sampling.
///
/// # Panics
///
/// Panics if `lambda` is not strictly positive.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential rate must be positive");
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / lambda
}

/// Samples a standard normal deviate using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

/// Samples a normal deviate with the given mean and standard deviation.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * sample_standard_normal(rng)
}

/// Samples a Poisson count with mean `lambda`.
///
/// Uses Knuth's product-of-uniforms method for small means and a Gaussian
/// approximation (with continuity correction, clamped at zero) for large
/// means, which is plenty for count statistics at the 10²–10⁶ scale used in
/// the bead-count experiments.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson mean must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let g = sample_normal(rng, lambda, lambda.sqrt());
        g.round().max(0.0) as u64
    }
}

/// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
pub fn sample_bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.random::<f64>() < p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng();
        let lambda = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut r, lambda))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_poisson(&mut r, 3.5) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.5).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_gaussian_branch() {
        let mut r = rng();
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| sample_poisson(&mut r, 500.0) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(sample_poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!(0..100).any(|_| sample_bernoulli(&mut r, 0.0)));
        assert!((0..100).all(|_| sample_bernoulli(&mut r, 1.0)));
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = sample_exponential(&mut rng(), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| sample_poisson(&mut r, 10.0)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| sample_poisson(&mut r, 10.0)).collect()
        };
        assert_eq!(a, b);
    }
}
