//! Particle taxonomy: blood constituents and the synthetic password beads.
//!
//! The evaluation uses two MicroChem bead sizes — 7.8 µm and 3.58 µm —
//! "chosen as they approximate the dimension of various cells found in human
//! blood" (Sec. III-C), plus real blood cells. Section VI-B calibrates the
//! relative peak amplitudes: taking the 3.58 µm bead as the reference, blood
//! cells produce roughly 2× its amplitude and 7.8 µm beads roughly 4×.

use medsen_units::Micrometers;
use medsen_wire::{Reader, Wire, WireError, Writer};
use serde::{Deserialize, Serialize};

/// Coarse particle classes used by server-side classification (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParticleClass {
    /// A biological cell from the blood sample.
    Cell,
    /// A synthetic password bead.
    Bead,
}

/// Every particle species the simulated channel can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ParticleKind {
    /// 3.58 µm MicroChem synthetic bead — the paper's amplitude reference.
    Bead358,
    /// 7.8 µm MicroChem synthetic bead — ≈ 4× the reference amplitude.
    Bead78,
    /// A red blood cell (≈ 7 µm discoid; electrically ≈ 2× reference).
    RedBloodCell,
    /// A white blood cell (8–12 µm; the CD4 count target of HIV staging).
    WhiteBloodCell,
    /// A platelet (≈ 2.5 µm; small, often near the noise floor).
    Platelet,
}

impl ParticleKind {
    /// All kinds, in a stable order (useful for feature tables and tests).
    pub const ALL: [ParticleKind; 5] = [
        ParticleKind::Bead358,
        ParticleKind::Bead78,
        ParticleKind::RedBloodCell,
        ParticleKind::WhiteBloodCell,
        ParticleKind::Platelet,
    ];

    /// Nominal particle diameter.
    pub fn diameter(self) -> Micrometers {
        match self {
            ParticleKind::Bead358 => Micrometers::new(3.58),
            ParticleKind::Bead78 => Micrometers::new(7.8),
            ParticleKind::RedBloodCell => Micrometers::new(7.0),
            ParticleKind::WhiteBloodCell => Micrometers::new(10.0),
            ParticleKind::Platelet => Micrometers::new(2.5),
        }
    }

    /// Relative diameter spread (1 σ, fraction of diameter). Synthetic beads
    /// are monodisperse; cells vary more, which is what makes the Fig. 16
    /// blood-cell cluster wider than the bead clusters.
    pub fn diameter_cv(self) -> f64 {
        match self {
            ParticleKind::Bead358 | ParticleKind::Bead78 => 0.02,
            ParticleKind::RedBloodCell => 0.08,
            ParticleKind::WhiteBloodCell => 0.12,
            ParticleKind::Platelet => 0.15,
        }
    }

    /// Low-frequency (resistive-regime) peak amplitude relative to the
    /// 3.58 µm reference bead, per the Sec. VI-B calibration.
    pub fn relative_amplitude(self) -> f64 {
        match self {
            ParticleKind::Bead358 => 1.0,
            ParticleKind::Bead78 => 4.0,
            ParticleKind::RedBloodCell => 2.0,
            ParticleKind::WhiteBloodCell => 2.6,
            ParticleKind::Platelet => 0.35,
        }
    }

    /// High-frequency roll-off factor. Cell membranes become electrically
    /// transparent above ≈ 2 MHz (the β-dispersion), so "at the frequency of
    /// 2 MHz and higher, the blood cell has lower electrical impedance
    /// response comparing to ... synthetic beads" (Fig. 15). Solid polystyrene
    /// beads do not roll off.
    ///
    /// The returned value multiplies [`relative_amplitude`] at frequency `f_hz`.
    ///
    /// [`relative_amplitude`]: ParticleKind::relative_amplitude
    pub fn dispersion_factor(self, f_hz: f64) -> f64 {
        match self.class() {
            ParticleClass::Bead => 1.0,
            ParticleClass::Cell => {
                // Single-pole roll-off centred at ~1.2 MHz: at 500 kHz a cell
                // keeps ~92% of its low-frequency contrast, at 2.5 MHz ~43%,
                // at 4 MHz ~29%.
                let fc = 1.2e6;
                1.0 / (1.0 + (f_hz / fc).powi(2)).sqrt()
            }
        }
    }

    /// Phase angle φ(f) of the single-pole membrane response at `f_hz`,
    /// in radians, as a non-negative magnitude: `atan(f / fc)` for cells,
    /// 0 for solid beads. Together with [`dispersion_factor`] (= cos φ)
    /// this fully determines the complex dip response
    /// `H(f) = cos φ · e^{-jφ}` a phase-sensitive (I/Q) lock-in sees.
    ///
    /// [`dispersion_factor`]: ParticleKind::dispersion_factor
    pub fn dispersion_phase(self, f_hz: f64) -> f64 {
        match self.class() {
            ParticleClass::Bead => 0.0,
            ParticleClass::Cell => (f_hz / 1.2e6).atan(),
        }
    }

    /// Whether this species is a biological cell or a synthetic bead.
    pub fn class(self) -> ParticleClass {
        match self {
            ParticleKind::Bead358 | ParticleKind::Bead78 => ParticleClass::Bead,
            _ => ParticleClass::Cell,
        }
    }

    /// Whether the species can be used as a password symbol. Only synthetic
    /// beads qualify: their counts are controlled by the pipette manufacturer
    /// rather than the patient's physiology.
    pub fn is_password_bead(self) -> bool {
        self.class() == ParticleClass::Bead
    }

    /// Stokes sedimentation velocity (µm/s) in PBS, used by [`LossModel`] —
    /// `v = g·d²·Δρ / 18µ`. Larger beads sink faster, which is why the paper
    /// reports that "many beads sink to the bottom of the inlet well and never
    /// make it to the sensor" and why losses grow with run time.
    ///
    /// [`LossModel`]: crate::losses::LossModel
    pub fn sedimentation_velocity(self) -> f64 {
        let d = self.diameter().to_meters();
        // Density contrast vs PBS (kg/m³): polystyrene ≈ 50, cells ≈ 60–90.
        let delta_rho = match self.class() {
            ParticleClass::Bead => 50.0,
            ParticleClass::Cell => 80.0,
        };
        let g = 9.81;
        let mu = 1.0e-3; // Pa·s, water-like buffer
        let v_m_per_s = g * d * d * delta_rho / (18.0 * mu);
        v_m_per_s * 1e6 // µm/s
    }

    /// Probability that a single particle adheres to the channel wall during
    /// one pass ("beads being adsorbed to microfluidic channel walls",
    /// Sec. VII-B). Hydrophilic-treated PDMS keeps this small.
    pub fn adsorption_probability(self) -> f64 {
        match self.class() {
            ParticleClass::Bead => 0.03,
            ParticleClass::Cell => 0.05,
        }
    }

    /// Human-readable label used in reports and figure output.
    pub fn label(self) -> &'static str {
        match self {
            ParticleKind::Bead358 => "3.58um bead",
            ParticleKind::Bead78 => "7.8um bead",
            ParticleKind::RedBloodCell => "red blood cell",
            ParticleKind::WhiteBloodCell => "white blood cell",
            ParticleKind::Platelet => "platelet",
        }
    }
}

impl core::fmt::Display for ParticleKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl Wire for ParticleKind {
    fn wire_encode(&self, w: &mut Writer) {
        // Tags follow the `ALL` order and are frozen: they are part of
        // the cross-tier wire contract, not an implementation detail.
        w.put_u8(match self {
            ParticleKind::Bead358 => 0,
            ParticleKind::Bead78 => 1,
            ParticleKind::RedBloodCell => 2,
            ParticleKind::WhiteBloodCell => 3,
            ParticleKind::Platelet => 4,
        });
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ParticleKind::Bead358),
            1 => Ok(ParticleKind::Bead78),
            2 => Ok(ParticleKind::RedBloodCell),
            3 => Ok(ParticleKind::WhiteBloodCell),
            4 => Ok(ParticleKind::Platelet),
            tag => Err(WireError::BadTag {
                what: "particle kind",
                tag,
            }),
        }
    }
}

/// One concrete particle instance flowing through the channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// The species.
    pub kind: ParticleKind,
    /// Actual diameter after manufacturing/biological variation.
    pub diameter: Micrometers,
}

impl Particle {
    /// A particle with the species' nominal diameter.
    pub fn nominal(kind: ParticleKind) -> Self {
        Self {
            kind,
            diameter: kind.diameter(),
        }
    }

    /// Volume-scaled amplitude factor: impedance contrast goes with particle
    /// volume (d³), so diameter jitter modulates the nominal relative
    /// amplitude cubically.
    pub fn amplitude_factor(self) -> f64 {
        let nominal = self.kind.diameter().value();
        let actual = self.diameter.value();
        self.kind.relative_amplitude() * (actual / nominal).powi(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_tags_are_frozen_and_round_trip() {
        for (tag, kind) in ParticleKind::ALL.iter().enumerate() {
            let mut w = Writer::new();
            kind.wire_encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(bytes, [tag as u8], "{kind}: tag drifted");
            let mut r = Reader::new(&bytes);
            assert_eq!(ParticleKind::wire_decode(&mut r), Ok(*kind));
        }
        let mut r = Reader::new(&[5]);
        assert!(ParticleKind::wire_decode(&mut r).is_err());
    }

    #[test]
    fn amplitude_ordering_matches_paper_calibration() {
        // 7.8 µm ≈ 4×, blood cell ≈ 2×, 3.58 µm = 1× (Sec. VI-B).
        assert_eq!(ParticleKind::Bead358.relative_amplitude(), 1.0);
        assert_eq!(ParticleKind::RedBloodCell.relative_amplitude(), 2.0);
        assert_eq!(ParticleKind::Bead78.relative_amplitude(), 4.0);
    }

    #[test]
    fn cells_roll_off_at_high_frequency_but_beads_do_not() {
        let f = 2.5e6;
        assert_eq!(ParticleKind::Bead78.dispersion_factor(f), 1.0);
        let cell = ParticleKind::RedBloodCell.dispersion_factor(f);
        assert!(cell < 0.6, "cell factor at 2.5 MHz was {cell}");
    }

    #[test]
    fn cell_dispersion_is_monotonically_decreasing() {
        let freqs = [5e5, 8e5, 1e6, 2e6, 3e6, 4e6];
        let factors: Vec<f64> = freqs
            .iter()
            .map(|&f| ParticleKind::WhiteBloodCell.dispersion_factor(f))
            .collect();
        assert!(factors.windows(2).all(|w| w[1] < w[0]), "{factors:?}");
    }

    #[test]
    fn at_2mhz_cell_amplitude_falls_below_beads() {
        // Fig. 15: at ≥ 2 MHz the blood cell responds *below* both bead types
        // relative to its low-frequency amplitude ordering versus the large bead.
        let f = 2.0e6;
        let cell = ParticleKind::RedBloodCell.relative_amplitude()
            * ParticleKind::RedBloodCell.dispersion_factor(f);
        let big_bead =
            ParticleKind::Bead78.relative_amplitude() * ParticleKind::Bead78.dispersion_factor(f);
        assert!(cell < big_bead);
        // And the roll-off brings the cell close to the small-bead band.
        let small_bead = ParticleKind::Bead358.relative_amplitude();
        assert!(cell < 1.2 * small_bead + 0.5);
    }

    #[test]
    fn dispersion_phase_is_zero_for_beads_and_grows_for_cells() {
        assert_eq!(ParticleKind::Bead78.dispersion_phase(2.5e6), 0.0);
        assert_eq!(ParticleKind::Bead358.dispersion_phase(5.0e5), 0.0);
        let lo = ParticleKind::RedBloodCell.dispersion_phase(5.0e5);
        let hi = ParticleKind::RedBloodCell.dispersion_phase(4.0e6);
        assert!(lo > 0.0 && hi > lo);
        assert!(hi < core::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn phase_and_magnitude_are_consistent() {
        // dispersion_factor must equal cos(dispersion_phase) — one pole.
        for f in [5e5, 1e6, 2.5e6, 4e6] {
            let kind = ParticleKind::WhiteBloodCell;
            let mag = kind.dispersion_factor(f);
            let phase = kind.dispersion_phase(f);
            assert!((mag - phase.cos()).abs() < 1e-12, "f={f}");
        }
    }

    #[test]
    fn sedimentation_scales_with_diameter_squared() {
        let v78 = ParticleKind::Bead78.sedimentation_velocity();
        let v358 = ParticleKind::Bead358.sedimentation_velocity();
        let expected_ratio = (7.8f64 / 3.58).powi(2);
        assert!((v78 / v358 - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn only_synthetic_beads_are_password_symbols() {
        assert!(ParticleKind::Bead358.is_password_bead());
        assert!(ParticleKind::Bead78.is_password_bead());
        assert!(!ParticleKind::RedBloodCell.is_password_bead());
        assert!(!ParticleKind::WhiteBloodCell.is_password_bead());
        assert!(!ParticleKind::Platelet.is_password_bead());
    }

    #[test]
    fn particle_amplitude_factor_is_cubic_in_diameter() {
        let mut p = Particle::nominal(ParticleKind::Bead358);
        p.diameter = Micrometers::new(3.58 * 2.0);
        assert!((p.amplitude_factor() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn beads_are_more_monodisperse_than_cells() {
        assert!(ParticleKind::Bead78.diameter_cv() < ParticleKind::RedBloodCell.diameter_cv());
    }

    #[test]
    fn display_labels() {
        assert_eq!(ParticleKind::Bead78.to_string(), "7.8um bead");
    }
}
