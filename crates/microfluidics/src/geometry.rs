//! Channel geometry from Fig. 6 and the fabrication section.
//!
//! The measurement pore is a 30 µm-wide, 20 µm-high, 500 µm-long constriction
//! flanked by wide dispersion regions; electrodes are 20 µm wide on a 25 µm
//! pitch, so one electrode pair spans 45 µm of travel.

use medsen_units::{Microliters, Micrometers};
use serde::{Deserialize, Serialize};

/// Errors raised when constructing an invalid channel geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// A required dimension was zero or negative.
    NonPositiveDimension(&'static str),
    /// The pore is too small to pass the largest supported particle.
    PoreTooNarrow {
        /// The offending pore height/width in µm.
        pore_um: f64,
        /// The largest particle diameter that must fit, in µm.
        particle_um: f64,
    },
}

impl core::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GeometryError::NonPositiveDimension(name) => {
                write!(f, "channel dimension `{name}` must be positive")
            }
            GeometryError::PoreTooNarrow {
                pore_um,
                particle_um,
            } => write!(
                f,
                "pore dimension {pore_um} µm cannot pass a {particle_um} µm particle"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// The microfluidic channel's physical dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelGeometry {
    /// Measurement-pore width (paper: 30 µm).
    pub pore_width: Micrometers,
    /// Measurement-pore height, set by the SU-8 mold (paper: 20 µm).
    pub pore_height: Micrometers,
    /// Measurement-pore length (paper: 500 µm).
    pub pore_length: Micrometers,
    /// Electrode strip width (paper: 20 µm).
    pub electrode_width: Micrometers,
    /// Electrode pitch, centre to centre (paper: 25 µm).
    pub electrode_pitch: Micrometers,
    /// Depth of the inlet well that particles can sediment out of.
    pub inlet_well_depth: Micrometers,
}

impl ChannelGeometry {
    /// The geometry fabricated in the paper.
    pub fn paper_default() -> Self {
        Self {
            pore_width: Micrometers::new(30.0),
            pore_height: Micrometers::new(20.0),
            pore_length: Micrometers::new(500.0),
            electrode_width: Micrometers::new(20.0),
            electrode_pitch: Micrometers::new(25.0),
            inlet_well_depth: Micrometers::new(3000.0),
        }
    }

    /// Validates the dimensions and the ability to pass particles up to
    /// `max_particle` in diameter.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonPositiveDimension`] for zero/negative
    /// dimensions and [`GeometryError::PoreTooNarrow`] when the smallest pore
    /// dimension cannot pass `max_particle`.
    pub fn validate(&self, max_particle: Micrometers) -> Result<(), GeometryError> {
        let checks = [
            (self.pore_width, "pore_width"),
            (self.pore_height, "pore_height"),
            (self.pore_length, "pore_length"),
            (self.electrode_width, "electrode_width"),
            (self.electrode_pitch, "electrode_pitch"),
            (self.inlet_well_depth, "inlet_well_depth"),
        ];
        for (dim, name) in checks {
            if dim.value() <= 0.0 {
                return Err(GeometryError::NonPositiveDimension(name));
            }
        }
        let min_pore = self.pore_width.min(self.pore_height);
        if max_particle.value() >= min_pore.value() {
            return Err(GeometryError::PoreTooNarrow {
                pore_um: min_pore.value(),
                particle_um: max_particle.value(),
            });
        }
        Ok(())
    }

    /// Pore cross-sectional area in µm².
    pub fn cross_section(&self) -> f64 {
        self.pore_width.area(self.pore_height)
    }

    /// Total pore volume.
    pub fn pore_volume(&self) -> Microliters {
        Microliters::from_cubic_micrometers(self.cross_section() * self.pore_length.value())
    }

    /// Length of channel over which one electrode pair senses a particle:
    /// one pitch plus two half-electrodes (paper Sec. VII-A: 45 µm).
    pub fn sensing_span(&self) -> Micrometers {
        self.electrode_pitch + self.electrode_width
    }

    /// Distance between the first and last electrode of an `n_outputs`-output
    /// sensing region. Governs how often two particles occupy the region
    /// simultaneously (the coincidence problem in Sec. IV-A).
    pub fn array_span(&self, n_outputs: usize) -> Micrometers {
        if n_outputs == 0 {
            return Micrometers::ZERO;
        }
        // Each output electrode sits between input electrodes on the common
        // rake; the full region alternates input/output strips on one pitch.
        let strips = 2 * n_outputs + 1;
        Micrometers::new(strips as f64 * self.electrode_pitch.value()) + self.electrode_width
    }

    /// Whether a particle of diameter `d` effectively singulates (only one
    /// fits across the pore width at a time). A 30 µm pore singulates all
    /// blood-scale particles.
    pub fn singulates(&self, d: Micrometers) -> bool {
        2.0 * d.value() > self.pore_width.value().min(self.pore_height.value())
            || d.value() > 0.25 * self.pore_width.value()
    }
}

impl Default for ChannelGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_valid_for_all_particles() {
        let g = ChannelGeometry::paper_default();
        assert!(g.validate(Micrometers::new(12.0)).is_ok());
    }

    #[test]
    fn sensing_span_is_45_micrometers() {
        // Sec. VII-A: "the distance each bead travels through a pair of
        // electrodes ... is 45 µm (25 µm pitch, and 20 µm of two halves)".
        let g = ChannelGeometry::paper_default();
        assert_eq!(g.sensing_span().value(), 45.0);
    }

    #[test]
    fn pore_volume_matches_hand_calculation() {
        let g = ChannelGeometry::paper_default();
        // 30 × 20 × 500 µm³ = 3 × 10⁵ µm³ = 0.3 nL = 3 × 10⁻⁴ µL.
        let v = g.pore_volume();
        assert!((v.value() - 3.0e-4).abs() < 1e-12, "{v}");
    }

    #[test]
    fn rejects_zero_dimension() {
        let mut g = ChannelGeometry::paper_default();
        g.pore_width = Micrometers::ZERO;
        assert_eq!(
            g.validate(Micrometers::new(1.0)),
            Err(GeometryError::NonPositiveDimension("pore_width"))
        );
    }

    #[test]
    fn rejects_oversized_particle() {
        let g = ChannelGeometry::paper_default();
        let err = g.validate(Micrometers::new(25.0)).unwrap_err();
        assert!(matches!(err, GeometryError::PoreTooNarrow { .. }));
        assert!(err.to_string().contains("cannot pass"));
    }

    #[test]
    fn array_span_grows_with_output_count() {
        let g = ChannelGeometry::paper_default();
        let s2 = g.array_span(2);
        let s9 = g.array_span(9);
        assert!(s9.value() > s2.value());
        assert_eq!(g.array_span(0).value(), 0.0);
    }

    #[test]
    fn blood_cells_singulate_in_paper_pore() {
        let g = ChannelGeometry::paper_default();
        assert!(g.singulates(Micrometers::new(10.0)));
        assert!(g.singulates(Micrometers::new(7.8)));
    }
}
