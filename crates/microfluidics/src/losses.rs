//! Count-loss models: sedimentation and wall adsorption.
//!
//! Figures 12–13 plot *empirical* against *estimated* bead counts and find a
//! linear relationship with slope below one. The paper attributes the deficit
//! to (i) beads sinking to the bottom of the inlet well ("the longer the
//! experiments run, the more error would be expected") and (ii) beads
//! adsorbing to the channel walls. [`LossModel`] reproduces both effects so
//! the bench harness regenerates the figures' shape.

use crate::particle::ParticleKind;
use medsen_units::{Micrometers, Seconds};
use serde::{Deserialize, Serialize};

/// Expected delivery statistics for one species over one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Particles nominally present per the manufacturer concentration.
    pub estimated: f64,
    /// Expected particles actually reaching the sensor.
    pub delivered: f64,
    /// Fraction lost to inlet-well sedimentation.
    pub sedimentation_loss: f64,
    /// Fraction lost to wall adsorption.
    pub adsorption_loss: f64,
}

impl DeliveryReport {
    /// Delivered / estimated.
    pub fn yield_fraction(&self) -> f64 {
        if self.estimated == 0.0 {
            0.0
        } else {
            self.delivered / self.estimated
        }
    }
}

/// Sedimentation + adsorption loss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Depth of the inlet well particles must stay suspended in.
    pub well_depth: Micrometers,
    /// Multiplier on the Stokes sedimentation velocity (1.0 = ideal Stokes;
    /// < 1 models convective resuspension).
    pub sedimentation_factor: f64,
    /// Multiplier on the per-pass adsorption probability.
    pub adsorption_factor: f64,
}

impl LossModel {
    /// Loss model calibrated against the paper's Figs. 12–13 deficits.
    pub fn paper_default() -> Self {
        Self {
            well_depth: Micrometers::new(3000.0),
            sedimentation_factor: 1.0,
            adsorption_factor: 1.0,
        }
    }

    /// An ideal lossless channel (perfect surface chemistry — the fix the
    /// paper defers to future work).
    pub fn lossless() -> Self {
        Self {
            well_depth: Micrometers::new(3000.0),
            sedimentation_factor: 0.0,
            adsorption_factor: 0.0,
        }
    }

    /// Fraction of particles still suspended after `elapsed` in the inlet
    /// well. A particle starting at uniform random height settles out once it
    /// reaches the bottom, so the surviving fraction decays linearly until
    /// every starting height has settled.
    pub fn suspended_fraction(&self, kind: ParticleKind, elapsed: Seconds) -> f64 {
        if self.sedimentation_factor == 0.0 {
            return 1.0;
        }
        let v = kind.sedimentation_velocity() * self.sedimentation_factor; // µm/s
        let settled_depth = v * elapsed.value();
        (1.0 - settled_depth / self.well_depth.value()).clamp(0.0, 1.0)
    }

    /// Probability a particle survives wall adsorption on its way to the
    /// electrodes.
    pub fn adsorption_survival(&self, kind: ParticleKind) -> f64 {
        (1.0 - kind.adsorption_probability() * self.adsorption_factor).clamp(0.0, 1.0)
    }

    /// Expected delivery over a run of `duration` for `estimated` particles
    /// of `kind`, assuming uniform draw-down of the well over the run.
    ///
    /// The sedimentation survival is averaged over the run because particles
    /// processed early see little settling while late ones see a lot.
    pub fn delivery(
        &self,
        kind: ParticleKind,
        estimated: f64,
        duration: Seconds,
    ) -> DeliveryReport {
        // Average the suspended fraction over [0, duration] (trapezoidal on a
        // piecewise-linear function is exact with enough knots; the function
        // is linear until exhaustion, so two regimes suffice — integrate
        // numerically for simplicity and robustness).
        let steps = 64;
        let mut acc = 0.0;
        for i in 0..=steps {
            let t = duration.value() * i as f64 / steps as f64;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            acc += w * self.suspended_fraction(kind, Seconds::new(t));
        }
        let sed_survival = acc / steps as f64;
        let ads_survival = self.adsorption_survival(kind);
        let delivered = estimated * sed_survival * ads_survival;
        DeliveryReport {
            estimated,
            delivered,
            sedimentation_loss: 1.0 - sed_survival,
            adsorption_loss: 1.0 - ads_survival,
        }
    }
}

impl Default for LossModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_model_delivers_everything() {
        let m = LossModel::lossless();
        let r = m.delivery(ParticleKind::Bead78, 1000.0, Seconds::new(3600.0));
        assert_eq!(r.delivered, 1000.0);
        assert_eq!(r.yield_fraction(), 1.0);
    }

    #[test]
    fn larger_beads_lose_more_to_sedimentation() {
        // Fig. 12 vs Fig. 13: 7.8 µm beads show a larger deficit.
        let m = LossModel::paper_default();
        let t = Seconds::new(300.0);
        let big = m.delivery(ParticleKind::Bead78, 1000.0, t);
        let small = m.delivery(ParticleKind::Bead358, 1000.0, t);
        assert!(big.yield_fraction() < small.yield_fraction());
    }

    #[test]
    fn losses_grow_with_run_time() {
        let m = LossModel::paper_default();
        let short = m.delivery(ParticleKind::Bead78, 1000.0, Seconds::new(60.0));
        let long = m.delivery(ParticleKind::Bead78, 1000.0, Seconds::new(1200.0));
        assert!(long.yield_fraction() < short.yield_fraction());
    }

    #[test]
    fn suspended_fraction_clamps_to_zero() {
        let m = LossModel::paper_default();
        // After many hours everything has settled.
        let f = m.suspended_fraction(ParticleKind::Bead78, Seconds::new(1e6));
        assert_eq!(f, 0.0);
    }

    #[test]
    fn yield_fraction_of_zero_estimate_is_zero() {
        let m = LossModel::paper_default();
        let r = m.delivery(ParticleKind::Bead358, 0.0, Seconds::new(10.0));
        assert_eq!(r.yield_fraction(), 0.0);
    }

    #[test]
    fn delivery_is_linear_in_estimate() {
        // Linearity is what makes Figs. 12–13 straight lines.
        let m = LossModel::paper_default();
        let t = Seconds::new(300.0);
        let a = m.delivery(ParticleKind::Bead358, 100.0, t).delivered;
        let b = m.delivery(ParticleKind::Bead358, 1000.0, t).delivered;
        assert!((b / a - 10.0).abs() < 1e-9);
    }

    #[test]
    fn loss_fractions_are_probabilities() {
        let m = LossModel::paper_default();
        for kind in ParticleKind::ALL {
            let r = m.delivery(kind, 500.0, Seconds::new(600.0));
            assert!((0.0..=1.0).contains(&r.sedimentation_loss));
            assert!((0.0..=1.0).contains(&r.adsorption_loss));
            assert!(r.delivered <= r.estimated);
        }
    }
}
