//! Particle transport through the measurement pore.
//!
//! Particles arrive at the sensing region as a marked Poisson process whose
//! rate follows from concentration × volumetric flow. Each arrival becomes a
//! [`TransitEvent`] carrying the particle, its arrival time, and the fluid
//! velocity in effect — everything the impedance-trace synthesiser needs.
//!
//! The simulator also reports *coincidences*: arrivals closer together than
//! the electrode-array span. Section IV-A observes that "two or more cells
//! may appear among the electrodes simultaneously; this complicates the
//! signal encryption and decryption procedures" — the statistic quantifies
//! how often that happens.

use crate::geometry::ChannelGeometry;
use crate::particle::{Particle, ParticleKind};
use crate::pump::PeristalticPump;
use crate::sample::SampleSpec;
use crate::stochastic::{sample_exponential, sample_normal};
use medsen_units::{Micrometers, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One particle crossing the sensing region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitEvent {
    /// Arrival time at the first electrode.
    pub time: Seconds,
    /// The particle in transit.
    pub particle: Particle,
    /// Fluid (and particle) velocity during the transit, µm/s.
    pub velocity: f64,
}

impl TransitEvent {
    /// Time to cross one electrode pair's sensing span.
    pub fn pair_transit(&self, geometry: &ChannelGeometry) -> Seconds {
        geometry.sensing_span().transit_time(self.velocity)
    }
}

/// Coincidence statistics over a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoincidenceStats {
    /// Total transits.
    pub total: usize,
    /// Pairs of consecutive transits that overlapped inside the array span.
    pub coincident_pairs: usize,
}

impl CoincidenceStats {
    /// Fraction of transits involved in a coincidence.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.coincident_pairs as f64 / self.total as f64
        }
    }
}

/// Poisson transport simulator for a sample driven through a channel.
#[derive(Debug)]
pub struct TransportSimulator {
    geometry: ChannelGeometry,
    pump: PeristalticPump,
    rng: StdRng,
}

impl TransportSimulator {
    /// Creates a simulator with a deterministic seed.
    pub fn new(geometry: ChannelGeometry, pump: PeristalticPump, seed: u64) -> Self {
        Self {
            geometry,
            pump,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The channel geometry in use.
    pub fn geometry(&self) -> &ChannelGeometry {
        &self.geometry
    }

    /// The pump in use.
    pub fn pump(&self) -> &PeristalticPump {
        &self.pump
    }

    /// Mutable pump access (the cipher controller reprograms flow speed).
    pub fn pump_mut(&mut self) -> &mut PeristalticPump {
        &mut self.pump
    }

    /// Instantaneous arrival rate (particles/s) of one species at time `t`.
    ///
    /// Rate = concentration (1/µL) × volumetric flow (µL/s), i.e. the mean
    /// number of particles in the fluid volume crossing the sensor per second.
    pub fn arrival_rate(&self, sample: &SampleSpec, kind: ParticleKind, t: Seconds) -> f64 {
        let rate_ul_per_s = self.pump.profile().rate_at(t).value() / 60.0;
        sample.concentration_of(kind).value() * rate_ul_per_s
    }

    /// Simulates all transits during `[0, duration)`.
    ///
    /// Each species is an independent Poisson stream (thinned against the
    /// others implicitly — superposition of Poisson processes); events are
    /// returned sorted by arrival time.
    pub fn run(&mut self, sample: &SampleSpec, duration: Seconds) -> Vec<TransitEvent> {
        let mut events = Vec::new();
        let kinds: Vec<ParticleKind> = sample.components().iter().map(|c| c.kind).collect();
        for kind in kinds {
            let mut t = 0.0;
            loop {
                let lambda = self.arrival_rate(sample, kind, Seconds::new(t));
                if lambda <= 0.0 {
                    break;
                }
                t += sample_exponential(&mut self.rng, lambda);
                if t >= duration.value() {
                    break;
                }
                let time = Seconds::new(t);
                events.push(self.make_event(kind, time));
            }
        }
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("times are finite"));
        events
    }

    /// Simulates exactly `count` transits of a single species, spread
    /// uniformly at the species' natural spacing. Used by experiments that
    /// need a ground-truth count rather than a concentration.
    pub fn run_exact_count(
        &mut self,
        kind: ParticleKind,
        count: usize,
        duration: Seconds,
    ) -> Vec<TransitEvent> {
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let t = Seconds::new(self.rng.random::<f64>() * duration.value());
            events.push(self.make_event(kind, t));
        }
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("times are finite"));
        events
    }

    fn make_event(&mut self, kind: ParticleKind, time: Seconds) -> TransitEvent {
        let d_nominal = kind.diameter().value();
        let d = sample_normal(&mut self.rng, d_nominal, d_nominal * kind.diameter_cv())
            .max(0.2 * d_nominal);
        let velocity =
            self.pump
                .velocity_at(time, self.geometry.pore_width, self.geometry.pore_height);
        // Peristaltic pulsation jitters the instantaneous velocity.
        let velocity = sample_normal(&mut self.rng, velocity, velocity * self.pump.pulsation)
            .max(0.1 * velocity);
        TransitEvent {
            time,
            particle: Particle {
                kind,
                diameter: Micrometers::new(d),
            },
            velocity,
        }
    }

    /// Counts coincidences: consecutive events whose occupancy intervals in
    /// an `n_outputs`-electrode array overlap.
    pub fn coincidences(&self, events: &[TransitEvent], n_outputs: usize) -> CoincidenceStats {
        let span = self.geometry.array_span(n_outputs);
        let mut pairs = 0;
        for w in events.windows(2) {
            let occupancy = span.value() / w[0].velocity; // seconds inside the array
            if w[1].time.value() - w[0].time.value() < occupancy {
                pairs += 1;
            }
        }
        CoincidenceStats {
            total: events.len(),
            coincident_pairs: pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_units::{Concentration, Microliters};

    fn sim(seed: u64) -> TransportSimulator {
        TransportSimulator::new(
            ChannelGeometry::paper_default(),
            PeristalticPump::paper_default(),
            seed,
        )
    }

    #[test]
    fn event_count_tracks_poisson_mean() {
        let mut s = sim(1);
        // 600 beads/µL at 0.08 µL/min ⇒ 0.8 beads/s; over 500 s ⇒ ~400.
        let sample = SampleSpec::bead_calibration(
            Microliters::new(1.0),
            ParticleKind::Bead78,
            Concentration::new(600.0),
        );
        let events = s.run(&sample, Seconds::new(500.0));
        let n = events.len() as f64;
        assert!((n - 400.0).abs() < 80.0, "n = {n}");
    }

    #[test]
    fn events_are_sorted_and_within_duration() {
        let mut s = sim(2);
        let sample = SampleSpec::whole_blood_dilution(Microliters::new(0.01), 50.0);
        let events = s.run(&sample, Seconds::new(3.0));
        assert!(events
            .windows(2)
            .all(|w| w[0].time.value() <= w[1].time.value()));
        assert!(events.iter().all(|e| e.time.value() < 3.0));
    }

    #[test]
    fn exact_count_produces_exactly_count_events() {
        let mut s = sim(3);
        let events = s.run_exact_count(ParticleKind::Bead358, 137, Seconds::new(60.0));
        assert_eq!(events.len(), 137);
        assert!(events
            .iter()
            .all(|e| e.particle.kind == ParticleKind::Bead358));
    }

    #[test]
    fn transit_time_is_roughly_20ms_at_paper_flow() {
        let mut s = sim(4);
        let events = s.run_exact_count(ParticleKind::RedBloodCell, 50, Seconds::new(10.0));
        let g = ChannelGeometry::paper_default();
        let mean_ms: f64 = events
            .iter()
            .map(|e| e.pair_transit(&g).to_millis())
            .sum::<f64>()
            / events.len() as f64;
        // Paper: ≈ 20 ms per pair at ~0.08 µL/min.
        assert!((mean_ms - 20.0).abs() < 4.0, "mean transit {mean_ms} ms");
    }

    #[test]
    fn coincidence_rate_increases_with_concentration() {
        let mut s = sim(5);
        let sparse = SampleSpec::bead_calibration(
            Microliters::new(1.0),
            ParticleKind::Bead358,
            Concentration::new(200.0),
        );
        let dense = sparse
            .clone()
            .add(ParticleKind::Bead358, Concentration::new(40_000.0))
            .clone();
        let ev_sparse = s.run(&sparse, Seconds::new(200.0));
        let ev_dense = s.run(&dense, Seconds::new(200.0));
        let c_sparse = s.coincidences(&ev_sparse, 9).rate();
        let c_dense = s.coincidences(&ev_dense, 9).rate();
        assert!(c_dense > c_sparse, "dense {c_dense} <= sparse {c_sparse}");
    }

    #[test]
    fn diameters_jitter_around_nominal() {
        let mut s = sim(6);
        let events = s.run_exact_count(ParticleKind::Bead78, 500, Seconds::new(100.0));
        let mean: f64 = events
            .iter()
            .map(|e| e.particle.diameter.value())
            .sum::<f64>()
            / events.len() as f64;
        assert!((mean - 7.8).abs() < 0.1, "mean diameter {mean}");
        // Not all identical.
        let first = events[0].particle.diameter;
        assert!(events.iter().any(|e| e.particle.diameter != first));
    }

    #[test]
    fn same_seed_reproduces_run() {
        let sample = SampleSpec::whole_blood_dilution(Microliters::new(0.01), 100.0);
        let a = sim(7).run(&sample, Seconds::new(2.0));
        let b = sim(7).run(&sample, Seconds::new(2.0));
        assert_eq!(a, b);
    }

    #[test]
    fn arrival_rate_follows_flow_schedule() {
        use crate::pump::{FlowProfile, FlowSegment};
        use medsen_units::FlowRate;
        let profile = FlowProfile::from_segments(vec![
            FlowSegment {
                start: Seconds::new(0.0),
                rate: FlowRate::new(0.06),
            },
            FlowSegment {
                start: Seconds::new(10.0),
                rate: FlowRate::new(0.12),
            },
        ])
        .unwrap();
        let s = TransportSimulator::new(
            ChannelGeometry::paper_default(),
            PeristalticPump::with_profile(profile),
            0,
        );
        let sample = SampleSpec::bead_calibration(
            Microliters::new(1.0),
            ParticleKind::Bead358,
            Concentration::new(1000.0),
        );
        let early = s.arrival_rate(&sample, ParticleKind::Bead358, Seconds::new(5.0));
        let late = s.arrival_rate(&sample, ParticleKind::Bead358, Seconds::new(15.0));
        assert!((late / early - 2.0).abs() < 1e-9);
    }
}
