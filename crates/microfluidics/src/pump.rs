//! Peristaltic pump and programmable flow profile.
//!
//! The prototype drives the channel with a Harvard Apparatus 11 Pico Plus
//! Elite at 0.08 µL/min. The cipher's third key parameter `S(t)` is the flow
//! speed: changing it stretches or compresses peak widths so that an
//! eavesdropper cannot use width as a stable per-cell signature (Sec. IV-A).

use medsen_units::{FlowRate, Micrometers, Seconds};
use serde::{Deserialize, Serialize};

/// One constant-speed segment of a flow schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSegment {
    /// Segment start time.
    pub start: Seconds,
    /// Flow rate during the segment.
    pub rate: FlowRate,
}

/// A piecewise-constant pump schedule.
///
/// The schedule always has at least one segment starting at t = 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowProfile {
    segments: Vec<FlowSegment>,
}

impl FlowProfile {
    /// A constant-rate profile.
    pub fn constant(rate: FlowRate) -> Self {
        Self {
            segments: vec![FlowSegment {
                start: Seconds::ZERO,
                rate,
            }],
        }
    }

    /// Builds a profile from `(start, rate)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error string if the list is empty, does not start at t = 0,
    /// is not strictly increasing in time, or contains a non-positive rate.
    pub fn from_segments(segments: Vec<FlowSegment>) -> Result<Self, String> {
        if segments.is_empty() {
            return Err("flow profile needs at least one segment".into());
        }
        if segments[0].start.value() != 0.0 {
            return Err("first flow segment must start at t = 0".into());
        }
        for w in segments.windows(2) {
            if w[1].start.value() <= w[0].start.value() {
                return Err("flow segments must be strictly increasing in time".into());
            }
        }
        if segments.iter().any(|s| s.rate.value() <= 0.0) {
            return Err("flow rates must be positive".into());
        }
        Ok(Self { segments })
    }

    /// The rate in effect at time `t` (clamps before 0 to the first segment).
    pub fn rate_at(&self, t: Seconds) -> FlowRate {
        let mut rate = self.segments[0].rate;
        for s in &self.segments {
            if s.start.value() <= t.value() {
                rate = s.rate;
            } else {
                break;
            }
        }
        rate
    }

    /// All segments.
    pub fn segments(&self) -> &[FlowSegment] {
        &self.segments
    }

    /// Appends a speed change at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not after the last segment or `rate` is not
    /// positive.
    pub fn push_change(&mut self, start: Seconds, rate: FlowRate) {
        let last = self.segments.last().expect("profile is never empty");
        assert!(
            start.value() > last.start.value(),
            "segments must be strictly increasing"
        );
        assert!(rate.value() > 0.0, "flow rate must be positive");
        self.segments.push(FlowSegment { start, rate });
    }
}

/// The bench pump plus the channel it drives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeristalticPump {
    profile: FlowProfile,
    /// Relative pump pulsation (1 σ of instantaneous rate around set-point).
    pub pulsation: f64,
}

impl PeristalticPump {
    /// The paper's pump at its 0.08 µL/min set-point, with the small
    /// pulsation a peristaltic mechanism exhibits.
    pub fn paper_default() -> Self {
        Self {
            profile: FlowProfile::constant(FlowRate::new(0.08)),
            pulsation: 0.02,
        }
    }

    /// A pump with a custom schedule.
    pub fn with_profile(profile: FlowProfile) -> Self {
        Self {
            profile,
            pulsation: 0.02,
        }
    }

    /// The commanded profile.
    pub fn profile(&self) -> &FlowProfile {
        &self.profile
    }

    /// Mutable access to the schedule (the cipher controller reprograms it).
    pub fn profile_mut(&mut self) -> &mut FlowProfile {
        &mut self.profile
    }

    /// Mean fluid velocity (µm/s) at time `t` in a pore of the given
    /// cross-section.
    pub fn velocity_at(&self, t: Seconds, width: Micrometers, height: Micrometers) -> f64 {
        self.profile.rate_at(t).channel_velocity(width, height)
    }
}

impl Default for PeristalticPump {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_rate_everywhere() {
        let p = FlowProfile::constant(FlowRate::new(0.08));
        assert_eq!(p.rate_at(Seconds::new(0.0)).value(), 0.08);
        assert_eq!(p.rate_at(Seconds::new(1e6)).value(), 0.08);
    }

    #[test]
    fn stepped_profile_switches_at_boundaries() {
        let p = FlowProfile::from_segments(vec![
            FlowSegment {
                start: Seconds::new(0.0),
                rate: FlowRate::new(0.08),
            },
            FlowSegment {
                start: Seconds::new(10.0),
                rate: FlowRate::new(0.04),
            },
            FlowSegment {
                start: Seconds::new(20.0),
                rate: FlowRate::new(0.16),
            },
        ])
        .unwrap();
        assert_eq!(p.rate_at(Seconds::new(5.0)).value(), 0.08);
        assert_eq!(p.rate_at(Seconds::new(10.0)).value(), 0.04);
        assert_eq!(p.rate_at(Seconds::new(15.0)).value(), 0.04);
        assert_eq!(p.rate_at(Seconds::new(25.0)).value(), 0.16);
    }

    #[test]
    fn profile_rejects_bad_segment_lists() {
        assert!(FlowProfile::from_segments(vec![]).is_err());
        assert!(FlowProfile::from_segments(vec![FlowSegment {
            start: Seconds::new(1.0),
            rate: FlowRate::new(0.08),
        }])
        .is_err());
        assert!(FlowProfile::from_segments(vec![
            FlowSegment {
                start: Seconds::new(0.0),
                rate: FlowRate::new(0.08)
            },
            FlowSegment {
                start: Seconds::new(0.0),
                rate: FlowRate::new(0.08)
            },
        ])
        .is_err());
        assert!(FlowProfile::from_segments(vec![FlowSegment {
            start: Seconds::new(0.0),
            rate: FlowRate::new(-0.01),
        }])
        .is_err());
    }

    #[test]
    fn push_change_extends_schedule() {
        let mut p = FlowProfile::constant(FlowRate::new(0.08));
        p.push_change(Seconds::new(30.0), FlowRate::new(0.02));
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.rate_at(Seconds::new(31.0)).value(), 0.02);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_change_rejects_non_monotonic_start() {
        let mut p = FlowProfile::constant(FlowRate::new(0.08));
        p.push_change(Seconds::new(0.0), FlowRate::new(0.02));
    }

    #[test]
    fn pump_velocity_matches_flow_math() {
        let pump = PeristalticPump::paper_default();
        let v = pump.velocity_at(
            Seconds::ZERO,
            Micrometers::new(30.0),
            Micrometers::new(20.0),
        );
        // 0.08 µL/min in a 600 µm² pore → ≈ 2222 µm/s.
        assert!((v - 2222.2).abs() < 1.0, "v = {v}");
    }

    #[test]
    fn slower_flow_means_lower_velocity() {
        // Sec. IV-A: "slow fluid speed results in peaks with larger widths" —
        // width ∝ 1/velocity.
        let slow = PeristalticPump::with_profile(FlowProfile::constant(FlowRate::new(0.02)));
        let fast = PeristalticPump::with_profile(FlowProfile::constant(FlowRate::new(0.16)));
        let w = Micrometers::new(30.0);
        let h = Micrometers::new(20.0);
        assert!(slow.velocity_at(Seconds::ZERO, w, h) < fast.velocity_at(Seconds::ZERO, w, h));
    }
}
