//! Mixing cyto-coded password beads into a patient sample.
//!
//! "Each password consists of a specific secret ratio of micron-sized
//! synthetic beads, that will be mixed with individual's blood sample"
//! (Sec. I). This module is the wet-lab half of the password scheme: given a
//! list of [`BeadDose`]s it produces the sample the sensor will actually see.
//! The symbolic password machinery itself lives in `medsen-core`.

use crate::particle::ParticleKind;
use crate::sample::SampleSpec;
use medsen_units::Concentration;
use serde::{Deserialize, Serialize};

/// A dose of one bead type, expressed as a concentration in the final sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeadDose {
    /// The synthetic bead species.
    pub kind: ParticleKind,
    /// Target concentration in the mixed sample.
    pub concentration: Concentration,
}

/// Errors from password mixing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixError {
    /// A dose used a non-bead species (blood cells cannot be dosed).
    NotAPasswordBead(ParticleKind),
    /// A dose had a non-positive concentration.
    NonPositiveDose(ParticleKind),
}

impl core::fmt::Display for MixError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MixError::NotAPasswordBead(kind) => {
                write!(f, "`{kind}` is not a synthetic password bead")
            }
            MixError::NonPositiveDose(kind) => {
                write!(f, "dose of `{kind}` must have positive concentration")
            }
        }
    }
}

impl std::error::Error for MixError {}

/// Mixes password beads into `sample`, returning the authenticated sample.
///
/// # Errors
///
/// Returns [`MixError::NotAPasswordBead`] if any dose names a biological
/// species and [`MixError::NonPositiveDose`] for empty doses.
///
/// # Examples
///
/// ```
/// use medsen_microfluidics::{mix_password_beads, BeadDose, ParticleKind, SampleSpec};
/// use medsen_units::{Concentration, Microliters};
///
/// let blood = SampleSpec::whole_blood_dilution(Microliters::new(0.01), 200.0);
/// let doses = [
///     BeadDose { kind: ParticleKind::Bead358, concentration: Concentration::new(120.0) },
///     BeadDose { kind: ParticleKind::Bead78, concentration: Concentration::new(60.0) },
/// ];
/// let mixed = mix_password_beads(&blood, &doses)?;
/// assert_eq!(mixed.concentration_of(ParticleKind::Bead78).value(), 60.0);
/// # Ok::<(), medsen_microfluidics::mixing::MixError>(())
/// ```
pub fn mix_password_beads(sample: &SampleSpec, doses: &[BeadDose]) -> Result<SampleSpec, MixError> {
    for dose in doses {
        if !dose.kind.is_password_bead() {
            return Err(MixError::NotAPasswordBead(dose.kind));
        }
        if dose.concentration.value() <= 0.0 {
            return Err(MixError::NonPositiveDose(dose.kind));
        }
    }
    let mut mixed = sample.clone();
    for dose in doses {
        mixed.add(dose.kind, dose.concentration);
    }
    Ok(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_units::Microliters;

    #[test]
    fn mixing_adds_bead_components() {
        let blood = SampleSpec::whole_blood_dilution(Microliters::new(0.01), 100.0);
        let mixed = mix_password_beads(
            &blood,
            &[BeadDose {
                kind: ParticleKind::Bead358,
                concentration: Concentration::new(500.0),
            }],
        )
        .unwrap();
        assert_eq!(mixed.concentration_of(ParticleKind::Bead358).value(), 500.0);
        // Blood composition untouched.
        assert_eq!(
            mixed.concentration_of(ParticleKind::RedBloodCell).value(),
            blood.concentration_of(ParticleKind::RedBloodCell).value()
        );
    }

    #[test]
    fn rejects_biological_species_as_password() {
        let blood = SampleSpec::buffer(Microliters::new(0.01));
        let err = mix_password_beads(
            &blood,
            &[BeadDose {
                kind: ParticleKind::WhiteBloodCell,
                concentration: Concentration::new(10.0),
            }],
        )
        .unwrap_err();
        assert_eq!(
            err,
            MixError::NotAPasswordBead(ParticleKind::WhiteBloodCell)
        );
    }

    #[test]
    fn rejects_zero_dose() {
        let blood = SampleSpec::buffer(Microliters::new(0.01));
        let err = mix_password_beads(
            &blood,
            &[BeadDose {
                kind: ParticleKind::Bead78,
                concentration: Concentration::ZERO,
            }],
        )
        .unwrap_err();
        assert_eq!(err, MixError::NonPositiveDose(ParticleKind::Bead78));
    }

    #[test]
    fn original_sample_is_not_mutated() {
        let blood = SampleSpec::buffer(Microliters::new(0.01));
        let _ = mix_password_beads(
            &blood,
            &[BeadDose {
                kind: ParticleKind::Bead78,
                concentration: Concentration::new(5.0),
            }],
        )
        .unwrap();
        assert_eq!(blood.concentration_of(ParticleKind::Bead78).value(), 0.0);
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(MixError::NotAPasswordBead(ParticleKind::Platelet)
            .to_string()
            .contains("not a synthetic password bead"));
    }
}
