//! Microfluidic substrate for the MedSen reproduction.
//!
//! The paper fabricates a PDMS microfluidic channel (30 µm × 20 µm
//! measurement pore, 500 µm long) that singulates blood cells and synthetic
//! beads so they cross the sensing electrodes one at a time. This crate
//! replaces the physical device with a stochastic transport model:
//!
//! * [`ChannelGeometry`] — the channel dimensions from Fig. 6 and Sec. VI-A;
//! * [`ParticleKind`]/[`Particle`] — blood cells and the 7.8 µm / 3.58 µm
//!   MicroChem synthetic beads the evaluation uses;
//! * [`SampleSpec`] — a pipette's contents: blood diluted in PBS plus a
//!   cyto-coded bead mixture;
//! * [`PeristalticPump`]/[`FlowProfile`] — the Harvard Apparatus pump, with
//!   the programmable speed schedule the cipher's `S(t)` parameter drives;
//! * [`TransportSimulator`] — Poisson arrivals, transit kinematics,
//!   coincidence events;
//! * [`LossModel`] — sedimentation and wall-adsorption count losses that
//!   explain the sub-unity slope of Figs. 12–13.
//!
//! # Examples
//!
//! ```
//! use medsen_microfluidics::{ChannelGeometry, SampleSpec, TransportSimulator, PeristalticPump};
//! use medsen_units::{Microliters, Seconds};
//!
//! let channel = ChannelGeometry::paper_default();
//! let sample = SampleSpec::whole_blood_dilution(Microliters::new(0.01), 200.0);
//! let pump = PeristalticPump::paper_default();
//! let mut sim = TransportSimulator::new(channel, pump, 42);
//! let events = sim.run(&sample, Seconds::new(5.0));
//! assert!(events.iter().all(|e| e.time.value() <= 5.0));
//! ```

pub mod geometry;
pub mod losses;
pub mod mixing;
pub mod particle;
pub mod pump;
pub mod sample;
pub mod stochastic;
pub mod transport;

pub use geometry::ChannelGeometry;
pub use losses::{DeliveryReport, LossModel};
pub use mixing::{mix_password_beads, BeadDose};
pub use particle::{Particle, ParticleClass, ParticleKind};
pub use pump::{FlowProfile, FlowSegment, PeristalticPump};
pub use sample::{SampleComponent, SampleSpec};
pub use transport::{CoincidenceStats, TransitEvent, TransportSimulator};
