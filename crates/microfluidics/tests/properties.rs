//! Property tests on the microfluidic substrate's invariants.

use medsen_microfluidics::*;
use medsen_units::{Concentration, FlowRate, Microliters, Seconds};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delivery never exceeds the estimate, and loss fractions are
    /// probabilities, for arbitrary estimates and run times.
    #[test]
    fn losses_are_bounded(
        estimated in 0.0f64..1.0e6,
        duration_s in 0.0f64..1.0e5,
        sed_factor in 0.0f64..3.0,
        ads_factor in 0.0f64..3.0,
    ) {
        let model = LossModel {
            sedimentation_factor: sed_factor,
            adsorption_factor: ads_factor,
            ..LossModel::paper_default()
        };
        for kind in ParticleKind::ALL {
            let report = model.delivery(kind, estimated, Seconds::new(duration_s));
            prop_assert!(report.delivered >= 0.0);
            prop_assert!(report.delivered <= report.estimated + 1e-9);
            prop_assert!((0.0..=1.0).contains(&report.sedimentation_loss));
            prop_assert!((0.0..=1.0).contains(&report.adsorption_loss));
            prop_assert!((0.0..=1.0).contains(&report.yield_fraction()) || estimated == 0.0);
        }
    }

    /// Flow profiles always report the rate of the last segment whose start
    /// precedes the query time.
    #[test]
    fn flow_profile_lookup_is_consistent(
        rates in proptest::collection::vec(0.01f64..1.0, 1..8),
        query in 0.0f64..100.0,
    ) {
        let segments: Vec<FlowSegment> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| FlowSegment {
                start: Seconds::new(i as f64 * 10.0),
                rate: FlowRate::new(r),
            })
            .collect();
        let profile = FlowProfile::from_segments(segments).expect("valid segments");
        let got = profile.rate_at(Seconds::new(query)).value();
        let expected_idx = ((query / 10.0).floor() as usize).min(rates.len() - 1);
        prop_assert!((got - rates[expected_idx]).abs() < 1e-12);
    }

    /// Transit events are always sorted and inside the window, with positive
    /// velocities and diameters, for arbitrary concentrations.
    #[test]
    fn transport_invariants(
        concentration in 1.0f64..50_000.0,
        duration_s in 0.5f64..20.0,
        seed in 0u64..1000,
    ) {
        let sample = SampleSpec::bead_calibration(
            Microliters::new(1.0),
            ParticleKind::Bead358,
            Concentration::new(concentration),
        );
        let mut sim = TransportSimulator::new(
            ChannelGeometry::paper_default(),
            PeristalticPump::paper_default(),
            seed,
        );
        let events = sim.run(&sample, Seconds::new(duration_s));
        prop_assert!(events
            .windows(2)
            .all(|w| w[0].time.value() <= w[1].time.value()));
        for e in &events {
            prop_assert!(e.time.value() >= 0.0 && e.time.value() < duration_s);
            prop_assert!(e.velocity > 0.0);
            prop_assert!(e.particle.diameter.value() > 0.0);
        }
    }

    /// Password-bead mixing preserves blood composition exactly and adds
    /// precisely the dosed concentrations.
    #[test]
    fn mixing_is_additive(
        dose358 in 1.0f64..5_000.0,
        dose78 in 1.0f64..5_000.0,
        dilution in 1.0f64..100_000.0,
    ) {
        let blood = SampleSpec::whole_blood_dilution(Microliters::new(10.0), dilution);
        let mixed = mix_password_beads(
            &blood,
            &[
                BeadDose { kind: ParticleKind::Bead358, concentration: Concentration::new(dose358) },
                BeadDose { kind: ParticleKind::Bead78, concentration: Concentration::new(dose78) },
            ],
        )
        .expect("valid doses");
        prop_assert!((mixed.concentration_of(ParticleKind::Bead358).value() - dose358).abs() < 1e-9);
        prop_assert!((mixed.concentration_of(ParticleKind::Bead78).value() - dose78).abs() < 1e-9);
        for kind in [ParticleKind::RedBloodCell, ParticleKind::WhiteBloodCell, ParticleKind::Platelet] {
            prop_assert_eq!(
                mixed.concentration_of(kind).value(),
                blood.concentration_of(kind).value()
            );
        }
    }
}
