//! Plain-text table rendering for the harness binaries.

/// Prints an aligned table with a header row and a separator line.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "row width must match header width"
        );
    }
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r[i].len())
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: Vec<&str>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(headers.to_vec()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row.iter().map(String::as_str).collect()));
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(0.123456, 3), "0.123");
        assert_eq!(fmt(2.0, 1), "2.0");
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn mismatched_rows_panic() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
