//! Experiment harness: regenerates every table and figure of the MedSen
//! evaluation (DSN 2016, Sec. VII).
//!
//! Each `experiments::*` module implements one figure/table as a pure
//! function returning structured rows, so the `src/bin/*` harness binaries
//! can print them and the integration tests can assert their shape. Absolute
//! numbers differ from the paper (our substrate is a simulator, theirs a
//! fabricated device), but each module documents — and the repo's
//! EXPERIMENTS.md records — the paper-vs-measured comparison.
//!
//! Run a single figure with, e.g.:
//!
//! ```text
//! cargo run --release -p medsen-bench --bin fig11_electrode_subsets
//! ```

pub mod experiments;
pub mod table;

pub use table::print_table;
