//! Harness: the Sec. IV-A adversary sweep.
use medsen_bench::experiments::adversary;
use medsen_bench::table::{fmt, print_table};
use medsen_units::Seconds;

fn main() {
    let outcomes = adversary::run(8, Seconds::new(30.0), 41);
    println!("Adversarial count-recovery error by cipher variant (mean relative error, 8 runs):\n");
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.variant.label.to_owned(),
                fmt(o.amplitude_attack_err, 3),
                fmt(o.width_attack_err, 3),
                fmt(o.burst_attack_err, 3),
                fmt(o.decryptor_err, 3),
                fmt(o.leakage.r_squared, 3),
            ]
        })
        .collect();
    print_table(
        &[
            "variant",
            "amp attack",
            "width attack",
            "burst attack",
            "decryptor",
            "leak R²",
        ],
        &rows,
    );
    println!("\nPaper expectation: attacks succeed without the cipher; gains defeat the");
    println!("amplitude signature, flow defeats the width signature, and only the");
    println!("key-holding decryptor recovers the count under the full cipher.");
}
