//! Harness: detrending order/segmentation ablation (design choice, Sec. VI-C).

use medsen_bench::experiments::ablation_detrend;
use medsen_bench::table::{fmt, print_table};

fn main() {
    let scores = ablation_detrend::run(120_000, 60);
    println!("Detrend ablation on a drifting trace with 60 planted 0.8% dips:\n");
    let rows: Vec<Vec<String>> = scores
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                fmt(s.recovery, 3),
                format!("{:.2e}", s.baseline_residual),
                format!("{:.2e}", s.mean_depth),
            ]
        })
        .collect();
    print_table(
        &[
            "configuration",
            "recovery",
            "baseline residual",
            "mean depth",
        ],
        &rows,
    );
    println!("\nPaper: order 2 segmented is optimal; low orders under-fit the drift,");
    println!("high orders deform peaks, whole-trace fits under-fit long acquisitions.");
}
