//! Harness: Fig. 12 — measured vs estimated 7.8 µm bead counts.

use medsen_bench::experiments::bead_counts;
use medsen_bench::table::{fmt, print_table};
use medsen_units::Seconds;

fn main() {
    // Paper protocol: four samples per concentration, counts from the first
    // five minutes of each run.
    let sweep = bead_counts::fig12(Seconds::new(300.0), 4, 12);
    println!("Fig. 12 — empirical vs estimated bead counts (7.8 µm):\n");
    let rows: Vec<Vec<String>> = sweep
        .rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.estimated, 0),
                format!("{:?}", r.empirical),
                fmt(r.mean_empirical(), 1),
            ]
        })
        .collect();
    print_table(&["estimated", "empirical (4 samples)", "mean"], &rows);
    println!(
        "\nlinear fit: slope {} intercept {} R² {}",
        fmt(sweep.fit.slope, 3),
        fmt(sweep.fit.intercept, 1),
        fmt(sweep.fit.r_squared, 4)
    );
    println!("Paper shape: linear, slope < 1 (sedimentation + adsorption losses).");
}
