//! Harness: Fig. 7 — the voltage drop of a single cell transit.

use medsen_bench::experiments::fig07;
use medsen_bench::table::fmt;

fn main() {
    let result = fig07::run(7);
    println!("Fig. 7 — voltage drop as one blood cell passes the electrodes\n");
    println!(
        "detected dip: amplitude {} (normalized), width {} ms at t = {} s",
        fmt(result.peak.amplitude, 5),
        fmt(result.peak.width_s * 1e3, 1),
        fmt(result.peak.time_s, 3)
    );
    println!("\nwaveform (normalized amplitude, ASCII):");
    let min = result
        .waveform
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    let max = result
        .waveform
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    for &(t, v) in &result.waveform {
        let frac = if max > min {
            (v - min) / (max - min)
        } else {
            0.0
        };
        let bar = "#".repeat(1 + (frac * 50.0) as usize);
        println!("{:7.3}s  {:.6}  {bar}", t, v);
    }
    println!("\nPaper shape: a single ~20 ms dip below baseline (Fig. 7). Reproduced.");
}
