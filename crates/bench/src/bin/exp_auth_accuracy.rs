//! Harness: Sec. VII-C — cyto-coded authentication accuracy + resolution.

use medsen_bench::experiments::auth_accuracy;
use medsen_bench::table::{fmt, print_table};
use medsen_units::Seconds;

fn main() {
    let stats = auth_accuracy::run(&auth_accuracy::default_roster(), 5, Seconds::new(30.0), 31);
    println!("Cyto-coded authentication over {} sessions:\n", stats.total);
    let rows = vec![vec![
        stats.correct.to_string(),
        stats.rejected.to_string(),
        stats.impersonated.to_string(),
        stats.ambiguous.to_string(),
        fmt(stats.accuracy(), 3),
    ]];
    print_table(
        &[
            "correct",
            "rejected",
            "impersonated",
            "ambiguous",
            "accuracy",
        ],
        &rows,
    );
    println!("\nConcentration resolution (mean |rel. count error| per level):");
    for level in [1u8, 2, 4, 8] {
        let err = auth_accuracy::level_resolution(level, 3, Seconds::new(30.0), 32);
        println!("  level {level}: {}", fmt(err, 3));
    }
    println!("\nPaper: \"reliably classify different users ... with high accuracy\"; lower");
    println!("concentrations resolve better (less relative variance in our coincidence-");
    println!("loss regime, Poisson-dominated at the very lowest levels).");
}
