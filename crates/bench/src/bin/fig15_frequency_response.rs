//! Harness: Fig. 15 — normalized impedance response vs frequency.

use medsen_bench::experiments::fig15;
use medsen_bench::table::{fmt, print_table};

fn main() {
    let responses = fig15::run(5);
    println!("Fig. 15 — normalized minimum amplitude per carrier (dip bottom):\n");
    let carriers: Vec<f64> = responses[0].minima.iter().map(|&(f, _)| f).collect();
    let mut headers: Vec<String> = vec!["particle".into()];
    headers.extend(carriers.iter().map(|f| format!("{:.0} kHz", f / 1e3)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = responses
        .iter()
        .map(|r| {
            let mut row = vec![r.kind.to_string()];
            row.extend(r.minima.iter().map(|&(_, m)| fmt(m, 4)));
            row
        })
        .collect();
    print_table(&header_refs, &rows);
    println!("\nPaper shape: 7.8 µm beads dip deepest (~0.985); blood-cell dips shrink");
    println!("at ≥2 MHz (membrane dispersion) while bead dips stay flat.");
}
