//! Harness: Fig. 14 — peak-analysis time, computer vs smartphone.

use medsen_bench::experiments::fig14;
use medsen_bench::table::{fmt, print_table};

fn main() {
    let rows = fig14::run();
    println!("Fig. 14 — peak-analysis performance by sample size:\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n_samples.to_string(),
                fmt(r.paper_computer_s, 3),
                fmt(r.paper_phone_s, 3),
                fmt(r.model_computer_s, 3),
                fmt(r.model_phone_s, 3),
                fmt(r.measured_local_s, 3),
                r.peaks_found.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "samples",
            "paper PC (s)",
            "paper phone (s)",
            "model PC (s)",
            "model phone (s)",
            "this repo (s)",
            "peaks",
        ],
        &table,
    );
    println!("\nPaper shape: both devices scale linearly; the computer is ~4x faster —");
    println!("the argument for cloud offloading of large samples. (Run with --release");
    println!("for a meaningful local measurement.)");
}
