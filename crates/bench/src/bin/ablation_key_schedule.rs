//! Harness: key rotation period vs decode accuracy and key size.

use medsen_bench::experiments::ablation_keys;
use medsen_bench::table::{fmt, print_table};
use medsen_units::Seconds;

fn main() {
    let (scores, ideal_bits) =
        ablation_keys::run(&[1.0, 2.0, 5.0, 10.0], 4, Seconds::new(30.0), 51);
    println!("Key-schedule ablation (30 s runs, ~25 beads each):\n");
    let rows: Vec<Vec<String>> = scores
        .iter()
        .map(|s| {
            vec![
                fmt(s.period_s, 0),
                fmt(s.decode_error, 3),
                s.key_bits.to_string(),
            ]
        })
        .collect();
    print_table(&["period (s)", "decode error", "key bits"], &rows);
    println!("\nEq. 2 ideal per-cell key for the same stream: {ideal_bits} bits.");
    println!("Trade-off: short periods approach per-cell keying (bigger keys, more");
    println!("boundary straddling); long periods shrink the key but weaken concealment.");
}
