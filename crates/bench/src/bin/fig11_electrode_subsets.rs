//! Harness: Fig. 11 — encrypted signatures of the 9-output prototype.

use medsen_bench::experiments::fig11;
use medsen_bench::table::print_table;

fn main() {
    let results = fig11::run(3);
    println!("Fig. 11 — peak signatures per electrode subset (one 7.8 µm bead):\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.panel.to_owned(),
                format!("{:?}", r.electrodes),
                r.expected.to_string(),
                r.scheduled.to_string(),
                r.detected.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "panel",
            "active electrodes",
            "expected",
            "scheduled",
            "detected",
        ],
        &rows,
    );
    println!("\nPaper: 11a→1 peak, 11b→3, 11c→5, 11d→17 (\"flat periodic train\").");
}
