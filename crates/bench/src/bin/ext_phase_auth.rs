//! Harness (extension): encrypted-domain bead/cell discrimination via
//! phase-sensitive acquisition.
//!
//! The paper turns the cipher OFF for authentication runs so the server can
//! classify beads (Sec. V). With I/Q acquisition, the gain-invariant per-peak
//! ratio Q/I = tan(phase) distinguishes beads (0) from cells (~2 at 2.5 MHz)
//! even under the full cipher — the plaintext side channel is unnecessary.

use medsen_bench::experiments::ext_phase;
use medsen_bench::table::{fmt, print_table};

fn main() {
    let cmp = ext_phase::plaintext_comparison(40, 73);
    println!("Plaintext held-out classification (3 classes):");
    println!(
        "  magnitude-only features : {}",
        fmt(cmp.magnitude_accuracy, 3)
    );
    println!("  I/Q features            : {}\n", fmt(cmp.iq_accuracy, 3));

    let result = ext_phase::encrypted_classification(25, 71);
    println!("Encrypted-domain classification via gain-invariant Q/I ratios");
    println!(
        "(full cipher on; decision rule: Q/I > {} => cell):\n",
        ext_phase::QI_CELL_THRESHOLD
    );
    print_table(
        &["population", "peaks", "recall"],
        &[
            vec![
                "7.8um beads".into(),
                result.bead_peaks.to_string(),
                fmt(result.bead_recall, 3),
            ],
            vec![
                "red blood cells".into(),
                result.cell_peaks.to_string(),
                fmt(result.cell_recall, 3),
            ],
        ],
    );
    println!("\nExtension finding: with phase-sensitive acquisition the Sec. V");
    println!("\"encryption turned off\" authentication path is unnecessary for");
    println!("bead/cell separation — the cipher's gains are common-mode and cancel");
    println!("in per-peak ratios. (Bead *type* discrimination still needs absolute");
    println!("amplitudes, which the gains deliberately scramble.)");
}
