//! Harness: Fig. 13 — measured vs estimated 3.58 µm bead counts.

use medsen_bench::experiments::bead_counts;
use medsen_bench::table::{fmt, print_table};
use medsen_units::Seconds;

fn main() {
    let sweep = bead_counts::fig13(Seconds::new(300.0), 4, 13);
    println!("Fig. 13 — empirical vs estimated bead counts (3.58 µm):\n");
    let rows: Vec<Vec<String>> = sweep
        .rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.estimated, 0),
                format!("{:?}", r.empirical),
                fmt(r.mean_empirical(), 1),
            ]
        })
        .collect();
    print_table(&["estimated", "empirical (4 samples)", "mean"], &rows);
    println!(
        "\nlinear fit: slope {} intercept {} R² {}",
        fmt(sweep.fit.slope, 3),
        fmt(sweep.fit.intercept, 1),
        fmt(sweep.fit.r_squared, 4)
    );
    println!("Paper shape: linear; smaller deficit than the 7.8 µm beads of Fig. 12.");
}
