//! Harness: the Sec. VII-B stress test — a 3-hour acquisition (~600 MB of
//! CSV) processed end to end in constant memory.
//!
//! "To exercise and evaluate MedSen's ability to handle large data sets, we
//! ran each sample through our bio-sensor for 3 h which generated
//! approximately 600 MB of encrypted bio-sensor measurements, captured in
//! csv files ... MedSen implements zip data compression on the smartphone.
//! This reduced the sample size to 240 MB."
//!
//! By default a 10-minute slice runs (and the 3-hour numbers are projected
//! linearly); pass `--full` for the real thing.

use medsen_bench::table::fmt;
use medsen_dsp::StreamingAnalyzer;
use medsen_phone::{compress, CompressionStats};
use std::time::Instant;

const SAMPLE_RATE: f64 = 450.0;
const CHANNELS: usize = 8;

/// Procedurally generates chunk `chunk_idx` of the reference channel: slow
/// drift plus one dip every second of signal.
fn synthesize_chunk(chunk_idx: usize, chunk_len: usize) -> Vec<f64> {
    let start = chunk_idx * chunk_len;
    (0..chunk_len)
        .map(|k| {
            let i = start + k;
            let x = i as f64;
            let baseline =
                1.0 + 2e-9 * x + 1.2e-3 * (x / 20_000.0).sin() + 4e-4 * (x / 3_100.0).sin();
            let phase = i % 450;
            let dip = if (200..205).contains(&phase) {
                8e-3
            } else {
                0.0
            };
            baseline * (1.0 - dip)
        })
        .collect()
}

/// One CSV row of the multi-channel capture, matching the prototype format.
fn csv_rows(chunk: &[f64], start_index: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(chunk.len() * 120);
    for (k, &v) in chunk.iter().enumerate() {
        let t = (start_index + k) as f64 / SAMPLE_RATE;
        let _ = write!(out, "{t:.6}");
        for c in 0..CHANNELS {
            // The other carriers mirror the reference with small offsets.
            let _ = write!(out, ",{:.8}", v + c as f64 * 1e-6);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let minutes = if full { 180.0 } else { 10.0 };
    let total_samples = (minutes * 60.0 * SAMPLE_RATE) as usize;
    let chunk_len = 45_000; // 100 s of signal per chunk

    println!(
        "Streaming stress test: {minutes:.0} min of 8-channel acquisition ({} samples/channel)\n",
        total_samples
    );

    let mut analyzer = StreamingAnalyzer::paper_default();
    let mut peaks = 0usize;
    let mut csv_bytes = 0usize;
    let mut compressed_bytes = 0usize;
    let t0 = Instant::now();
    let n_chunks = total_samples.div_ceil(chunk_len);
    for chunk_idx in 0..n_chunks {
        let this_len = chunk_len.min(total_samples - chunk_idx * chunk_len);
        let chunk = synthesize_chunk(chunk_idx, this_len);
        // Phone side: CSV + LZW, chunk by chunk.
        let csv = csv_rows(&chunk, chunk_idx * chunk_len);
        csv_bytes += csv.len();
        compressed_bytes += compress(csv.as_bytes()).len();
        // Cloud side: streaming peak analysis.
        peaks += analyzer.push(&chunk).len();
    }
    peaks += analyzer.finish().len();
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = CompressionStats {
        raw_bytes: csv_bytes,
        compressed_bytes,
    };
    let scale = 180.0 / minutes;
    println!(
        "peaks detected            : {peaks} (expected ~{})",
        total_samples / 450
    );
    println!(
        "CSV volume                : {:.1} MB (3 h projection: {:.0} MB; paper: ~600 MB)",
        csv_bytes as f64 / 1e6,
        csv_bytes as f64 * scale / 1e6
    );
    println!(
        "compressed                : {:.1} MB (3 h projection: {:.0} MB; paper: 240 MB)",
        compressed_bytes as f64 / 1e6,
        compressed_bytes as f64 * scale / 1e6
    );
    println!(
        "compression ratio         : {}x (paper zip: 2.5x)",
        fmt(stats.ratio(), 2)
    );
    println!(
        "wall time (this machine)  : {} s ({} s projected for 3 h)",
        fmt(elapsed, 1),
        fmt(elapsed * scale, 1)
    );
    println!("analyzer memory           : O(window) — constant regardless of run length");
    if !full {
        println!("\n(ran the 10-minute slice; use --full for the complete 3-hour run)");
    }
}
