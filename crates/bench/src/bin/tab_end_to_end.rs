//! Harness: end-to-end timing + compression (abstract, Sec. VII-B).

use medsen_bench::experiments::end_to_end;
use medsen_bench::table::{fmt, print_table};
use medsen_units::Seconds;

fn main() {
    let stats = end_to_end::run(5, Seconds::new(60.0), 21);
    println!("End-to-end encrypted diagnostic sessions (60 s acquisitions):\n");
    let rows: Vec<Vec<String>> = stats
        .sessions
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                (i + 1).to_string(),
                (s.true_cells + s.true_beads).to_string(),
                s.peak_count.to_string(),
                s.decoded_total.map_or("-".into(), |d| d.to_string()),
                fmt(s.compression.ratio(), 2),
                fmt(s.timing.compression_s, 3),
                fmt(s.timing.upload_s, 3),
                fmt(s.timing.analysis_s, 3),
                fmt(s.timing.decryption_s, 4),
                fmt(s.timing.post_acquisition_s(), 3),
            ]
        })
        .collect();
    print_table(
        &[
            "run",
            "truth",
            "peaks",
            "decoded",
            "zip x",
            "compress s",
            "upload s",
            "cloud s",
            "decrypt s",
            "post-acq s",
        ],
        &rows,
    );
    println!(
        "\nmeans: post-acquisition {} s, compression {}x, decode error {}",
        fmt(stats.mean_post_acquisition_s, 3),
        fmt(stats.mean_compression_ratio, 2),
        fmt(stats.mean_decode_error, 3)
    );
    println!("\nPaper: ~0.2 s end-to-end signal path (excl. networking); 600->240 MB (2.5x)");
    println!("zip; full procedure within 1 minute. Our modeled 4G upload dominates the");
    println!("difference; the compute path itself is sub-second.");
}
