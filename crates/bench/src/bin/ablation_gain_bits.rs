//! Harness: gain granularity vs amplitude-attack resistance (Sec. VI-B).

use medsen_bench::experiments::ablation_gains;
use medsen_bench::table::{fmt, print_table};
use medsen_units::Seconds;

fn main() {
    let scores = ablation_gains::run(&[1, 2, 3, 4], 6, Seconds::new(30.0), 61);
    println!("Gain-granularity ablation (flow randomization off, 6 runs each):\n");
    let rows: Vec<Vec<String>> = scores
        .iter()
        .map(|s| {
            vec![
                s.gain_bits.to_string(),
                fmt(s.groups_per_particle, 2),
                fmt(s.attack_error, 3),
                s.key_bits_per_cell.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "gain bits",
            "amp-groups / particle",
            "amp attack err",
            "key bits / cell",
        ],
        &rows,
    );
    println!("\nPaper: granularity is adjustable; more levels → better ciphertext");
    println!("homogeneity (harder amplitude grouping) at the cost of key size.");
}
