//! Harness: Fig. 16 — amplitude clusters for password generation.

use medsen_bench::experiments::fig16;
use medsen_bench::table::fmt;

fn main() {
    let result = fig16::run(60, 9);
    println!("Fig. 16 — peak amplitude at 500 kHz vs 2500 kHz, per particle:\n");
    println!("kind, amp_500kHz, amp_2500kHz");
    for p in &result.points {
        println!(
            "{}, {}, {}",
            p.kind,
            fmt(p.amp_500khz, 6),
            fmt(p.amp_2500khz, 6)
        );
    }
    println!("\nheld-out classification:\n{}", result.confusion);
    println!("\nPaper shape: three clusters \"with clear margins\"; blood cells fall");
    println!("below the bead diagonal at 2.5 MHz.");
}
