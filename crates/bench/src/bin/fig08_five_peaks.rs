//! Harness: Fig. 8 — one cell, electrodes 1–3 on, five peaks.

use medsen_bench::experiments::fig08;

fn main() {
    let result = fig08::run(11);
    println!("Fig. 8 — representative encrypted cytometry data, one blood cell,");
    println!("output electrodes 1-3 active (device with lead = electrode 1):\n");
    println!("  scheduled dips: {}", result.scheduled);
    println!("  detected peaks: {}", result.detected);
    println!("\nPaper: \"five peaks due to one cell passing by the sensor\".");
    assert_eq!(result.detected, 5, "harness must reproduce the figure");
}
