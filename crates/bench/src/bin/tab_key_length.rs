//! Harness: the Eq. 2 key-length table (Sec. VI-B).

use medsen_bench::experiments::key_length;
use medsen_bench::table::{fmt, print_table};
use medsen_units::Seconds;

fn main() {
    let rows = key_length::run();
    println!(
        "Eq. 2 — ideal per-cell key length L = N_cells (N_elec + N_elec/2 R_gain + R_flow):\n"
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n_cells.to_string(),
                r.n_electrodes.to_string(),
                r.r_gain.to_string(),
                r.r_flow.to_string(),
                r.bits.to_string(),
                fmt(r.megabytes, 3),
            ]
        })
        .collect();
    print_table(
        &[
            "cells",
            "electrodes",
            "gain bits",
            "flow bits",
            "key bits",
            "MB",
        ],
        &table,
    );
    println!(
        "\nPaper headline: 20K cells, 16 electrodes, 4-bit gains/flow -> {} bits ({} MB);",
        rows[0].bits,
        fmt(rows[0].megabytes, 2)
    );
    println!("the paper reports \"1M-bits key (0.12MB)\".");
    let deployed = key_length::deployed_key_bits(Seconds::new(3.0 * 3600.0), 1);
    println!(
        "\nDeployed periodic scheme (9-output prototype, 5 s keys, 3 h run): {deployed} bits."
    );
}
