//! Figure 16: the password-generation cluster plot — peak amplitude at
//! 500 kHz vs 2500 kHz for 3.58 µm beads, 7.8 µm beads, and blood cells.
//!
//! Paper shape: three clusters "with clear margins"; the blood-cell cluster
//! is wider (biological variation) and separates from the beads at high
//! frequency (membrane dispersion). We regenerate the scatter and score a
//! classifier on held-out points.

use medsen_cloud::AnalysisServer;
use medsen_dsp::classify::{Classifier, ConfusionMatrix};
use medsen_dsp::features::FeatureVector;
use medsen_microfluidics::{ChannelGeometry, ParticleKind, PeristalticPump, TransportSimulator};
use medsen_sensor::{Controller, ControllerConfig};
use medsen_units::Seconds;

/// One scatter point.
#[derive(Debug, Clone, Copy)]
pub struct ClusterPoint {
    /// True particle kind.
    pub kind: ParticleKind,
    /// Peak amplitude at 500 kHz.
    pub amp_500khz: f64,
    /// Peak amplitude at 2500 kHz.
    pub amp_2500khz: f64,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// All scatter points (training + evaluation).
    pub points: Vec<ClusterPoint>,
    /// Held-out confusion matrix.
    pub confusion: ConfusionMatrix,
}

const KINDS: [ParticleKind; 3] = [
    ParticleKind::Bead358,
    ParticleKind::Bead78,
    ParticleKind::RedBloodCell,
];

fn features_for(kind: ParticleKind, n: usize, seed: u64) -> Vec<FeatureVector> {
    let duration = Seconds::new(1.2 * n as f64);
    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        seed,
    );
    let events = sim.run_exact_count(kind, n, duration);
    let mut acq = super::counting_acquisition(seed);
    let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), seed);
    let schedule = controller.plaintext_schedule().clone();
    let out = acq.run(&events, &schedule, duration);
    let report = AnalysisServer::paper_default().analyze(&out.trace);
    report
        .peaks
        .iter()
        .enumerate()
        .map(|(i, p)| FeatureVector {
            index: i,
            amplitudes: p.features.clone(),
        })
        .collect()
}

/// Runs the cluster experiment with `n` particles per class (half train,
/// half evaluate).
pub fn run(n: usize, seed: u64) -> ClusterResult {
    let mut points = Vec::new();
    let mut train: Vec<(&str, Vec<FeatureVector>)> = Vec::new();
    let mut eval: Vec<(&str, Vec<FeatureVector>)> = Vec::new();
    for (ki, kind) in KINDS.into_iter().enumerate() {
        let features = features_for(kind, n, seed.wrapping_add(100 * ki as u64));
        for f in &features {
            points.push(ClusterPoint {
                kind,
                amp_500khz: f.amplitudes[0],
                amp_2500khz: f.amplitudes[1],
            });
        }
        let half = features.len() / 2;
        train.push((kind.label(), features[..half].to_vec()));
        eval.push((kind.label(), features[half..].to_vec()));
    }
    let classifier = Classifier::train(&train).expect("training data is non-empty");
    let confusion = classifier.evaluate(&eval).expect("evaluation succeeds");
    ClusterResult { points, confusion }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_separate_with_high_accuracy() {
        let result = run(40, 9);
        assert!(
            result.confusion.accuracy() > 0.9,
            "accuracy {}\n{}",
            result.confusion.accuracy(),
            result.confusion
        );
    }

    #[test]
    fn clusters_sit_where_the_figure_puts_them() {
        let result = run(30, 10);
        let centroid = |kind: ParticleKind| {
            let pts: Vec<&ClusterPoint> = result.points.iter().filter(|p| p.kind == kind).collect();
            let n = pts.len() as f64;
            (
                pts.iter().map(|p| p.amp_500khz).sum::<f64>() / n,
                pts.iter().map(|p| p.amp_2500khz).sum::<f64>() / n,
            )
        };
        let (b358_lo, b358_hi) = centroid(ParticleKind::Bead358);
        let (b78_lo, b78_hi) = centroid(ParticleKind::Bead78);
        let (cell_lo, cell_hi) = centroid(ParticleKind::RedBloodCell);
        // Beads sit on the diagonal (flat response); cells fall below it.
        assert!(
            (b358_hi / b358_lo - 1.0).abs() < 0.2,
            "3.58 beads on diagonal"
        );
        assert!((b78_hi / b78_lo - 1.0).abs() < 0.2, "7.8 beads on diagonal");
        assert!(cell_hi / cell_lo < 0.7, "cells below the diagonal");
        // Amplitude ordering at 500 kHz.
        assert!(b78_lo > cell_lo && cell_lo > b358_lo);
    }
}
