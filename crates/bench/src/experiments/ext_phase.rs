//! Extension experiment: phase-sensitive (I/Q) acquisition.
//!
//! The prototype's lock-in records one output per carrier (magnitude). The
//! HF2IS can also emit in-phase/quadrature pairs; this extension explores
//! what that buys MedSen:
//!
//! 1. **Richer plaintext features.** Quadrature channels add a second,
//!    physically independent axis (membrane phase) to the Fig. 16 feature
//!    space.
//! 2. **Encrypted-domain classification.** The cipher's electrode gain is
//!    *common-mode* across a peak's carriers, so per-peak ratios —
//!    `Q(f)/I(f)` in particular, which equals `tan φ(f)` — are
//!    gain-invariant. Beads have `tan φ = 0`; cells have `tan φ ≈ 2` at
//!    2.5 MHz. Bead/cell discrimination therefore works *without turning the
//!    encryption off*, removing the plaintext-authentication side channel
//!    the paper accepts in Sec. V.

use medsen_cloud::AnalysisServer;
use medsen_impedance::{ElectrodeCircuit, TraceSynthesizer};
use medsen_microfluidics::{ChannelGeometry, ParticleKind, PeristalticPump, TransportSimulator};
use medsen_sensor::{Controller, ControllerConfig, EncryptedAcquisition};
use medsen_units::Seconds;

/// Outcome of the encrypted-domain classification experiment.
#[derive(Debug, Clone, Copy)]
pub struct EncryptedClassification {
    /// Fraction of bead peaks (beads-only encrypted run) classified as beads.
    pub bead_recall: f64,
    /// Fraction of cell peaks (cells-only encrypted run) classified as cells.
    pub cell_recall: f64,
    /// Peaks observed in the bead run.
    pub bead_peaks: usize,
    /// Peaks observed in the cell run.
    pub cell_peaks: usize,
}

fn iq_acquisition(seed: u64) -> EncryptedAcquisition {
    EncryptedAcquisition::new(
        medsen_sensor::ElectrodeArray::paper_prototype(),
        ChannelGeometry::paper_default(),
        ElectrodeCircuit::paper_default(),
        TraceSynthesizer::paper_default(seed).with_iq(true),
    )
}

/// Runs one single-species *encrypted* IQ acquisition and returns, for every
/// detected peak, the gain-invariant ratio `Q(2.5 MHz) / I(2.5 MHz)`.
fn encrypted_qi_ratios(kind: ParticleKind, n: usize, seed: u64) -> Vec<f64> {
    let duration = Seconds::new(2.0 * n as f64);
    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        seed,
    );
    let events = sim.run_exact_count(kind, n, duration);
    let mut acq = iq_acquisition(seed);
    let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), seed);
    let schedule = controller.generate_schedule(duration).clone();
    let out = acq.run(&events, &schedule, duration);
    let report = AnalysisServer::paper_default().analyze(&out.trace);

    // Feature layout: in-phase channels first, then quadrature (same carrier
    // order). Locate the 2.5 MHz-nearest carrier index.
    let carriers: Vec<f64> = out
        .trace
        .channels()
        .iter()
        .filter(|c| c.component == medsen_impedance::trace::SignalComponent::InPhase)
        .map(|c| c.carrier.value())
        .collect();
    let n_carriers = carriers.len();
    let idx = carriers
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (*a - 2.5e6)
                .abs()
                .partial_cmp(&(*b - 2.5e6).abs())
                .expect("finite carriers")
        })
        .map(|(i, _)| i)
        .expect("carriers exist");

    report
        .peaks
        .iter()
        .filter_map(|p| {
            let i = p.features.get(idx).copied()?;
            let q = p.features.get(n_carriers + idx).copied()?;
            if i > 5.0e-4 {
                Some(q / i)
            } else {
                None // too weak on this carrier to form a stable ratio
            }
        })
        .collect()
}

/// The gain-invariant decision rule: `Q/I > threshold` ⇒ cell.
pub const QI_CELL_THRESHOLD: f64 = 0.6;

/// Runs the encrypted-domain classification experiment.
pub fn encrypted_classification(n: usize, seed: u64) -> EncryptedClassification {
    let bead_ratios = encrypted_qi_ratios(ParticleKind::Bead78, n, seed);
    let cell_ratios = encrypted_qi_ratios(ParticleKind::RedBloodCell, n, seed + 1);
    let bead_ok = bead_ratios
        .iter()
        .filter(|&&r| r <= QI_CELL_THRESHOLD)
        .count();
    let cell_ok = cell_ratios
        .iter()
        .filter(|&&r| r > QI_CELL_THRESHOLD)
        .count();
    EncryptedClassification {
        bead_recall: bead_ok as f64 / bead_ratios.len().max(1) as f64,
        cell_recall: cell_ok as f64 / cell_ratios.len().max(1) as f64,
        bead_peaks: bead_ratios.len(),
        cell_peaks: cell_ratios.len(),
    }
}

/// Plaintext comparison: held-out classification accuracy with
/// magnitude-only features vs I/Q features on the Fig. 16 populations.
#[derive(Debug, Clone, Copy)]
pub struct PlaintextComparison {
    /// Held-out accuracy with the prototype's magnitude-only features.
    pub magnitude_accuracy: f64,
    /// Held-out accuracy with I/Q features.
    pub iq_accuracy: f64,
}

fn plaintext_features(
    kind: ParticleKind,
    n: usize,
    seed: u64,
    iq: bool,
) -> Vec<medsen_dsp::features::FeatureVector> {
    let duration = Seconds::new(1.2 * n as f64);
    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        seed,
    );
    let events = sim.run_exact_count(kind, n, duration);
    let mut acq = EncryptedAcquisition::new(
        medsen_sensor::ElectrodeArray::paper_prototype(),
        ChannelGeometry::paper_default(),
        ElectrodeCircuit::paper_default(),
        TraceSynthesizer::paper_default(seed).with_iq(iq),
    );
    let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), seed);
    let schedule = controller.plaintext_schedule().clone();
    let out = acq.run(&events, &schedule, duration);
    let report = AnalysisServer::paper_default().analyze(&out.trace);
    report
        .peaks
        .iter()
        .enumerate()
        .map(|(i, p)| medsen_dsp::features::FeatureVector {
            index: i,
            amplitudes: p.features.clone(),
        })
        .collect()
}

/// Runs the plaintext magnitude-vs-IQ comparison with `n` particles per
/// class (half train, half evaluate).
pub fn plaintext_comparison(n: usize, seed: u64) -> PlaintextComparison {
    use medsen_dsp::classify::Classifier;
    let kinds = [
        ParticleKind::Bead358,
        ParticleKind::Bead78,
        ParticleKind::RedBloodCell,
    ];
    let accuracy = |iq: bool| {
        let mut train: Vec<(&str, Vec<medsen_dsp::features::FeatureVector>)> = Vec::new();
        let mut eval: Vec<(&str, Vec<medsen_dsp::features::FeatureVector>)> = Vec::new();
        for (ki, kind) in kinds.into_iter().enumerate() {
            let features = plaintext_features(kind, n, seed + 100 * ki as u64, iq);
            let half = features.len() / 2;
            train.push((kind.label(), features[..half].to_vec()));
            eval.push((kind.label(), features[half..].to_vec()));
        }
        Classifier::train(&train)
            .expect("training data")
            .evaluate(&eval)
            .expect("evaluation")
            .accuracy()
    };
    PlaintextComparison {
        magnitude_accuracy: accuracy(false),
        iq_accuracy: accuracy(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iq_features_match_or_beat_magnitude_features() {
        let cmp = plaintext_comparison(24, 73);
        assert!(
            cmp.iq_accuracy >= cmp.magnitude_accuracy - 0.05,
            "IQ {} vs magnitude {}",
            cmp.iq_accuracy,
            cmp.magnitude_accuracy
        );
        assert!(cmp.iq_accuracy > 0.85);
    }

    #[test]
    fn encrypted_qi_ratio_separates_beads_from_cells() {
        let result = encrypted_classification(10, 71);
        assert!(result.bead_peaks > 10, "bead peaks {}", result.bead_peaks);
        assert!(result.cell_peaks > 10, "cell peaks {}", result.cell_peaks);
        assert!(
            result.bead_recall > 0.9,
            "bead recall {} ({} peaks)",
            result.bead_recall,
            result.bead_peaks
        );
        assert!(
            result.cell_recall > 0.9,
            "cell recall {} ({} peaks)",
            result.cell_recall,
            result.cell_peaks
        );
    }
}
