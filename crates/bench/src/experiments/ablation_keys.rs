//! Ablation: key schedule period vs decryption accuracy and key size.
//!
//! The ideal per-cell scheme (Eq. 2) is perfectly decodable but needs a key
//! that grows linearly with cell count; the deployed periodic scheme trades
//! a bounded key for boundary-straddle decoding error. This ablation sweeps
//! the rotation period to expose the trade-off the paper describes in
//! Sec. IV-A.

use medsen_cloud::AnalysisServer;
use medsen_microfluidics::{
    ChannelGeometry, ParticleKind, PeristalticPump, SampleSpec, TransportSimulator,
};
use medsen_sensor::{ideal_key_length_bits, Controller, ControllerConfig};
use medsen_units::Seconds;
use medsen_units::{Concentration, Microliters};

/// One key-period row.
#[derive(Debug, Clone)]
pub struct KeyScheduleScore {
    /// Rotation period (seconds).
    pub period_s: f64,
    /// Mean decode relative error across runs.
    pub decode_error: f64,
    /// Key material for the run (bits).
    pub key_bits: usize,
}

/// Sweeps rotation periods; also returns the Eq. 2 ideal-key size for the
/// same mean particle count as context.
pub fn run(
    periods_s: &[f64],
    runs: usize,
    duration: Seconds,
    seed: u64,
) -> (Vec<KeyScheduleScore>, u64) {
    let server = AnalysisServer::paper_default();
    let mut scores = Vec::with_capacity(periods_s.len());
    let mut mean_particles = 0.0;

    for &period in periods_s {
        let mut err = 0.0;
        let mut bits = 0usize;
        for r in 0..runs {
            let run_seed = seed.wrapping_add(17 * r as u64);
            let sample = SampleSpec::bead_calibration(
                Microliters::new(1.0),
                ParticleKind::Bead78,
                Concentration::new(25.0 / (0.08 / 60.0 * duration.value())),
            );
            let mut sim = TransportSimulator::new(
                ChannelGeometry::paper_default(),
                PeristalticPump::paper_default(),
                run_seed,
            );
            let events = sim.run(&sample, duration);
            let truth = events.len().max(1);
            mean_particles += truth as f64 / (runs * periods_s.len()) as f64;

            let mut acq = super::counting_acquisition(run_seed);
            let mut controller = Controller::new(
                *acq.array(),
                ControllerConfig {
                    key_period: Seconds::new(period),
                    ..ControllerConfig::paper_default()
                },
                run_seed,
            );
            let schedule = controller.generate_schedule(duration).clone();
            let out = acq.run(&events, &schedule, duration);
            let report = server.analyze(&out.trace);
            let geometry = ChannelGeometry::paper_default();
            let nominal_v = PeristalticPump::paper_default().velocity_at(
                Seconds::ZERO,
                geometry.pore_width,
                geometry.pore_height,
            );
            let delay = Seconds::new(acq.array().span(&geometry).value() / (2.0 * nominal_v));
            let decoded = controller
                .decryptor_with_delay(delay)
                .decrypt(&report.reported_peaks())
                .rounded() as f64;
            err += (decoded - truth as f64).abs() / truth as f64;
            bits = controller.key_bits();
        }
        scores.push(KeyScheduleScore {
            period_s: period,
            decode_error: err / runs as f64,
            key_bits: bits,
        });
    }

    let ideal_bits = ideal_key_length_bits(mean_particles.round() as u64, 9, 4, 4);
    (scores, ideal_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_periods_shrink_keys() {
        let (scores, _) = run(&[2.0, 10.0], 2, Seconds::new(20.0), 51);
        assert!(
            scores[0].key_bits > scores[1].key_bits,
            "2 s period must hold more key material than 10 s"
        );
    }

    #[test]
    fn decode_error_stays_bounded_across_periods() {
        let (scores, ideal) = run(&[2.0, 5.0, 10.0], 2, Seconds::new(20.0), 52);
        for s in &scores {
            assert!(
                s.decode_error < 0.4,
                "period {} error {}",
                s.period_s,
                s.decode_error
            );
        }
        assert!(ideal > 0);
    }
}
