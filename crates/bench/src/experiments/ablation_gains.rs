//! Ablation: gain granularity vs amplitude-attack resistance and key size.
//!
//! Sec. VI-B: 16 gain levels (4-bit) were "empirical choices and can be
//! adjusted based on the security and sensor precision requirements ...
//! higher granularity would help to improve the homogeneity of the signals
//! in the ciphertext and thus provide better protection at the cost of
//! larger key size". This sweep quantifies that trade-off: with 1-bit gains
//! the amplitude alphabet is tiny, so the amplitude-grouping attack regains
//! traction; each extra bit shatters it further.

use medsen_cloud::{AmplitudeGroupingAttack, AnalysisServer};
use medsen_microfluidics::{
    ChannelGeometry, ParticleKind, PeristalticPump, SampleSpec, TransportSimulator,
};
use medsen_sensor::{Controller, ControllerConfig};
use medsen_units::{Concentration, Microliters, Seconds};

/// One granularity's score.
#[derive(Debug, Clone, Copy)]
pub struct GainBitsScore {
    /// Gain resolution in bits.
    pub gain_bits: u8,
    /// Distinct amplitude groups per true particle the attack formed (higher
    /// = more shattered = better concealment).
    pub groups_per_particle: f64,
    /// Mean relative counting error of the amplitude attack.
    pub attack_error: f64,
    /// Eq. 2 per-cell key bits at this granularity (9-output device).
    pub key_bits_per_cell: u64,
}

/// Sweeps gain granularities.
pub fn run(bits: &[u8], runs: usize, duration: Seconds, seed: u64) -> Vec<GainBitsScore> {
    let server = AnalysisServer::paper_default();
    let attack = AmplitudeGroupingAttack::paper_default();
    bits.iter()
        .map(|&gain_bits| {
            let mut err = 0.0;
            let mut groups = 0.0;
            let mut particles = 0.0;
            for r in 0..runs {
                let run_seed = seed.wrapping_add(53 * r as u64);
                let sample = SampleSpec::bead_calibration(
                    Microliters::new(1.0),
                    ParticleKind::Bead78,
                    Concentration::new(20.0 / (0.08 / 60.0 * duration.value())),
                );
                let mut sim = TransportSimulator::new(
                    ChannelGeometry::paper_default(),
                    PeristalticPump::paper_default(),
                    run_seed,
                );
                let events = sim.run(&sample, duration);
                let truth = events.len().max(1);
                let mut acq = super::counting_acquisition(run_seed);
                let mut controller = Controller::new(
                    *acq.array(),
                    ControllerConfig {
                        gain_bits,
                        randomize_flow: false, // isolate the gain channel
                        ..ControllerConfig::paper_default()
                    },
                    run_seed,
                );
                let schedule = controller.generate_schedule(duration).clone();
                let out = acq.run(&events, &schedule, duration);
                let report = server.analyze(&out.trace);
                let outcome = attack.estimate(&report);
                err += (outcome.estimated_cells as f64 - truth as f64).abs() / truth as f64;
                groups += outcome.groups as f64;
                particles += truth as f64;
            }
            GainBitsScore {
                gain_bits,
                groups_per_particle: groups / particles,
                attack_error: err / runs as f64,
                key_bits_per_cell: medsen_sensor::ideal_key_length_bits(
                    1,
                    9,
                    u64::from(gain_bits),
                    4,
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_gains_cost_more_key_bits() {
        let scores = run(&[1, 4], 2, Seconds::new(15.0), 61);
        assert!(scores[1].key_bits_per_cell > scores[0].key_bits_per_cell);
    }

    #[test]
    fn finer_gains_shatter_amplitude_groups_harder() {
        let scores = run(&[1, 4], 3, Seconds::new(20.0), 62);
        assert!(
            scores[1].groups_per_particle >= scores[0].groups_per_particle,
            "4-bit groups/particle {} vs 1-bit {}",
            scores[1].groups_per_particle,
            scores[0].groups_per_particle
        );
    }
}
