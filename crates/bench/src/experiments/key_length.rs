//! The key-length accounting of Sec. VI-B (Eq. 2).
//!
//! Headline row: "Considering a 20K-cell sample, with a 16 output electrode
//! bio-sensor, with 16 different choices of gains (4-bit representation) and
//! 16 different flow speeds, that would lead us to a
//! 20K ∗ (16 + 8 ∗ 4 + 4) = 1M-bits key (0.12MB)."

use medsen_sensor::{ideal_key_length_bits, Controller, ControllerConfig, ElectrodeArray};
use medsen_units::Seconds;

/// One parameterization's key size.
#[derive(Debug, Clone, Copy)]
pub struct KeyLengthRow {
    /// Cells in the sample.
    pub n_cells: u64,
    /// Output electrodes.
    pub n_electrodes: u64,
    /// Gain resolution (bits).
    pub r_gain: u64,
    /// Flow resolution (bits).
    pub r_flow: u64,
    /// Ideal per-cell key length (bits).
    pub bits: u64,
    /// Same, in megabytes.
    pub megabytes: f64,
}

/// Builds the Eq. 2 table (the paper's row plus sweeps of each parameter).
pub fn run() -> Vec<KeyLengthRow> {
    let params: [(u64, u64, u64, u64); 6] = [
        (20_000, 16, 4, 4), // the paper's headline configuration
        (20_000, 9, 4, 4),  // the fabricated 9-output prototype
        (20_000, 16, 2, 4), // coarser gains
        (20_000, 16, 6, 4), // finer gains
        (5_000, 16, 4, 4),  // smaller sample
        (80_000, 16, 4, 4), // larger sample
    ];
    params
        .into_iter()
        .map(|(n_cells, n_electrodes, r_gain, r_flow)| {
            let bits = ideal_key_length_bits(n_cells, n_electrodes, r_gain, r_flow);
            KeyLengthRow {
                n_cells,
                n_electrodes,
                r_gain,
                r_flow,
                bits,
                megabytes: bits as f64 / 8.0 / 1.0e6,
            }
        })
        .collect()
}

/// The deployed periodic scheme's key size for a run of `duration` — the
/// practical alternative Sec. IV-A describes.
pub fn deployed_key_bits(duration: Seconds, seed: u64) -> usize {
    let mut controller = Controller::new(
        ElectrodeArray::paper_prototype(),
        ControllerConfig::paper_default(),
        seed,
    );
    controller.generate_schedule(duration);
    controller.key_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_row_matches_the_paper() {
        let rows = run();
        let headline = rows[0];
        assert_eq!(headline.bits, 1_040_000);
        assert!(
            (headline.megabytes - 0.13).abs() < 0.011,
            "MB {}",
            headline.megabytes
        );
    }

    #[test]
    fn key_grows_with_each_parameter() {
        let rows = run();
        let headline = rows[0].bits;
        assert!(rows[1].bits < headline, "fewer electrodes → smaller key");
        assert!(rows[2].bits < headline, "coarser gains → smaller key");
        assert!(rows[3].bits > headline, "finer gains → larger key");
        assert!(rows[4].bits < headline && rows[5].bits > headline);
    }

    #[test]
    fn deployed_schedule_is_vastly_smaller_than_ideal() {
        // A 3-hour run at one key per 5 s vs keying each of 20 K cells.
        let deployed = deployed_key_bits(Seconds::new(3.0 * 3600.0), 1);
        let ideal = ideal_key_length_bits(20_000, 9, 4, 4) as usize;
        assert!(deployed * 5 < ideal, "deployed {deployed} vs ideal {ideal}");
    }
}
