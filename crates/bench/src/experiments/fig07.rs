//! Figure 7: the voltage drop when one cell passes an electrode pair.
//!
//! Paper shape: a single ≈ 20 ms dip below the baseline. We render one blood
//! cell through the lead electrode and return the dip's waveform plus its
//! detected characteristics.

use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
use medsen_dsp::peaks::{Peak, ThresholdDetector};
use medsen_microfluidics::{Particle, ParticleKind, TransitEvent};
use medsen_sensor::{
    CipherKey, ElectrodeArray, ElectrodeSelection, FlowLevel, GainLevel, KeySchedule,
};
use medsen_units::{Hertz, Seconds};

/// The rendered single-cell dip.
#[derive(Debug, Clone)]
pub struct SinglePeak {
    /// `(time_s, normalized amplitude)` samples around the dip.
    pub waveform: Vec<(f64, f64)>,
    /// The detected peak.
    pub peak: Peak,
}

/// Renders and analyzes one blood-cell transit (Fig. 7).
pub fn run(seed: u64) -> SinglePeak {
    let mut acq = super::counting_acquisition(seed);
    let array = ElectrodeArray::paper_prototype();
    let schedule = KeySchedule::Static(CipherKey {
        selection: ElectrodeSelection::new(&array, &[array.lead()])
            .expect("lead selection is valid"),
        gains: vec![GainLevel::unity(); 9],
        flow: FlowLevel::nominal(),
    });
    let event = TransitEvent {
        time: Seconds::new(0.5),
        particle: Particle::nominal(ParticleKind::RedBloodCell),
        velocity: 2250.0,
    };
    let out = acq.run(&[event], &schedule, Seconds::new(1.0));
    let channel = out
        .trace
        .channel_at(Hertz::from_khz(500.0))
        .expect("two-carrier trace");
    let depth = detrend_segmented(&channel.samples, &DetrendConfig::paper_default());
    let peaks = ThresholdDetector::paper_default().detect(&depth, 450.0);
    assert_eq!(peaks.len(), 1, "one cell through the lead gives one dip");
    let peak = peaks[0];
    let lo = peak.index.saturating_sub(20);
    let hi = (peak.index + 20).min(channel.samples.len() - 1);
    let waveform = (lo..=hi)
        .map(|i| (i as f64 / 450.0, channel.samples[i]))
        .collect();
    SinglePeak { waveform, peak }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dip_with_paper_scale_width() {
        let result = run(7);
        // ≈ 20 ms transit; threshold crossing is narrower than the full
        // transit but must be in the same regime (5–40 ms).
        assert!(
            (0.005..0.04).contains(&result.peak.width_s),
            "width {} s",
            result.peak.width_s
        );
        // Blood cell dips ≈ 0.8 % at 500 kHz.
        assert!(
            (0.003..0.012).contains(&result.peak.amplitude),
            "amplitude {}",
            result.peak.amplitude
        );
        // The waveform actually dips below its local baseline.
        let min = result
            .waveform
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        let local_baseline = result.waveform.iter().take(5).map(|&(_, v)| v).sum::<f64>() / 5.0;
        assert!(
            min < local_baseline - 0.003,
            "min {min} vs baseline {local_baseline}"
        );
    }
}
