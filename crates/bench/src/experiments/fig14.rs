//! Figure 14: peak-analysis performance, computer vs smartphone, at sample
//! sizes 240 607 / 481 214 / 962 428.
//!
//! Paper numbers: computer 0.11 / 0.215 / 0.343 s; Nexus 5 0.452 / 0.81 /
//! 1.554 s. Both lines are ≈ linear; the computer is ≈ 4× faster at the
//! margin — the case for cloud offloading. We report the paper's points, the
//! fitted device-profile predictions, and a real wall-clock measurement of
//! this repository's detrend + peak-detection pipeline at each size.

use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
use medsen_dsp::peaks::ThresholdDetector;
use medsen_phone::profile::{
    DeviceProfile, PAPER_FIG14_COMPUTER_S, PAPER_FIG14_PHONE_S, PAPER_FIG14_SAMPLE_SIZES,
};
use std::time::Instant;

/// One sample-size row.
#[derive(Debug, Clone, Copy)]
pub struct PerfRow {
    /// Sample count analyzed.
    pub n_samples: usize,
    /// Paper's computer measurement (s).
    pub paper_computer_s: f64,
    /// Paper's smartphone measurement (s).
    pub paper_phone_s: f64,
    /// Our fitted computer-profile prediction (s).
    pub model_computer_s: f64,
    /// Our fitted phone-profile prediction (s).
    pub model_phone_s: f64,
    /// Measured wall-clock of this repo's pipeline on this machine (s).
    pub measured_local_s: f64,
    /// Peaks found in the synthetic benchmark trace.
    pub peaks_found: usize,
}

/// Builds the synthetic benchmark signal: a drifting baseline with one dip
/// every ~1000 samples.
pub fn benchmark_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            let baseline = 1.0 + 3e-8 * x - 1e-14 * x * x + 1e-3 * (x / 9_000.0).sin();
            let phase = i % 1_000;
            let dip = if (498..=502).contains(&phase) {
                8e-3
            } else {
                0.0
            };
            baseline * (1.0 - dip)
        })
        .collect()
}

/// Runs the Fig. 14 comparison.
pub fn run() -> Vec<PerfRow> {
    let computer = DeviceProfile::paper_computer();
    let phone = DeviceProfile::paper_phone();
    let detector = ThresholdDetector::paper_default();
    PAPER_FIG14_SAMPLE_SIZES
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let signal = benchmark_signal(n);
            let t0 = Instant::now();
            let depth = detrend_segmented(&signal, &DetrendConfig::paper_default());
            let peaks = detector.count(&depth, 450.0);
            let measured = t0.elapsed().as_secs_f64();
            PerfRow {
                n_samples: n,
                paper_computer_s: PAPER_FIG14_COMPUTER_S[i],
                paper_phone_s: PAPER_FIG14_PHONE_S[i],
                model_computer_s: computer.predict(n).value(),
                model_phone_s: phone.predict(n).value(),
                measured_local_s: measured,
                peaks_found: peaks,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_paper_sizes_and_scale_linearly() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        // Measured time grows with size (allowing generous noise).
        assert!(rows[2].measured_local_s > rows[0].measured_local_s * 1.5);
        // Phone model is consistently slower than computer model.
        for r in &rows {
            assert!(r.model_phone_s > 2.0 * r.model_computer_s);
        }
        // The synthetic trace has ~1 peak per 1000 samples.
        assert!((rows[0].peaks_found as f64 - 240.0).abs() < 20.0);
    }

    #[test]
    fn benchmark_signal_is_reproducible() {
        assert_eq!(benchmark_signal(10_000), benchmark_signal(10_000));
    }
}
