//! Figure 15: normalized impedance response of (a) a blood cell, (b) a
//! 3.58 µm bead, (c) a 7.8 µm bead at 500/1000/2000/2500/3000 kHz.
//!
//! Paper shapes: the 7.8 µm bead dips deepest (to ≈ 0.985), the blood cell
//! intermediate, the 3.58 µm bead shallowest; and "at the frequency of 2 MHz
//! and higher, the blood cell has lower electrical impedance response
//! comparing to the impedance response of synthetic beads" — i.e. the cell's
//! dips shrink with frequency while the beads' do not.

use medsen_impedance::ElectrodeCircuit;
use medsen_microfluidics::{ChannelGeometry, Particle, ParticleKind, TransitEvent};
use medsen_sensor::{
    CipherKey, ElectrodeArray, ElectrodeSelection, EncryptedAcquisition, FlowLevel, GainLevel,
    KeySchedule,
};
use medsen_units::Seconds;

/// One particle's per-carrier dip depths.
#[derive(Debug, Clone)]
pub struct FrequencyResponse {
    /// The particle measured.
    pub kind: ParticleKind,
    /// `(carrier Hz, normalized minimum amplitude)` per carrier — the
    /// quantity Fig. 15 plots (baseline 1.0, dips below).
    pub minima: Vec<(f64, f64)>,
}

impl FrequencyResponse {
    /// Dip depth (1 − minimum) at the carrier nearest `hz`.
    pub fn dip_at(&self, hz: f64) -> f64 {
        let (_, min) = self
            .minima
            .iter()
            .min_by(|(a, _), (b, _)| {
                (a - hz)
                    .abs()
                    .partial_cmp(&(b - hz).abs())
                    .expect("finite carriers")
            })
            .expect("non-empty response");
        1.0 - min
    }
}

/// Measures all three Fig. 15 particles.
pub fn run(seed: u64) -> Vec<FrequencyResponse> {
    [
        ParticleKind::RedBloodCell,
        ParticleKind::Bead358,
        ParticleKind::Bead78,
    ]
    .into_iter()
    .map(|kind| {
        let array = ElectrodeArray::paper_prototype();
        let mut acq = EncryptedAcquisition::new(
            array,
            ChannelGeometry::paper_default(),
            ElectrodeCircuit::paper_default(),
            super::figure15_synth(seed),
        );
        let schedule = KeySchedule::Static(CipherKey {
            selection: ElectrodeSelection::new(&array, &[array.lead()]).expect("lead selection"),
            gains: vec![GainLevel::unity(); 9],
            flow: FlowLevel::nominal(),
        });
        let event = TransitEvent {
            time: Seconds::new(0.5),
            particle: Particle::nominal(kind),
            velocity: 2250.0,
        };
        let out = acq.run(&[event], &schedule, Seconds::new(1.0));
        let minima = out
            .trace
            .channels()
            .iter()
            .map(|c| (c.carrier.value(), c.min().expect("non-empty channel")))
            .collect();
        FrequencyResponse { kind, minima }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_ordering_at_low_frequency() {
        let rs = run(5);
        let dip = |kind: ParticleKind, hz: f64| {
            rs.iter()
                .find(|r| r.kind == kind)
                .expect("kind measured")
                .dip_at(hz)
        };
        // 7.8 µm > blood cell > 3.58 µm at 500 kHz.
        assert!(dip(ParticleKind::Bead78, 5e5) > dip(ParticleKind::RedBloodCell, 5e5));
        assert!(dip(ParticleKind::RedBloodCell, 5e5) > dip(ParticleKind::Bead358, 5e5));
    }

    #[test]
    fn cell_response_shrinks_above_2mhz_but_beads_do_not() {
        let rs = run(5);
        let cell = rs
            .iter()
            .find(|r| r.kind == ParticleKind::RedBloodCell)
            .expect("cell measured");
        let bead = rs
            .iter()
            .find(|r| r.kind == ParticleKind::Bead78)
            .expect("bead measured");
        assert!(
            cell.dip_at(3.0e6) < 0.7 * cell.dip_at(5e5),
            "cell 3 MHz {} vs 500 kHz {}",
            cell.dip_at(3.0e6),
            cell.dip_at(5e5)
        );
        assert!(
            bead.dip_at(3.0e6) > 0.85 * bead.dip_at(5e5),
            "bead must stay flat"
        );
    }

    #[test]
    fn depth_scale_matches_figure() {
        // Fig. 15c: the 7.8 µm bead dips to ≈ 0.985 (1.5 %).
        let rs = run(5);
        let bead = rs
            .iter()
            .find(|r| r.kind == ParticleKind::Bead78)
            .expect("bead measured");
        let dip = bead.dip_at(5e5);
        assert!((0.008..0.03).contains(&dip), "dip {dip}");
    }
}
