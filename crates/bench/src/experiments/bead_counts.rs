//! Figures 12–13: empirical vs estimated bead counts across concentrations.
//!
//! Paper shape: "the empirical peak detection varies linearly to the
//! estimated peaks at different concentrations" with a deficit (slope < 1)
//! explained by beads sinking in the inlet well and adsorbing to channel
//! walls; four samples per concentration; 7.8 µm beads (Fig. 12) show a
//! larger deficit than 3.58 µm (Fig. 13).

use medsen_cloud::AnalysisServer;
use medsen_dsp::stats::{linear_regression, LinearFit};
use medsen_microfluidics::stochastic::sample_poisson;
use medsen_microfluidics::{
    ChannelGeometry, LossModel, ParticleKind, PeristalticPump, TransportSimulator,
};
use medsen_sensor::{Controller, ControllerConfig};
use medsen_units::Seconds;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One concentration's results.
#[derive(Debug, Clone)]
pub struct BeadCountRow {
    /// Estimated bead count from the manufacturer concentration.
    pub estimated: f64,
    /// Empirically detected counts (one per replicate sample).
    pub empirical: Vec<usize>,
}

impl BeadCountRow {
    /// Mean empirical count.
    pub fn mean_empirical(&self) -> f64 {
        self.empirical.iter().sum::<usize>() as f64 / self.empirical.len().max(1) as f64
    }
}

/// Full sweep output.
#[derive(Debug, Clone)]
pub struct BeadCountSweep {
    /// The bead type swept.
    pub kind: ParticleKind,
    /// Per-concentration rows.
    pub rows: Vec<BeadCountRow>,
    /// Linear fit of mean empirical vs estimated.
    pub fit: LinearFit,
}

/// Runs the sweep: for each target estimated count, run `replicates`
/// acquisitions of `duration` each and count peaks.
pub fn run(
    kind: ParticleKind,
    estimated_targets: &[f64],
    replicates: usize,
    duration: Seconds,
    seed: u64,
) -> BeadCountSweep {
    let losses = LossModel::paper_default();
    let server = AnalysisServer::paper_default();

    let mut rows = Vec::with_capacity(estimated_targets.len());
    for (ci, &estimated) in estimated_targets.iter().enumerate() {
        let mut empirical = Vec::with_capacity(replicates);
        for rep in 0..replicates {
            let run_seed = seed.wrapping_add(1000 * ci as u64).wrapping_add(rep as u64);
            let mut rng = StdRng::seed_from_u64(run_seed);
            // Expected delivery after sedimentation + adsorption, then the
            // Poisson draw of how many actually arrive this run.
            let delivery = losses.delivery(kind, estimated, duration);
            let arrived = sample_poisson(&mut rng, delivery.delivered) as usize;

            let mut sim = TransportSimulator::new(
                ChannelGeometry::paper_default(),
                PeristalticPump::paper_default(),
                run_seed,
            );
            let events = sim.run_exact_count(kind, arrived, duration);

            let mut acq = super::counting_acquisition(run_seed);
            let mut controller =
                Controller::new(*acq.array(), ControllerConfig::paper_default(), run_seed);
            let schedule = controller.plaintext_schedule().clone();
            let out = acq.run(&events, &schedule, duration);
            let report = server.analyze(&out.trace);
            empirical.push(report.peak_count());
        }
        rows.push(BeadCountRow {
            estimated,
            empirical,
        });
    }

    let xs: Vec<f64> = rows.iter().map(|r| r.estimated).collect();
    let ys: Vec<f64> = rows.iter().map(BeadCountRow::mean_empirical).collect();
    let fit = linear_regression(&xs, &ys);
    BeadCountSweep { kind, rows, fit }
}

/// The Fig. 12 sweep (7.8 µm beads, estimated counts up to ≈ 350).
pub fn fig12(duration: Seconds, replicates: usize, seed: u64) -> BeadCountSweep {
    run(
        ParticleKind::Bead78,
        &[50.0, 100.0, 150.0, 250.0, 350.0],
        replicates,
        duration,
        seed,
    )
}

/// The Fig. 13 sweep (3.58 µm beads, estimated counts up to ≈ 1100).
pub fn fig13(duration: Seconds, replicates: usize, seed: u64) -> BeadCountSweep {
    run(
        ParticleKind::Bead358,
        &[100.0, 300.0, 500.0, 800.0, 1100.0],
        replicates,
        duration,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_linear_with_sub_unity_slope() {
        // A reduced sweep for test speed: shape only.
        let sweep = run(
            ParticleKind::Bead78,
            &[40.0, 120.0, 240.0],
            2,
            Seconds::new(60.0),
            5,
        );
        assert!(sweep.fit.r_squared > 0.95, "r² {}", sweep.fit.r_squared);
        assert!(
            sweep.fit.slope > 0.5 && sweep.fit.slope < 1.0,
            "slope {}",
            sweep.fit.slope
        );
    }

    #[test]
    fn large_beads_lose_more_than_small_beads() {
        let big = run(
            ParticleKind::Bead78,
            &[60.0, 180.0],
            2,
            Seconds::new(60.0),
            6,
        );
        let small = run(
            ParticleKind::Bead358,
            &[60.0, 180.0],
            2,
            Seconds::new(60.0),
            6,
        );
        assert!(
            big.fit.slope < small.fit.slope,
            "7.8 µm slope {} vs 3.58 µm slope {}",
            big.fit.slope,
            small.fit.slope
        );
    }
}
