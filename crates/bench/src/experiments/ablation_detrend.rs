//! Ablation: detrending polynomial order and segmentation (Sec. VI-C).
//!
//! The paper found second-order segmented fitting optimal: "for lower order
//! of polynomial fitting, the fitted line might not be conformal to the
//! baseline drifting" (under-fit), while "the high order of the polynomial
//! fitting would cause ... the peaks of the signal to deform" (over-fit),
//! and a whole-trace order-2 fit "clearly under-fits" long acquisitions.

use medsen_dsp::detrend::{detrend_segmented, detrend_whole, DetrendConfig};
use medsen_dsp::peaks::ThresholdDetector;

/// One detrend configuration's score.
#[derive(Debug, Clone)]
pub struct DetrendScore {
    /// Configuration label.
    pub label: String,
    /// Fraction of planted dips recovered.
    pub recovery: f64,
    /// Worst residual baseline excursion (false-peak risk).
    pub baseline_residual: f64,
    /// Mean recovered depth of the planted dips (deformation indicator;
    /// planted depth is 8 × 10⁻³).
    pub mean_depth: f64,
}

/// Drifting signal with `dips` planted dips of depth 8 × 10⁻³.
fn synthetic(n: usize, dips: usize) -> (Vec<f64>, Vec<usize>) {
    let centers: Vec<usize> = (1..=dips).map(|k| k * n / (dips + 1)).collect();
    let signal = (0..n)
        .map(|i| {
            let x = i as f64;
            let baseline = 1.0 + 6e-7 * x - 4e-12 * x * x + 2.5e-3 * (x / 3_000.0).sin();
            let dip: f64 = centers
                .iter()
                .map(|&c| {
                    let d = (x - c as f64) / 3.0;
                    8e-3 * (-0.5 * d * d).exp()
                })
                .sum();
            baseline * (1.0 - dip)
        })
        .collect();
    (signal, centers)
}

fn score(label: String, depth: &[f64], centers: &[usize]) -> DetrendScore {
    let detector = ThresholdDetector::paper_default();
    let peaks = detector.detect(depth, 450.0);
    let recovered = centers
        .iter()
        .filter(|&&c| peaks.iter().any(|p| p.index.abs_diff(c) <= 5))
        .count();
    // Baseline residual: worst |depth| at least 50 samples from any dip.
    let baseline_residual = depth
        .iter()
        .enumerate()
        .filter(|(i, _)| centers.iter().all(|&c| i.abs_diff(c) > 50))
        .map(|(_, &v)| v.abs())
        .fold(0.0, f64::max);
    let mean_depth = if recovered == 0 {
        0.0
    } else {
        centers
            .iter()
            .filter_map(|&c| {
                peaks
                    .iter()
                    .find(|p| p.index.abs_diff(c) <= 5)
                    .map(|p| p.amplitude)
            })
            .sum::<f64>()
            / recovered as f64
    };
    DetrendScore {
        label,
        recovery: recovered as f64 / centers.len() as f64,
        baseline_residual,
        mean_depth,
    }
}

/// Runs the ablation over polynomial orders plus the whole-trace baseline.
pub fn run(n_samples: usize, dips: usize) -> Vec<DetrendScore> {
    let (signal, centers) = synthetic(n_samples, dips);
    let mut scores = Vec::new();
    for order in [1usize, 2, 4, 8] {
        let cfg = DetrendConfig {
            order,
            window: 700,
            overlap: 70,
        };
        let depth = detrend_segmented(&signal, &cfg);
        scores.push(score(
            format!("segmented order {order} (700-sample windows)"),
            &depth,
            &centers,
        ));
    }
    let whole = detrend_whole(&signal, 2);
    scores.push(score("whole-trace order 2".into(), &whole, &centers));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order2_segmented_recovers_everything_cleanly() {
        let scores = run(40_000, 20);
        let order2 = &scores[1];
        assert_eq!(order2.label, "segmented order 2 (700-sample windows)");
        assert!(order2.recovery > 0.95, "recovery {}", order2.recovery);
        assert!(
            order2.baseline_residual < 1.0e-3,
            "residual {}",
            order2.baseline_residual
        );
        // Depth close to the planted 8e-3.
        assert!((order2.mean_depth - 8e-3).abs() < 2e-3);
    }

    #[test]
    fn whole_trace_fit_leaves_larger_residual() {
        let scores = run(40_000, 20);
        let order2 = &scores[1];
        let whole = scores.last().expect("whole-trace row");
        assert!(
            whole.baseline_residual > 2.0 * order2.baseline_residual,
            "whole {} vs segmented {}",
            whole.baseline_residual,
            order2.baseline_residual
        );
    }

    #[test]
    fn high_order_deforms_peaks() {
        let scores = run(40_000, 20);
        let order2 = &scores[1];
        let order8 = &scores[3];
        assert!(
            order8.mean_depth < order2.mean_depth,
            "order 8 should absorb peak energy: {} vs {}",
            order8.mean_depth,
            order2.mean_depth
        );
    }
}
