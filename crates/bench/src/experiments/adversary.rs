//! Sec. IV-A security experiment: can a curious cloud recover the true cell
//! count from what it sees?
//!
//! We sweep cipher configurations (everything off → full cipher) against
//! the three attacks and report each attack's mean relative counting error.
//! Paper expectations: with no randomization the attacks recover counts; the
//! gain parameter defeats amplitude grouping, the flow parameter defeats
//! width grouping, and realistic densities defeat burst clustering — while
//! the legitimate decryptor keeps working throughout.

use medsen_cloud::{
    AmplitudeGroupingAttack, AnalysisServer, BurstClusteringAttack, WidthGroupingAttack,
};
use medsen_core::threat::{estimate_leakage, LeakageEstimate};
use medsen_microfluidics::{
    ChannelGeometry, ParticleKind, PeristalticPump, SampleSpec, TransportSimulator,
};
use medsen_sensor::{Controller, ControllerConfig};
use medsen_units::Seconds;
use medsen_units::{Concentration, Microliters};

/// Which knobs the cipher has enabled for one sweep row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CipherVariant {
    /// Human-readable label.
    pub label: &'static str,
    /// Random electrode subsets (multiplicity concealment).
    pub random_selection: bool,
    /// Random gains.
    pub random_gains: bool,
    /// Random flow.
    pub random_flow: bool,
}

/// The sweep's standard variants.
pub const VARIANTS: [CipherVariant; 4] = [
    CipherVariant {
        label: "no cipher (plaintext)",
        random_selection: false,
        random_gains: false,
        random_flow: false,
    },
    CipherVariant {
        label: "selection only",
        random_selection: true,
        random_gains: false,
        random_flow: false,
    },
    CipherVariant {
        label: "selection + gains",
        random_selection: true,
        random_gains: true,
        random_flow: false,
    },
    CipherVariant {
        label: "full cipher (E,G,S)",
        random_selection: true,
        random_gains: true,
        random_flow: true,
    },
];

/// One variant's attack outcomes.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// The cipher variant attacked.
    pub variant: CipherVariant,
    /// Mean relative error of each attack, and of the honest decryptor.
    pub amplitude_attack_err: f64,
    /// Width-grouping attack error.
    pub width_attack_err: f64,
    /// Burst-clustering attack error.
    pub burst_attack_err: f64,
    /// The legitimate decryptor's error (must stay low for all variants).
    pub decryptor_err: f64,
    /// Leakage R² of raw peak count vs truth across runs.
    pub leakage: LeakageEstimate,
}

fn run_variant(
    variant: CipherVariant,
    runs: usize,
    duration: Seconds,
    seed: u64,
) -> VariantOutcome {
    let server = AnalysisServer::paper_default();
    let amp_attack = AmplitudeGroupingAttack::paper_default();
    let width_attack = WidthGroupingAttack::paper_default();
    let burst_attack = BurstClusteringAttack::paper_default();

    let mut amp_err = 0.0;
    let mut width_err = 0.0;
    let mut burst_err = 0.0;
    let mut dec_err = 0.0;
    let mut leak_pairs: Vec<(usize, usize)> = Vec::new();

    for r in 0..runs {
        let run_seed = seed.wrapping_add(31 * r as u64);
        // A sparse bead stream whose count varies run to run (the secret the
        // attacker wants): 10–40 beads per run.
        let target = 10.0 + 30.0 * (r as f64 / runs.max(2) as f64);
        let sample = SampleSpec::bead_calibration(
            Microliters::new(1.0),
            ParticleKind::Bead78,
            Concentration::new(target / (0.08 / 60.0 * duration.value())),
        );
        let mut sim = TransportSimulator::new(
            ChannelGeometry::paper_default(),
            PeristalticPump::paper_default(),
            run_seed,
        );
        let events = sim.run(&sample, duration);
        let truth = events.len();

        let mut acq = super::counting_acquisition(run_seed);
        let mut controller = Controller::new(
            *acq.array(),
            ControllerConfig {
                randomize_gains: variant.random_gains,
                randomize_flow: variant.random_flow,
                ..ControllerConfig::paper_default()
            },
            run_seed,
        );
        let schedule = if variant.random_selection {
            controller.generate_schedule(duration).clone()
        } else {
            controller.plaintext_schedule().clone()
        };
        let out = acq.run(&events, &schedule, duration);
        let report = server.analyze(&out.trace);

        let rel = |est: usize| {
            if truth == 0 {
                0.0
            } else {
                (est as f64 - truth as f64).abs() / truth as f64
            }
        };
        amp_err += rel(amp_attack.estimate(&report).estimated_cells);
        width_err += rel(width_attack.estimate(&report).estimated_cells);
        burst_err += rel(burst_attack.estimate(&report).estimated_cells);

        let geometry = ChannelGeometry::paper_default();
        let nominal_v = PeristalticPump::paper_default().velocity_at(
            Seconds::ZERO,
            geometry.pore_width,
            geometry.pore_height,
        );
        let delay = Seconds::new(acq.array().span(&geometry).value() / (2.0 * nominal_v));
        let decoded = controller
            .decryptor_with_delay(delay)
            .decrypt(&report.reported_peaks())
            .rounded() as usize;
        dec_err += rel(decoded);

        leak_pairs.push((truth, report.peak_count()));
    }

    let n = runs as f64;
    VariantOutcome {
        variant,
        amplitude_attack_err: amp_err / n,
        width_attack_err: width_err / n,
        burst_attack_err: burst_err / n,
        decryptor_err: dec_err / n,
        leakage: estimate_leakage(&leak_pairs),
    }
}

/// Runs the full sweep.
pub fn run(runs: usize, duration: Seconds, seed: u64) -> Vec<VariantOutcome> {
    VARIANTS
        .into_iter()
        .map(|v| run_variant(v, runs, duration, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cipher_defeats_attacks_while_decryptor_survives() {
        let outcomes = run(4, Seconds::new(20.0), 41);
        let plaintext = &outcomes[0];
        let full = &outcomes[3];
        // Raw peak count leaks the truth without the cipher (slope 1, R² ≈ 1).
        assert!(
            plaintext.leakage.r_squared > 0.9,
            "plaintext leakage R² {}",
            plaintext.leakage.r_squared
        );
        // The full cipher's amplitude attack wildly overcounts (the groups
        // shatter into roughly one group per peak, a several-fold error).
        assert!(
            full.amplitude_attack_err > 1.0,
            "amplitude attack err {}",
            full.amplitude_attack_err
        );
        // Flow randomization measurably worsens the width attack relative to
        // the fixed-flow variant.
        let fixed_flow = &outcomes[2];
        assert!(
            full.width_attack_err > fixed_flow.width_attack_err,
            "width attack err {} (fixed flow {})",
            full.width_attack_err,
            fixed_flow.width_attack_err
        );
        // The honest decryptor stays accurate under the full cipher.
        assert!(
            full.decryptor_err < 0.25,
            "decryptor err {}",
            full.decryptor_err
        );
    }

    #[test]
    fn gain_randomization_specifically_breaks_amplitude_grouping() {
        let outcomes = run(4, Seconds::new(20.0), 43);
        let selection_only = &outcomes[1];
        let with_gains = &outcomes[2];
        assert!(
            with_gains.amplitude_attack_err > selection_only.amplitude_attack_err,
            "gains must hurt the amplitude attack: {} vs {}",
            with_gains.amplitude_attack_err,
            selection_only.amplitude_attack_err
        );
    }
}
