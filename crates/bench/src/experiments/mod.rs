//! One module per figure/table of the paper's evaluation.

pub mod ablation_detrend;
pub mod ablation_gains;
pub mod ablation_keys;
pub mod adversary;
pub mod auth_accuracy;
pub mod bead_counts;
pub mod end_to_end;
pub mod ext_phase;
pub mod fig07;
pub mod fig08;
pub mod fig11;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod key_length;

use medsen_impedance::{ElectrodeCircuit, ExcitationConfig, TraceSynthesizer};
use medsen_microfluidics::ChannelGeometry;
use medsen_sensor::{ElectrodeArray, EncryptedAcquisition};
use medsen_units::{Hertz, Volts};

/// Builds an acquisition engine with a reduced two-carrier excitation
/// (500 kHz + 2.5 MHz — the Fig. 16 feature pair). Counting experiments do
/// not need all eight carriers, and dropping them makes the long sweeps
/// several times faster without changing any count.
pub fn counting_acquisition(seed: u64) -> EncryptedAcquisition {
    let excitation = ExcitationConfig::new(
        vec![Hertz::from_khz(500.0), Hertz::from_khz(2500.0)],
        Volts::new(1.0),
        Hertz::new(450.0),
        Hertz::new(120.0),
    )
    .expect("two-carrier config is valid");
    let synth = TraceSynthesizer::paper_default(seed).with_excitation(excitation);
    EncryptedAcquisition::new(
        ElectrodeArray::paper_prototype(),
        ChannelGeometry::paper_default(),
        ElectrodeCircuit::paper_default(),
        synth,
    )
}

/// A synthesiser limited to the Fig. 15 carrier set.
pub fn figure15_synth(seed: u64) -> TraceSynthesizer {
    TraceSynthesizer::paper_default(seed).with_excitation(ExcitationConfig::figure15())
}
