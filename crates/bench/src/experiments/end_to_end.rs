//! The end-to-end timing and data-volume claims (abstract + Sec. VII-B).
//!
//! * "MedSen's end-to-end time requirement for disease diagnostics is
//!   approximately 0.2 seconds on average" (the post-acquisition signal
//!   path);
//! * "MedSen's typical diagnostics procedure takes a 0.01 mL of blood sample
//!   and completes all the steps ... within 1 minute";
//! * zip compression: 600 MB → 240 MB (ratio 2.5×).

use medsen_core::{
    CytoPassword, DiagnosticRule, PasswordAlphabet, Pipeline, PipelineConfig, SessionReport,
};
use medsen_microfluidics::ParticleKind;
use medsen_units::{Concentration, Seconds};

/// Aggregated end-to-end statistics over several sessions.
#[derive(Debug, Clone)]
pub struct EndToEndStats {
    /// Individual session reports.
    pub sessions: Vec<SessionReport>,
    /// Mean post-acquisition time (the paper's "end-to-end" metric), seconds.
    pub mean_post_acquisition_s: f64,
    /// Mean compression ratio.
    pub mean_compression_ratio: f64,
    /// Mean decode relative error vs ground truth.
    pub mean_decode_error: f64,
}

/// Runs `n` encrypted diagnostic sessions of `duration` each.
pub fn run(n: usize, duration: Seconds, seed: u64) -> EndToEndStats {
    let alphabet = PasswordAlphabet::new(
        vec![ParticleKind::Bead358, ParticleKind::Bead78],
        Concentration::new(100.0),
        8,
    )
    .expect("low-dose alphabet");
    let password = CytoPassword::new(&alphabet, vec![1, 1]).expect("valid password");
    let config = PipelineConfig {
        duration,
        ..PipelineConfig::paper_default(seed)
    };
    let mut pipeline = Pipeline::new(config, alphabet, DiagnosticRule::cd4_staging());

    let mut sessions = Vec::with_capacity(n);
    for _ in 0..n {
        sessions.push(pipeline.run_session("patient", &password));
    }

    let mean = |f: &dyn Fn(&SessionReport) -> f64| {
        sessions.iter().map(f).sum::<f64>() / sessions.len() as f64
    };
    let mean_post_acquisition_s = mean(&|s| s.timing.post_acquisition_s());
    let mean_compression_ratio = mean(&|s| s.compression.ratio());
    let mean_decode_error = mean(&|s| {
        let truth = (s.true_cells + s.true_beads) as f64;
        if truth == 0.0 {
            return 0.0;
        }
        let decoded = s.decoded_total.unwrap_or(0) as f64;
        (decoded - truth).abs() / truth
    });
    EndToEndStats {
        sessions,
        mean_post_acquisition_s,
        mean_compression_ratio,
        mean_decode_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_acquisition_path_is_fast_and_accurate() {
        let stats = run(3, Seconds::new(20.0), 21);
        // Sub-minute total; the signal path itself is seconds-scale (our 4G
        // model charges ~0.5 s of upload for a 20 s trace — same order as the
        // paper's 0.2 s, which excluded networking).
        assert!(
            stats.mean_post_acquisition_s < 10.0,
            "post-acq {}",
            stats.mean_post_acquisition_s
        );
        assert!(stats.mean_compression_ratio > 2.0);
        assert!(
            stats.mean_decode_error < 0.35,
            "decode error {}",
            stats.mean_decode_error
        );
    }

    #[test]
    fn every_session_produces_a_verdict() {
        let stats = run(2, Seconds::new(20.0), 22);
        assert!(stats.sessions.iter().all(|s| s.verdict.is_some()));
    }
}
