//! Sec. VII-C: cyto-coded password classification accuracy, and the
//! concentration-resolution observation.
//!
//! Paper claims: "MedSen can reliably classify different users based on
//! their cyto-coded passwords with high accuracy", and "lower bead
//! concentrations have less variance and improved resolution compared with
//! higher concentrations".

use medsen_cloud::AuthDecision;
use medsen_core::{CytoPassword, DiagnosticRule, PasswordAlphabet, Pipeline, PipelineConfig};
use medsen_units::Seconds;

/// Aggregate authentication statistics.
#[derive(Debug, Clone)]
pub struct AuthAccuracy {
    /// Enrolled users and their passwords (level vectors).
    pub users: Vec<(String, Vec<u8>)>,
    /// Sessions in which the correct user was accepted.
    pub correct: usize,
    /// Sessions rejected outright.
    pub rejected: usize,
    /// Sessions accepted as the *wrong* user (the security failure mode).
    pub impersonated: usize,
    /// Sessions flagged ambiguous.
    pub ambiguous: usize,
    /// Total sessions.
    pub total: usize,
}

impl AuthAccuracy {
    /// Fraction of sessions authenticating the right user.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Enrolls `users.len()` users and runs `sessions_per_user` authentication
/// sessions each.
///
/// Enrollment is *empirical*, as a deployment would do it: each user's first
/// two pipettes are measured and the mean measured signature is stored, so
/// the enrolled reference already carries the system's detection efficiency
/// rather than an idealized analytic expectation.
pub fn run(
    users: &[(&str, Vec<u8>)],
    sessions_per_user: usize,
    duration: Seconds,
    seed: u64,
) -> AuthAccuracy {
    let alphabet = PasswordAlphabet::paper_default();
    let config = PipelineConfig {
        duration,
        ..PipelineConfig::auth_default(seed)
    };
    let mut pipeline = Pipeline::new(config, alphabet.clone(), DiagnosticRule::cd4_staging());
    pipeline.calibrate_classifier();

    let passwords: Vec<(String, CytoPassword)> = users
        .iter()
        .map(|(name, levels)| {
            let pw = CytoPassword::new(&alphabet, levels.clone()).expect("valid password");
            ((*name).to_owned(), pw)
        })
        .collect();
    for (name, pw) in &passwords {
        let mut mean = medsen_cloud::BeadSignature::new();
        let reps = 2u64;
        let mut totals: std::collections::BTreeMap<medsen_microfluidics::ParticleKind, u64> =
            std::collections::BTreeMap::new();
        for _ in 0..reps {
            let report = pipeline.run_session(name, pw);
            for (kind, count) in report
                .measured_signature
                .expect("auth mode measures")
                .entries()
            {
                *totals.entry(kind).or_insert(0) += count;
            }
        }
        for (kind, total) in totals {
            mean.set(kind, total / reps);
        }
        pipeline.auth_mut().enroll(name.clone(), mean);
    }

    let mut stats = AuthAccuracy {
        users: users
            .iter()
            .map(|(n, l)| ((*n).to_owned(), l.clone()))
            .collect(),
        correct: 0,
        rejected: 0,
        impersonated: 0,
        ambiguous: 0,
        total: 0,
    };
    for (name, pw) in &passwords {
        for _ in 0..sessions_per_user {
            let report = pipeline.run_session(name, pw);
            stats.total += 1;
            match report.auth.expect("auth mode returns a decision") {
                AuthDecision::Accepted { user_id } if &user_id == name => stats.correct += 1,
                AuthDecision::Accepted { .. } => stats.impersonated += 1,
                AuthDecision::Rejected => stats.rejected += 1,
                AuthDecision::Ambiguous { .. } => stats.ambiguous += 1,
            }
        }
    }
    stats
}

/// The default well-separated four-user roster.
pub fn default_roster() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("alice", vec![2, 6]),
        ("bob", vec![6, 2]),
        ("carol", vec![4, 4]),
        ("dave", vec![8, 8]),
    ]
}

/// The resolution experiment: repeated measurements of a single bead type at
/// a given level; returns the mean absolute relative counting error.
/// Comparing low vs high levels quantifies the paper's "lower bead
/// concentrations have ... improved resolution".
pub fn level_resolution(level: u8, repeats: usize, duration: Seconds, seed: u64) -> f64 {
    let alphabet = PasswordAlphabet::paper_default();
    let config = PipelineConfig {
        duration,
        ..PipelineConfig::auth_default(seed.wrapping_add(u64::from(level)))
    };
    let mut pipeline = Pipeline::new(config, alphabet.clone(), DiagnosticRule::cd4_staging());
    pipeline.calibrate_classifier();
    let volume = pipeline.processed_volume();
    let pw = CytoPassword::new(&alphabet, vec![level, 0]).expect("single-type password");
    let expected = pw
        .expected_signature(&alphabet, volume)
        .count(medsen_microfluidics::ParticleKind::Bead358) as f64;

    let mut total_err = 0.0;
    for _ in 0..repeats {
        let report = pipeline.run_session("probe", &pw);
        let measured = report
            .measured_signature
            .expect("auth mode measures")
            .count(medsen_microfluidics::ParticleKind::Bead358) as f64;
        total_err += (measured - expected).abs() / expected;
    }
    total_err / repeats as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_users_authenticate_reliably() {
        let stats = run(&default_roster(), 2, Seconds::new(20.0), 31);
        assert_eq!(stats.total, 8);
        assert_eq!(stats.impersonated, 0, "no session may impersonate");
        assert!(
            stats.accuracy() >= 0.75,
            "accuracy {} ({stats:?})",
            stats.accuracy()
        );
    }

    #[test]
    fn resolution_error_is_bounded_at_both_ends() {
        let low = level_resolution(2, 2, Seconds::new(20.0), 32);
        let high = level_resolution(8, 2, Seconds::new(20.0), 32);
        assert!(low < 0.5, "low-level error {low}");
        assert!(high < 0.5, "high-level error {high}");
    }
}
