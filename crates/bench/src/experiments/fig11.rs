//! Figure 11: encrypted cytometry signatures of the 9-output prototype for
//! four electrode subsets, one 7.8 µm bead each.
//!
//! Paper shapes: (a) lead only → 1 peak; (b) lead + electrode 1 → 3 peaks;
//! (c) lead + electrodes 1, 2 → 5 peaks; (d) all nine → a periodic train of
//! 17 peaks. "True number of peaks can only be detected/decrypted using
//! unique key sequence."

use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
use medsen_dsp::peaks::ThresholdDetector;
use medsen_microfluidics::{Particle, ParticleKind, TransitEvent};
use medsen_sensor::{
    CipherKey, ElectrodeArray, ElectrodeId, ElectrodeSelection, FlowLevel, GainLevel, KeySchedule,
};
use medsen_units::{Hertz, Seconds};

/// One subset's signature.
#[derive(Debug, Clone)]
pub struct SubsetSignature {
    /// Figure panel label.
    pub panel: &'static str,
    /// Active electrode ids.
    pub electrodes: Vec<u8>,
    /// Expected dips (the analytical multiplicity).
    pub expected: usize,
    /// Dips the cipher scheduled.
    pub scheduled: usize,
    /// Peaks detected by the cloud pipeline.
    pub detected: usize,
}

/// Reproduces all four Fig. 11 panels.
pub fn run(seed: u64) -> Vec<SubsetSignature> {
    let array = ElectrodeArray::paper_prototype();
    let panels: [(&'static str, Vec<u8>); 4] = [
        ("11a", vec![9]),
        ("11b", vec![9, 1]),
        ("11c", vec![9, 1, 2]),
        ("11d", (1..=9).collect()),
    ];
    panels
        .into_iter()
        .map(|(panel, ids)| {
            let electrode_ids: Vec<ElectrodeId> = ids.iter().map(|&i| ElectrodeId(i)).collect();
            let expected = array.peak_multiplicity(&electrode_ids);
            let schedule = KeySchedule::Static(CipherKey {
                selection: ElectrodeSelection::new(&array, &electrode_ids)
                    .expect("panel ids are valid"),
                gains: vec![GainLevel::unity(); 9],
                flow: FlowLevel::nominal(),
            });
            let mut acq = super::counting_acquisition(seed);
            let event = TransitEvent {
                time: Seconds::new(0.3),
                particle: Particle::nominal(ParticleKind::Bead78),
                velocity: 2250.0,
            };
            let out = acq.run(&[event], &schedule, Seconds::new(2.0));
            let channel = out
                .trace
                .channel_at(Hertz::from_khz(500.0))
                .expect("channels exist");
            let depth = detrend_segmented(&channel.samples, &DetrendConfig::paper_default());
            let detected = ThresholdDetector::paper_default().count(&depth, 450.0);
            SubsetSignature {
                panel,
                electrodes: ids,
                expected,
                scheduled: out.scheduled_dips,
                detected,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_panels_match_the_paper() {
        let results = run(3);
        let expected = [1usize, 3, 5, 17];
        for (r, &e) in results.iter().zip(&expected) {
            assert_eq!(r.expected, e, "panel {}", r.panel);
            assert_eq!(r.scheduled, e, "panel {}", r.panel);
            assert_eq!(r.detected, e, "panel {} detected", r.panel);
        }
    }
}
