//! Figure 8: "Output electrodes 1-3 turned on by switch matrix results in
//! five peaks due to one cell passing by the sensor."
//!
//! The Fig. 8 device's lead electrode is electrode 1, so electrodes {1, 2, 3}
//! contribute 1 + 2 + 2 = 5 dips for a single blood cell.

use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
use medsen_dsp::peaks::ThresholdDetector;
use medsen_impedance::{ElectrodeCircuit, TraceSynthesizer};
use medsen_microfluidics::{ChannelGeometry, Particle, ParticleKind, TransitEvent};
use medsen_sensor::{
    CipherKey, ElectrodeArray, ElectrodeId, ElectrodeSelection, EncryptedAcquisition, FlowLevel,
    GainLevel, KeySchedule,
};
use medsen_units::{Hertz, Seconds};

/// Result of the five-peak experiment.
#[derive(Debug, Clone, Copy)]
pub struct FivePeaks {
    /// Dips the cipher scheduled (the ground truth of the figure).
    pub scheduled: usize,
    /// Peaks the cloud-side pipeline detected.
    pub detected: usize,
}

/// Reproduces Fig. 8.
pub fn run(seed: u64) -> FivePeaks {
    let array = ElectrodeArray::with_lead(9, ElectrodeId(1)).expect("fig-8 device layout");
    let mut acq = EncryptedAcquisition::new(
        array,
        ChannelGeometry::paper_default(),
        ElectrodeCircuit::paper_default(),
        TraceSynthesizer::paper_default(seed),
    );
    let schedule = KeySchedule::Static(CipherKey {
        selection: ElectrodeSelection::new(
            &array,
            &[ElectrodeId(1), ElectrodeId(2), ElectrodeId(3)],
        )
        .expect("electrodes 1-3 exist"),
        gains: vec![GainLevel::unity(); 9],
        flow: FlowLevel::nominal(),
    });
    let event = TransitEvent {
        time: Seconds::new(0.3),
        particle: Particle::nominal(ParticleKind::RedBloodCell),
        velocity: 2250.0,
    };
    let out = acq.run(&[event], &schedule, Seconds::new(3.0));
    let channel = out
        .trace
        .channel_at(Hertz::from_khz(500.0))
        .expect("channels exist");
    let depth = detrend_segmented(&channel.samples, &DetrendConfig::paper_default());
    let detected = ThresholdDetector::paper_default().count(&depth, 450.0);
    FivePeaks {
        scheduled: out.scheduled_dips,
        detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_three_electrodes_five_peaks() {
        let result = run(11);
        assert_eq!(result.scheduled, 5);
        assert_eq!(result.detected, 5);
    }
}
