//! Benchmarks the fountain peeling decoder that reassembles one-way
//! uploads at the gateway: decode throughput under symbol drop rates of
//! 0/10/30/50%, and the reception-overhead cost of the LT code across
//! block sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use medsen_fountain::{Decoder, Encoder};
use std::hint::black_box;

/// Deterministic per-symbol drop decision at `drop_pct` percent.
fn dropped(symbol_id: u64, drop_pct: u64) -> bool {
    let draw = symbol_id
        .wrapping_add(0x5EED)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        >> 32;
    draw % 100 < drop_pct
}

fn block(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 + i / 251) as u8).collect()
}

/// Pre-rendered surviving symbol stream for one (block, drop) scenario.
fn surviving_frames(
    body: &[u8],
    symbol_size: usize,
    drop_pct: u64,
) -> Vec<medsen_fountain::SymbolFrame> {
    let mut encoder = Encoder::new(1, 0xF0, body, symbol_size).expect("encoder");
    let k = encoder.source_symbols() as u64;
    (0..k * 6 + 32)
        .filter(|&id| !dropped(id, drop_pct))
        .map(|id| encoder.symbol(id))
        .collect()
}

/// Decode throughput (block bytes/sec) as the link drops 0/10/30/50% of
/// the coded stream. Higher loss means later, higher-degree symbols do
/// more of the work, so peeling cost rises with drop rate.
fn decode_vs_drop(c: &mut Criterion) {
    let symbol_size = 512;
    let body = block(256 * 1024);
    let mut group = c.benchmark_group("fountain_decode_vs_drop");
    group.throughput(Throughput::Bytes(body.len() as u64));
    for drop_pct in [0u64, 10, 30, 50] {
        let frames = surviving_frames(&body, symbol_size, drop_pct);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{drop_pct}pct")),
            &frames,
            |b, frames| {
                b.iter(|| {
                    let mut decoder = Decoder::new(body.len(), symbol_size, 0xF0).expect("decoder");
                    for frame in frames {
                        if decoder.push_frame(black_box(frame)).expect("same stream") {
                            break;
                        }
                    }
                    assert!(decoder.is_complete(), "budget must cover {drop_pct}% drop");
                    black_box(decoder.stats())
                });
            },
        );
    }
    group.finish();
}

/// Reception overhead (symbols needed / k) across block sizes: LT
/// overhead is proportionally worst for tiny blocks and amortizes as k
/// grows. Reported as decode time per block; the overhead ratio itself
/// is printed once per size so the trend is visible in bench logs.
fn overhead_vs_block_size(c: &mut Criterion) {
    let symbol_size = 512;
    let mut group = c.benchmark_group("fountain_overhead_vs_block");
    for size in [4 * 1024usize, 32 * 1024, 256 * 1024, 1024 * 1024] {
        let body = block(size);
        let frames = surviving_frames(&body, symbol_size, 0);
        // One decode outside the timer to surface the overhead ratio.
        let mut probe = Decoder::new(body.len(), symbol_size, 0xF0).expect("decoder");
        for frame in &frames {
            if probe.push_frame(frame).expect("same stream") {
                break;
            }
        }
        let stats = probe.stats();
        println!(
            "fountain_overhead: block={size}B k={} symbols_to_complete={} ratio={:.3}",
            stats.source_symbols,
            stats.symbols_to_complete,
            stats.overhead_ratio()
        );
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KiB", size / 1024)),
            &frames,
            |b, frames| {
                b.iter(|| {
                    let mut decoder = Decoder::new(body.len(), symbol_size, 0xF0).expect("decoder");
                    for frame in frames {
                        if decoder.push_frame(black_box(frame)).expect("same stream") {
                            break;
                        }
                    }
                    black_box(decoder.is_complete())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, decode_vs_drop, overhead_vs_block_size);
criterion_main!(benches);
