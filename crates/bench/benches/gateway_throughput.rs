//! Benchmarks the fleet gateway: end-to-end requests/second through the
//! bounded queue + worker pool, swept over worker-pool sizes *and* wire
//! formats, plus the framing layer on its own.
//!
//! The interesting question for clinic sizing is how close N workers get
//! to N× the single-worker throughput when every request carries a real
//! trace through decode → analysis → encode — and how much of each
//! request's budget the codec itself costs, which is why every
//! end-to-end group runs once per [`WireFormat`] in the same sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use medsen_cloud::auth::BeadSignature;
use medsen_cloud::identity_hash;
use medsen_cloud::service::{CloudService, Request, Response};
use medsen_gateway::{
    wire, Gateway, GatewayConfig, PendingReply, RuntimeKind, SamplerMode, ShedPolicy,
    TelemetryConfig,
};
use medsen_impedance::{PulseSpec, SignalTrace, TraceSynthesizer};
use medsen_microfluidics::ParticleKind;
use medsen_units::Seconds;
use medsen_wire::WireFormat;
use std::hint::black_box;

const FORMATS: [WireFormat; 2] = [WireFormat::Json, WireFormat::Binary];

/// Encodes one request as a complete framed upload in the given format.
fn upload_for(session: u64, format: WireFormat, request: &Request) -> Vec<u8> {
    let body = medsen_cloud::wire::encode_request(format, request).expect("encodes");
    wire::encode_upload_wire(session, format, &body)
}

fn bench_trace(pulses: u64) -> SignalTrace {
    let mut synth = TraceSynthesizer::clean(1);
    let specs: Vec<PulseSpec> = (0..pulses)
        .map(|j| {
            PulseSpec::unipolar(
                Seconds::new(0.5 + j as f64 * 0.25),
                Seconds::new(0.02),
                0.01,
            )
        })
        .collect();
    synth.render(&specs, Seconds::new(0.5 + pulses as f64 * 0.25 + 0.5))
}

fn analyze_upload(session: u64, format: WireFormat, trace: &SignalTrace) -> Vec<u8> {
    upload_for(
        session,
        format,
        &Request::Analyze {
            trace: trace.clone(),
            authenticate: false,
        },
    )
}

/// Requests/second through the full gateway, by worker-pool size and
/// wire format in one sweep — the json/binary delta at equal workers is
/// the end-to-end codec cost per request.
fn pool_scaling(c: &mut Criterion) {
    const BATCH: usize = 16;
    let trace = bench_trace(6);

    let mut group = c.benchmark_group("gateway_throughput");
    group.throughput(Throughput::Elements(BATCH as u64));
    for format in FORMATS {
        let upload = analyze_upload(1, format, &trace);
        for workers in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("analyze_batch16_{format}"), workers),
                &workers,
                |b, &workers| {
                    let gateway = Gateway::new(
                        CloudService::new(),
                        GatewayConfig {
                            queue_capacity: BATCH,
                            workers,
                            shed_policy: ShedPolicy::Block,
                        },
                    );
                    b.iter(|| {
                        let pending: Vec<PendingReply> = (0..BATCH)
                            .map(|_| gateway.submit(upload.clone()).expect("accepted"))
                            .collect();
                        for reply in pending {
                            match reply.wait().expect("reply") {
                                Response::Analyzed { report, .. } => {
                                    black_box(report.peak_count());
                                }
                                other => panic!("unexpected {other:?}"),
                            }
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

/// Enroll storm: concurrent sessions bursting distinct-identifier
/// enrollments — the pure multi-writer workload the shard split exists
/// for. One shard is the pre-sharding single-lock baseline: every
/// submitter and worker funnels through one queue lane and every
/// enrollment serializes on one writer lock, so with `N` truly parallel
/// writers each enroll pays a contended futex handoff on top of the
/// insert. With shards ≥ workers the gateway fans out into independent
/// lanes and locks and those handoffs disappear — `MetricsSnapshot::
/// shard_contention` counts exactly the acquisitions the split saves.
/// Route keys are the identifiers' shard hashes, exactly as
/// `DongleSession` computes them.
///
/// Caveat for single-vCPU containers: the separation between the
/// baseline and the sharded configurations scales with how many writers
/// actually run in parallel. On one hardware thread writers interleave
/// instead of overlapping, write locks are practically never observed
/// held, and all three curves collapse to the same CPU-bound figure —
/// compare the configurations on a multi-core host.
fn enroll_storm(c: &mut Criterion) {
    const SUBMITTERS: usize = 8;
    const PER_SUBMITTER: usize = 128;
    const WORKERS: usize = 8;
    // Pre-encoded uploads, partitioned by submitting session.
    let encode_uploads = |format: WireFormat| -> Vec<Vec<(Vec<u8>, u64)>> {
        (0..SUBMITTERS)
            .map(|s| {
                (0..PER_SUBMITTER)
                    .map(|i| {
                        let identifier = format!("clinic-user-{s}-{i}");
                        let request = Request::Enroll {
                            identifier: identifier.clone(),
                            signature: BeadSignature::from_counts(&[(
                                ParticleKind::Bead358,
                                10 + i as u64,
                            )]),
                        };
                        (
                            upload_for((s * PER_SUBMITTER + i) as u64, format, &request),
                            identity_hash(&identifier),
                        )
                    })
                    .collect()
            })
            .collect()
    };

    let mut group = c.benchmark_group("gateway_enroll_storm");
    group.throughput(Throughput::Elements((SUBMITTERS * PER_SUBMITTER) as u64));
    for format in FORMATS {
        let uploads = encode_uploads(format);
        for shards in [1usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("enroll_8x128_{format}"), shards),
                &shards,
                |b, &shards| {
                    let gateway = Gateway::new(
                        CloudService::with_shards(shards),
                        GatewayConfig {
                            queue_capacity: 256,
                            workers: WORKERS,
                            shed_policy: ShedPolicy::Block,
                        },
                    );
                    b.iter(|| {
                        std::thread::scope(|scope| {
                            for batch in &uploads {
                                let gateway = &gateway;
                                scope.spawn(move || {
                                    let pending: Vec<PendingReply> = batch
                                        .iter()
                                        .map(|(upload, key)| {
                                            gateway
                                                .submit_keyed(upload.clone(), *key)
                                                .expect("accepted")
                                        })
                                        .collect();
                                    for reply in pending {
                                        match reply.wait().expect("reply") {
                                            Response::Enrolled => {}
                                            other => panic!("unexpected {other:?}"),
                                        }
                                    }
                                });
                            }
                        });
                    });
                },
            );
        }
    }
    group.finish();
}

/// Telemetry overhead on the enroll storm: the identical 8×128
/// distinct-identifier burst with span tracing **on** (every request
/// records admission/queue/service/shard-lock/WAL spans into the seqlock
/// ring plus an exemplar offer) versus **off** (counters and histograms
/// only — the same instruments both configurations share). The delta is
/// the whole price of request tracing; the recording path is one
/// `fetch_add` plus plain stores per span, so the two curves should sit
/// within noise of each other.
fn telemetry_overhead(c: &mut Criterion) {
    const SUBMITTERS: usize = 8;
    const PER_SUBMITTER: usize = 128;
    const WORKERS: usize = 8;
    const SHARDS: usize = 4;
    // Spans on/off is the question here, so hold the codec fixed at the
    // default wire format rather than doubling the sweep.
    let uploads: Vec<Vec<(Vec<u8>, u64)>> = (0..SUBMITTERS)
        .map(|s| {
            (0..PER_SUBMITTER)
                .map(|i| {
                    let identifier = format!("storm-user-{s}-{i}");
                    let request = Request::Enroll {
                        identifier: identifier.clone(),
                        signature: BeadSignature::from_counts(&[(
                            ParticleKind::Bead358,
                            10 + i as u64,
                        )]),
                    };
                    (
                        upload_for(
                            (s * PER_SUBMITTER + i) as u64,
                            WireFormat::default(),
                            &request,
                        ),
                        identity_hash(&identifier),
                    )
                })
                .collect()
        })
        .collect();

    let mut group = c.benchmark_group("gateway_telemetry_overhead");
    group.throughput(Throughput::Elements((SUBMITTERS * PER_SUBMITTER) as u64));
    for (label, telemetry) in [
        ("spans_on", TelemetryConfig::default()),
        ("spans_off", TelemetryConfig::disabled()),
        // The sampler sweep: a fixed 100% head sampler (funnel price with
        // zero drops), and the adaptive AIMD controller (what production
        // runs). Both should hug the spans_on curve — sampling is meant
        // to cheapen *storage*, not cost admission throughput.
        (
            "sampler_100",
            TelemetryConfig {
                sampling: SamplerMode::Fixed(1000),
                ..TelemetryConfig::default()
            },
        ),
        ("sampler_adaptive", TelemetryConfig::adaptive()),
    ] {
        group.bench_function(BenchmarkId::new("enroll_8x128", label), |b| {
            let gateway = Gateway::with_telemetry(
                CloudService::with_shards(SHARDS),
                GatewayConfig {
                    queue_capacity: 256,
                    workers: WORKERS,
                    shed_policy: ShedPolicy::Block,
                },
                RuntimeKind::default(),
                telemetry,
            );
            b.iter(|| {
                std::thread::scope(|scope| {
                    for batch in &uploads {
                        let gateway = &gateway;
                        scope.spawn(move || {
                            let pending: Vec<PendingReply> = batch
                                .iter()
                                .map(|(upload, key)| {
                                    gateway
                                        .submit_keyed(upload.clone(), *key)
                                        .expect("accepted")
                                })
                                .collect();
                            for reply in pending {
                                match reply.wait().expect("reply") {
                                    Response::Enrolled => {}
                                    other => panic!("unexpected {other:?}"),
                                }
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

/// The framing layer alone: encode + reassemble one upload per wire
/// format. The byte throughputs differ because the binary body is a
/// fraction of the JSON body for the same trace.
fn framing(c: &mut Criterion) {
    let trace = bench_trace(6);
    let request = Request::Analyze {
        trace,
        authenticate: false,
    };

    let mut group = c.benchmark_group("gateway_wire");
    for format in FORMATS {
        let body = medsen_cloud::wire::encode_request(format, &request).expect("encodes");
        let upload = wire::encode_upload_wire(7, format, &body);
        group.throughput(Throughput::Bytes(upload.len() as u64));
        group.bench_function(format!("encode_upload_{format}"), |b| {
            b.iter(|| black_box(wire::encode_upload_wire(7, format, black_box(&body))));
        });
        group.bench_function(format!("decode_upload_{format}"), |b| {
            b.iter(|| wire::decode_upload(black_box(&upload)).expect("decodes"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    pool_scaling,
    enroll_storm,
    telemetry_overhead,
    framing
);
criterion_main!(benches);
