//! Benchmarks the durable write path: enrollments/second through
//! `CloudService::with_storage` swept over group-commit flush policies,
//! against the memory-only service as the zero-durability ceiling, plus
//! the cost of crash recovery (reopening a populated data directory and
//! replaying its logs).
//!
//! The interesting question for clinic sizing is what an fsync-per-write
//! durability guarantee costs relative to batched group commit — i.e.
//! how much of the ceiling `every:N` buys back while bounding the crash
//! loss window to N acknowledged writes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use medsen_cloud::auth::BeadSignature;
use medsen_cloud::service::{CloudService, Request, Response};
use medsen_cloud::FlushPolicy;
use medsen_microfluidics::ParticleKind;
use std::path::PathBuf;
use std::time::Duration;

const SHARDS: usize = 4;
const BATCH: usize = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("medsen-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn enroll(service: &CloudService, identifier: String) {
    let response = service.handle_shared(Request::Enroll {
        identifier,
        signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 10)]),
    });
    assert_eq!(response, Response::Enrolled);
}

/// Durable enroll throughput by flush policy, with the memory-only
/// service as the no-WAL baseline.
fn group_commit_sweep(c: &mut Criterion) {
    let policies: [(&str, Option<FlushPolicy>); 5] = [
        ("memory", None),
        ("every-write", Some(FlushPolicy::EveryWrite)),
        ("every-8", Some(FlushPolicy::EveryN(8))),
        ("every-64", Some(FlushPolicy::EveryN(64))),
        (
            "interval-5ms",
            Some(FlushPolicy::EveryInterval(Duration::from_millis(5))),
        ),
    ];
    let mut group = c.benchmark_group("wal_group_commit");
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new("enroll_batch64", name),
            &policy,
            |b, policy| {
                let dir = temp_dir(name);
                let service = match policy {
                    Some(policy) => {
                        CloudService::with_storage(&dir, SHARDS, *policy).expect("opens")
                    }
                    None => CloudService::with_shards(SHARDS),
                };
                let mut round = 0u64;
                b.iter(|| {
                    for i in 0..BATCH {
                        enroll(&service, format!("clinic-user-{round}-{i}"));
                    }
                    round += 1;
                });
                drop(service);
                let _ = std::fs::remove_dir_all(&dir);
            },
        );
    }
    group.finish();
}

/// Crash recovery: reopen a data directory holding `entries` enrollments
/// and replay them back into the shards. One variant replays the raw log
/// tail; the other compacts first, so recovery loads one snapshot per
/// shard instead.
fn recovery_replay(c: &mut Criterion) {
    const ENTRIES: usize = 512;
    let mut group = c.benchmark_group("wal_recovery");
    group.throughput(Throughput::Elements(ENTRIES as u64));
    for compacted in [false, true] {
        let tag = if compacted { "snapshot" } else { "log-tail" };
        group.bench_with_input(
            BenchmarkId::new("reopen_512", tag),
            &compacted,
            |b, &compacted| {
                let dir = temp_dir(tag);
                {
                    let service = CloudService::with_storage(&dir, SHARDS, FlushPolicy::EveryN(64))
                        .expect("opens");
                    for i in 0..ENTRIES {
                        enroll(&service, format!("clinic-user-{i}"));
                    }
                    if compacted {
                        service.compact_storage().expect("compacts");
                    }
                }
                b.iter(|| {
                    let service = CloudService::with_storage(&dir, SHARDS, FlushPolicy::EveryN(64))
                        .expect("reopens");
                    let stats = service.storage_stats().expect("durable");
                    let recovered = stats.recovered_entries + stats.recovered_snapshots;
                    assert!(recovered > 0, "nothing replayed");
                    recovered
                });
                let _ = std::fs::remove_dir_all(&dir);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, group_commit_sweep, recovery_replay);
criterion_main!(benches);
