//! Benchmarks the phone-side LZW stage that stands in for the paper's zip
//! step (600 MB → 240 MB on a 3-hour acquisition).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use medsen_impedance::{PulseSpec, TraceSynthesizer};
use medsen_phone::{compress, decompress, trace_to_csv};
use medsen_units::Seconds;
use std::hint::black_box;

fn make_csv() -> String {
    let mut synth = TraceSynthesizer::paper_default(1);
    let pulses: Vec<PulseSpec> = (0..20)
        .map(|i| PulseSpec::unipolar(Seconds::new(0.5 + i as f64), Seconds::new(0.02), 0.01))
        .collect();
    let trace = synth.render(&pulses, Seconds::new(25.0));
    trace_to_csv(&trace)
}

fn compress_csv(c: &mut Criterion) {
    let csv = make_csv();
    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(csv.len() as u64));
    group.bench_function("lzw_compress_trace_csv", |b| {
        b.iter(|| compress(black_box(csv.as_bytes())));
    });
    let compressed = compress(csv.as_bytes());
    group.throughput(Throughput::Bytes(compressed.len() as u64));
    group.bench_function("lzw_decompress_trace_csv", |b| {
        b.iter(|| decompress(black_box(&compressed)).expect("valid stream"));
    });
    group.finish();
    let ratio = csv.len() as f64 / compressed.len() as f64;
    println!("compression ratio on trace CSV: {ratio:.2}x (paper zip: 2.5x)");
}

criterion_group!(benches, compress_csv);
criterion_main!(benches);
