//! Benchmarks controller key generation: the CSPRNG key schedule for runs
//! up to 3 hours (the paper's stress test), plus Eq. 2 accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medsen_sensor::{ideal_key_length_bits, Controller, ControllerConfig, ElectrodeArray};
use medsen_units::Seconds;
use std::hint::black_box;

fn keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("keygen");
    for minutes in [1u64, 10, 180] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{minutes}min")),
            &minutes,
            |b, &minutes| {
                b.iter(|| {
                    let mut controller = Controller::new(
                        ElectrodeArray::paper_prototype(),
                        ControllerConfig::paper_default(),
                        black_box(7),
                    );
                    controller.generate_schedule(Seconds::new(minutes as f64 * 60.0));
                    controller.key_bits()
                });
            },
        );
    }
    group.finish();
}

fn eq2(c: &mut Criterion) {
    c.bench_function("eq2_key_length", |b| {
        b.iter(|| ideal_key_length_bits(black_box(20_000), 16, 4, 4));
    });
}

criterion_group!(benches, keygen, eq2);
criterion_main!(benches);
