//! Benchmarks the constant-memory streaming analyzer against the batch
//! pipeline on the Fig. 14 sample sizes — the path the 3-hour stress test
//! (Sec. VII-B) uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use medsen_bench::experiments::fig14::benchmark_signal;
use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
use medsen_dsp::peaks::ThresholdDetector;
use medsen_dsp::StreamingAnalyzer;
use std::hint::black_box;

fn streaming_vs_batch(c: &mut Criterion) {
    let n = 240_607;
    let signal = benchmark_signal(n);
    let mut group = c.benchmark_group("streaming_vs_batch_240k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("batch", |b| {
        b.iter(|| {
            let depth = detrend_segmented(black_box(&signal), &DetrendConfig::paper_default());
            ThresholdDetector::paper_default().count(&depth, 450.0)
        });
    });

    for chunk in [1_024usize, 16_384] {
        group.bench_with_input(BenchmarkId::new("streaming", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut analyzer = StreamingAnalyzer::paper_default();
                let mut peaks = 0usize;
                for c in signal.chunks(chunk) {
                    peaks += analyzer.push(black_box(c)).len();
                }
                peaks + analyzer.finish().len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, streaming_vs_batch);
criterion_main!(benches);
