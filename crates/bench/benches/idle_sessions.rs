//! Benchmarks idle-session scaling on the hand-rolled runtime: how much
//! does it cost to park N sessions on the timer wheel and wake them all?
//!
//! This is the number that motivates the task-based gateway engine. An
//! OS-thread-per-session design pays a stack and a scheduler entry per
//! idle session; here N runs to 4096 on a four-thread executor, so the
//! per-session cost is one timer-wheel entry plus one queued task. The
//! measured quantity is the full park→wake→complete round trip for the
//! whole fleet under a manually advanced clock (no real sleeping — the
//! bench measures bookkeeping, not timers firing at wall-clock pace).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use medsen_runtime::{Clock, Runtime};
use std::hint::black_box;
use std::time::Duration;

const POOL_THREADS: usize = 4;

/// Park `sessions` tasks on the timer wheel, release them with one manual
/// advance, and wait for every task to finish.
fn park_and_wake(sessions: usize) {
    let runtime = Runtime::new(POOL_THREADS, Clock::Manual);
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let timer = runtime.timer().clone();
            runtime.spawn(async move {
                // Spread deadlines over 32 slots so the wheel does real
                // ordering work instead of draining one slot.
                timer
                    .sleep(Duration::from_millis(1 + (i % 32) as u64))
                    .await;
                i
            })
        })
        .collect();
    while runtime.timer().pending() < sessions {
        std::thread::yield_now();
    }
    runtime.timer().advance(Duration::from_millis(33));
    let mut total = 0usize;
    for handle in handles {
        total += handle.join();
    }
    black_box(total);
    runtime.shutdown();
}

/// Fleet park/wake round trips per second, by fleet size.
fn idle_session_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("idle_sessions");
    for sessions in [256usize, 1024, 4096] {
        group.throughput(Throughput::Elements(sessions as u64));
        group.bench_with_input(
            BenchmarkId::new("park_wake_join", sessions),
            &sessions,
            |b, &sessions| b.iter(|| park_and_wake(black_box(sessions))),
        );
    }
    group.finish();
}

criterion_group!(benches, idle_session_scaling);
criterion_main!(benches);
