//! Supports the Sec. IV-A claim that the in-sensor cipher "does not infer
//! any noticeable encryption computation overhead or delay": rendering an
//! acquisition under the full cipher costs essentially the same as a
//! plaintext acquisition, and key generation + decryption are trivial.

use criterion::{criterion_group, criterion_main, Criterion};
use medsen_microfluidics::{ChannelGeometry, ParticleKind, PeristalticPump, TransportSimulator};
use medsen_sensor::{Controller, ControllerConfig, EncryptedAcquisition, ReportedPeak};
use medsen_units::Seconds;
use std::hint::black_box;

fn acquisition(encrypted: bool, c: &mut Criterion, name: &str) {
    let duration = Seconds::new(10.0);
    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        1,
    );
    let events = sim.run_exact_count(ParticleKind::Bead78, 20, duration);
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut acq = EncryptedAcquisition::paper_default(2);
            let mut controller =
                Controller::new(*acq.array(), ControllerConfig::paper_default(), 2);
            let schedule = if encrypted {
                controller.generate_schedule(duration).clone()
            } else {
                controller.plaintext_schedule().clone()
            };
            acq.run(black_box(&events), &schedule, duration)
        });
    });
}

fn encrypted_acquisition(c: &mut Criterion) {
    acquisition(true, c, "acquisition_full_cipher_10s");
}

fn plaintext_acquisition(c: &mut Criterion) {
    acquisition(false, c, "acquisition_plaintext_10s");
}

fn decryption(c: &mut Criterion) {
    let mut controller = Controller::new(
        *EncryptedAcquisition::paper_default(3).array(),
        ControllerConfig::paper_default(),
        3,
    );
    controller.generate_schedule(Seconds::new(60.0));
    let peaks: Vec<ReportedPeak> = (0..1000)
        .map(|i| ReportedPeak {
            time_s: i as f64 * 0.06,
            amplitude: 0.005,
            width_s: 0.01,
        })
        .collect();
    c.bench_function("decrypt_1000_peaks", |b| {
        b.iter(|| controller.decryptor().decrypt(black_box(&peaks)).rounded());
    });
}

criterion_group!(
    benches,
    plaintext_acquisition,
    encrypted_acquisition,
    decryption
);
criterion_main!(benches);
