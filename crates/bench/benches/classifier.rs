//! Benchmarks the Fig. 16 particle classifier: training and per-peak
//! prediction throughput (the server classifies every peak of an
//! authentication run).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use medsen_dsp::classify::Classifier;
use medsen_dsp::features::FeatureVector;
use std::hint::black_box;

fn cluster(center: &[f64], spread: f64, n: usize) -> Vec<FeatureVector> {
    (0..n)
        .map(|i| FeatureVector {
            index: i,
            amplitudes: center
                .iter()
                .enumerate()
                .map(|(d, &c)| {
                    let wiggle = ((i * 31 + d * 17) % 13) as f64 / 13.0 - 0.5;
                    c * (1.0 + spread * wiggle)
                })
                .collect(),
        })
        .collect()
}

fn training_data() -> Vec<(&'static str, Vec<FeatureVector>)> {
    vec![
        ("3.58um bead", cluster(&[0.004; 8], 0.1, 200)),
        ("7.8um bead", cluster(&[0.016; 8], 0.1, 200)),
        (
            "red blood cell",
            cluster(
                &[0.008, 0.007, 0.006, 0.005, 0.005, 0.004, 0.003, 0.0025],
                0.2,
                200,
            ),
        ),
    ]
}

fn train(c: &mut Criterion) {
    let data = training_data();
    c.bench_function("classifier_train_600", |b| {
        b.iter(|| Classifier::train(black_box(&data)).expect("valid data"));
    });
}

fn predict(c: &mut Criterion) {
    let data = training_data();
    let clf = Classifier::train(&data).expect("valid data");
    let queries = cluster(&[0.005; 8], 0.3, 1000);
    let mut group = c.benchmark_group("classifier_predict");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("predict_1000_peaks", |b| {
        b.iter(|| {
            let mut bead_count = 0usize;
            for q in &queries {
                if clf
                    .predict(black_box(q))
                    .expect("dims match")
                    .contains("bead")
                {
                    bead_count += 1;
                }
            }
            bead_count
        });
    });
    group.finish();
}

criterion_group!(benches, train, predict);
criterion_main!(benches);
