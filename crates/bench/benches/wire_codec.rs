//! The wire codec alone: encode/decode cost per message, binary vs
//! JSON, over the deterministic golden corpus (the same fixtures the
//! byte-exact golden-frame tests pin).
//!
//! This isolates what `gateway_throughput`'s json/binary delta buys:
//! the end-to-end sweep includes queueing and analysis, while these
//! numbers are the codec in a tight loop. Throughput is bytes of
//! encoded output, so the binary series also shows the size win, not
//! just the cycles win. A final group prices the frame primitives
//! (CRC-32 and framing) that both formats share.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use medsen_cloud::wire::{
    decode_request, decode_response, encode_request, encode_response, golden,
};
use medsen_wire::WireFormat;
use std::hint::black_box;

const FORMATS: [WireFormat; 2] = [WireFormat::Json, WireFormat::Binary];

/// Encode every corpus request, per format.
fn encode_requests(c: &mut Criterion) {
    let corpus = golden::requests();
    let mut group = c.benchmark_group("wire_codec_encode_requests");
    for format in FORMATS {
        let bytes: usize = corpus
            .iter()
            .map(|(_, r)| encode_request(format, r).expect("encodes").len())
            .sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_function(BenchmarkId::from_parameter(format), |b| {
            b.iter(|| {
                for (_, request) in &corpus {
                    black_box(encode_request(format, black_box(request)).expect("encodes"));
                }
            });
        });
    }
    group.finish();
}

/// Decode every corpus request from its pre-encoded frame, per format.
fn decode_requests(c: &mut Criterion) {
    let corpus = golden::requests();
    let mut group = c.benchmark_group("wire_codec_decode_requests");
    for format in FORMATS {
        let frames: Vec<Vec<u8>> = corpus
            .iter()
            .map(|(_, r)| encode_request(format, r).expect("encodes"))
            .collect();
        let bytes: usize = frames.iter().map(Vec::len).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_function(BenchmarkId::from_parameter(format), |b| {
            b.iter(|| {
                for frame in &frames {
                    black_box(decode_request(format, black_box(frame)).expect("decodes"));
                }
            });
        });
    }
    group.finish();
}

/// Encode every corpus response, per format.
fn encode_responses(c: &mut Criterion) {
    let corpus = golden::responses();
    let mut group = c.benchmark_group("wire_codec_encode_responses");
    for format in FORMATS {
        let bytes: usize = corpus
            .iter()
            .map(|(_, r)| encode_response(format, r).expect("encodes").len())
            .sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_function(BenchmarkId::from_parameter(format), |b| {
            b.iter(|| {
                for (_, response) in &corpus {
                    black_box(encode_response(format, black_box(response)).expect("encodes"));
                }
            });
        });
    }
    group.finish();
}

/// Decode every corpus response from its pre-encoded frame, per format.
fn decode_responses(c: &mut Criterion) {
    let corpus = golden::responses();
    let mut group = c.benchmark_group("wire_codec_decode_responses");
    for format in FORMATS {
        let frames: Vec<Vec<u8>> = corpus
            .iter()
            .map(|(_, r)| encode_response(format, r).expect("encodes"))
            .collect();
        let bytes: usize = frames.iter().map(Vec::len).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_function(BenchmarkId::from_parameter(format), |b| {
            b.iter(|| {
                for frame in &frames {
                    black_box(decode_response(format, black_box(frame)).expect("decodes"));
                }
            });
        });
    }
    group.finish();
}

/// The shared frame primitives underneath both formats: CRC-32 over a
/// payload-sized buffer, and full frame round-trips.
fn frame_primitives(c: &mut Criterion) {
    let payload: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 24) as u8)
        .collect();

    let mut group = c.benchmark_group("wire_frame_primitives");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("crc32_4k", |b| {
        b.iter(|| black_box(medsen_wire::crc32(black_box(&payload))));
    });
    group.bench_function("frame_roundtrip_4k", |b| {
        b.iter(|| {
            let framed = medsen_wire::frame_to_vec(0x21, black_box(&payload));
            let (kind, payload) = medsen_wire::decode_frame(&framed).expect("decodes");
            black_box((kind, payload.len()));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    encode_requests,
    decode_requests,
    encode_responses,
    decode_responses,
    frame_primitives
);
criterion_main!(benches);
