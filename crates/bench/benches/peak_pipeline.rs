//! Criterion bench regenerating Fig. 14's computer line by direct
//! measurement: the detrend + threshold-detection pipeline at the paper's
//! three sample sizes (240 607 / 481 214 / 962 428).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use medsen_bench::experiments::fig14::benchmark_signal;
use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
use medsen_dsp::peaks::ThresholdDetector;
use medsen_phone::profile::PAPER_FIG14_SAMPLE_SIZES;
use std::hint::black_box;

fn peak_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("peak_pipeline");
    group.sample_size(10);
    let detector = ThresholdDetector::paper_default();
    let config = DetrendConfig::paper_default();
    for &n in &PAPER_FIG14_SAMPLE_SIZES {
        let signal = benchmark_signal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, signal| {
            b.iter(|| {
                let depth = detrend_segmented(black_box(signal), &config);
                detector.count(&depth, 450.0)
            });
        });
    }
    group.finish();
}

fn detrend_only(c: &mut Criterion) {
    let signal = benchmark_signal(PAPER_FIG14_SAMPLE_SIZES[0]);
    let config = DetrendConfig::paper_default();
    c.bench_function("detrend_only_240k", |b| {
        b.iter(|| detrend_segmented(black_box(&signal), &config));
    });
}

fn detect_only(c: &mut Criterion) {
    let signal = benchmark_signal(PAPER_FIG14_SAMPLE_SIZES[0]);
    let depth = detrend_segmented(&signal, &DetrendConfig::paper_default());
    let detector = ThresholdDetector::paper_default();
    c.bench_function("detect_only_240k", |b| {
        b.iter(|| detector.count(black_box(&depth), 450.0));
    });
}

criterion_group!(benches, peak_pipeline, detrend_only, detect_only);
criterion_main!(benches);
