//! Benchmarks the replication tax: enrollments/second through a durable
//! single node versus a warm-standby pair, where every journal append
//! synchronously ships its WAL frame to the standby before the write is
//! acknowledged.
//!
//! The sizing question: what does "a primary crash loses zero
//! acknowledged writes" cost on top of "a crash loses zero flushed
//! writes"? A second group prices the partition path — lag accrued while
//! the link is down, drained by a snapshot catch-up — against the same
//! writes shipped frame-by-frame over a healthy link.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use medsen_cloud::auth::BeadSignature;
use medsen_cloud::service::{CloudService, Request, Response};
use medsen_cloud::{FlushPolicy, ReplicatedCloud, StorageConfig};
use medsen_microfluidics::ParticleKind;
use std::path::PathBuf;
use std::sync::Arc;

const SHARDS: usize = 4;
const BATCH: usize = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("medsen-bench-replica-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable(dir: &PathBuf) -> CloudService {
    CloudService::with_storage_config(
        StorageConfig::new(dir).flush(FlushPolicy::EveryN(8)),
        SHARDS,
    )
    .expect("storage opens")
}

fn paired(tag: &str) -> (Arc<ReplicatedCloud>, [PathBuf; 2]) {
    let dirs = [temp_dir(&format!("{tag}-p")), temp_dir(&format!("{tag}-s"))];
    let [primary, standby] = dirs.each_ref().map(durable);
    (primary.with_replication(standby).expect("pair"), dirs)
}

fn enroll(service: &CloudService, identifier: String) {
    let response = service.handle_shared(Request::Enroll {
        identifier,
        signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 10)]),
    });
    assert_eq!(response, Response::Enrolled);
}

/// Enroll throughput: durable single node vs the same node paired with a
/// warm standby (every write ships before it acks).
fn ship_tax(c: &mut Criterion) {
    let mut group = c.benchmark_group("replica_ship");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function(BenchmarkId::new("enroll_batch64", "single"), |b| {
        let dir = temp_dir("single");
        let service = durable(&dir);
        let mut round = 0u64;
        b.iter(|| {
            for i in 0..BATCH {
                enroll(&service, format!("clinic-user-{round}-{i}"));
            }
            round += 1;
        });
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.bench_function(BenchmarkId::new("enroll_batch64", "paired"), |b| {
        let (pair, dirs) = paired("paired");
        let mut round = 0u64;
        b.iter(|| {
            let serving = pair.serving();
            for i in 0..BATCH {
                enroll(&serving, format!("clinic-user-{round}-{i}"));
            }
            round += 1;
        });
        assert_eq!(pair.status().shipper.lag_bytes, 0, "pair fell behind");
        drop(pair);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    });
    group.finish();
}

/// The partition path: each iteration drops the link, writes a batch
/// (lag grows), heals, and drains the lag with a snapshot catch-up. The
/// "streamed" baseline writes the same batch over a healthy link, so the
/// difference prices catch-up against frame-by-frame shipping.
fn catch_up_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("replica_catch_up");
    group.throughput(Throughput::Elements(BATCH as u64));
    for partitioned in [false, true] {
        let tag = if partitioned {
            "partition-snapshot"
        } else {
            "streamed"
        };
        group.bench_with_input(
            BenchmarkId::new("batch64", tag),
            &partitioned,
            |b, &partitioned| {
                let (pair, dirs) = paired(tag);
                let mut round = 0u64;
                b.iter(|| {
                    if partitioned {
                        pair.partition_link();
                    }
                    let serving = pair.serving();
                    for i in 0..BATCH {
                        enroll(&serving, format!("clinic-user-{round}-{i}"));
                    }
                    if partitioned {
                        pair.heal_link();
                        pair.catch_up().expect("snapshot transfer");
                    }
                    round += 1;
                });
                assert_eq!(pair.status().shipper.lag_bytes, 0, "lag not drained");
                drop(pair);
                for dir in dirs {
                    let _ = std::fs::remove_dir_all(&dir);
                }
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ship_tax, catch_up_cycle);
criterion_main!(benches);
