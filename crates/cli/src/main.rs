//! Thin binary shim over [`medsen_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    std::process::exit(medsen_cli::run(&args, &mut stdout));
}
