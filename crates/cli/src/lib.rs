//! Implementation of the `medsen-cli` command set.
//!
//! Each subcommand is a pure function from parsed arguments to an exit
//! status plus output written to the supplied writer, so the integration
//! tests can drive commands without spawning processes and the binary stays
//! a thin shim.

pub mod commands;

use std::io::Write;

/// Command outcome: process exit code.
pub type ExitCode = i32;

/// Top-level usage text.
pub const USAGE: &str = "\
medsen-cli — secure point-of-care diagnostics (MedSen, DSN 2016 reproduction)

USAGE:
    medsen-cli <COMMAND> [ARGS]

COMMANDS:
    session   [--auth] [--seed N] [--duration SECS]   run one diagnostic session
    enroll    <user>...                                enroll users, print assignments
    synth     <out.csv> [--seed N] [--particles N]     synthesize a demo trace CSV
    analyze   <trace.csv>                              cloud-side peak analysis of a CSV
    attack    <trace.csv>                              run the Sec. IV-A attacks on a CSV
    keylen    <cells> <electrodes> <gainbits> <flowbits>   Eq. 2 key length
    capability [--seed N] [--secret N] [--duration S]  practitioner key-sharing demo
    gateway   [--sessions N] [--workers N] [--queue N] [--flaky RATE] [--seed N]
              [--runtime threads|async] [--shards N]
              [--data-dir PATH] [--flush write|every:N|interval:MS]
              [--telemetry text|json|off] [--replicas]
              [--uplink retry|fountain] [--symbol-budget FACTOR]
              [--wire binary|json]
                                                       serve a clinic fleet concurrently;
                                                       with --data-dir, persist through a
                                                       per-shard WAL and recover on restart;
                                                       --replicas pairs the durable service
                                                       with a warm standby (WAL shipping to
                                                       <data-dir>-standby) and routes through
                                                       the pair; --telemetry dumps the unified
                                                       metric exposition (text) or the span
                                                       ring (json) after the fleet drains;
                                                       --uplink fountain streams one-way
                                                       (ACK-free) fountain symbols instead of
                                                       retrying, with --symbol-budget coded
                                                       symbols per source symbol (1.0..=64.0);
                                                       --wire selects the request encoding
                                                       (compact binary by default, json for
                                                       debugging and legacy clients)
    wire-golden <dir> [--write]                        verify the checked-in golden wire frames
                                                       against the fixture corpus (byte-exact
                                                       binary + JSON equivalence); --write
                                                       regenerates them
    replica-status [--shards N] [--writes N] [--kill]  run a demo replicated pair, print its
                                                       shipping/lag/epoch status; with --kill,
                                                       crash the primary mid-run and show the
                                                       fenced failover
    telemetry [--requests N] [--runtime threads|async] drive a small workload and pretty-print
                                                       the telemetry snapshot (instruments +
                                                       slowest requests with stage breakdowns)
    soak      [--quick]                                 run the reconciling overload soak: a
                                                       scaled-clock storm (≥10⁶ attempts at
                                                       full size) through queue shed, rate
                                                       limiting, fountain eviction, and one
                                                       failover, then check every exposition
                                                       overload counter against the driver's
                                                       ledger; exits non-zero on any
                                                       reconciliation violation; --quick runs
                                                       the seconds-scale CI preset
    audit     [--seed N] [--quick]                     run the adversarial self-audit battery
                                                       (keying entropy vs Eq. 2, distinguishing
                                                       attack, auth-compare timing, keyspace
                                                       collisions) and print the scorecard;
                                                       exits non-zero if any section fails;
                                                       --quick runs the ~10x smaller preset
    help                                               show this text
";

/// Dispatches a full argument vector (excluding `argv[0]`).
pub fn run(args: &[String], out: &mut dyn Write) -> ExitCode {
    let Some((command, rest)) = args.split_first() else {
        let _ = writeln!(out, "{USAGE}");
        return 2;
    };
    let result = match command.as_str() {
        "session" => commands::session(rest, out),
        "enroll" => commands::enroll(rest, out),
        "synth" => commands::synth(rest, out),
        "analyze" => commands::analyze(rest, out),
        "attack" => commands::attack(rest, out),
        "keylen" => commands::keylen(rest, out),
        "capability" => commands::capability(rest, out),
        "gateway" => commands::gateway(rest, out),
        "replica-status" => commands::replica_status(rest, out),
        "telemetry" => commands::telemetry(rest, out),
        "audit" => commands::audit(rest, out),
        "soak" => commands::soak(rest, out),
        "wire-golden" => commands::wire_golden(rest, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => 0,
        Err(message) => {
            let _ = writeln!(out, "error: {message}");
            1
        }
    }
}

/// Parses `--flag value` style options out of an argument list, returning
/// `(positional, lookup)` where `lookup(name)` yields the last value given.
pub(crate) fn split_options(
    args: &[String],
) -> Result<(Vec<String>, std::collections::BTreeMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut options = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if name == "auth"
                || name == "full"
                || name == "replicas"
                || name == "kill"
                || name == "quick"
                || name == "write"
            {
                options.insert(name.to_owned(), "true".to_owned());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} needs a value"))?;
                options.insert(name.to_owned(), value.clone());
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, options))
}

pub(crate) fn parse<T: std::str::FromStr>(
    options: &std::collections::BTreeMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match options.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("option --{name} got unparsable value `{raw}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> (ExitCode, String) {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let mut buf = Vec::new();
        let code = run(&args, &mut buf);
        (code, String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, text) = run_to_string(&[]);
        assert_eq!(code, 2);
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn help_succeeds() {
        let (code, text) = run_to_string(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("session"));
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        let (code, text) = run_to_string(&["frobnicate"]);
        assert_eq!(code, 1);
        assert!(text.contains("unknown command"));
    }

    #[test]
    fn replica_status_reports_a_healthy_pair() {
        let (code, text) = run_to_string(&["replica-status", "--shards", "2", "--writes", "4"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("epoch 1 | promoted no"), "{text}");
        assert!(text.contains("lag 0 B"), "{text}");
        assert!(text.contains("attached"), "{text}");
    }

    #[test]
    fn gateway_replicas_requires_a_data_dir() {
        let (code, text) = run_to_string(&["gateway", "--replicas"]);
        assert_eq!(code, 1);
        assert!(text.contains("--replicas needs --data-dir"), "{text}");
    }

    #[test]
    fn gateway_uplink_validates_its_arguments() {
        let (code, text) = run_to_string(&["gateway", "--uplink", "carrier-pigeon"]);
        assert_eq!(code, 1);
        assert!(text.contains("expected `retry` or `fountain`"), "{text}");

        let (code, text) = run_to_string(&["gateway", "--symbol-budget", "4"]);
        assert_eq!(code, 1);
        assert!(
            text.contains("--symbol-budget needs --uplink fountain"),
            "{text}"
        );

        let (code, text) =
            run_to_string(&["gateway", "--uplink", "fountain", "--symbol-budget", "900"]);
        assert_eq!(code, 1);
        assert!(
            text.contains("--symbol-budget must be in 1.0..=64.0"),
            "{text}"
        );
    }

    #[test]
    fn gateway_fountain_uplink_serves_the_fleet_one_way() {
        let (code, text) = run_to_string(&[
            "gateway",
            "--sessions",
            "4",
            "--workers",
            "2",
            "--flaky",
            "0.3",
            "--uplink",
            "fountain",
            "--telemetry",
            "text",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("fountain uplink"), "{text}");
        assert!(text.contains("one-way stream:"), "{text}");
        assert!(text.contains("0 gave up"), "{text}");
        assert!(text.contains("fountain.sessions_completed 4"), "{text}");
    }

    #[test]
    fn audit_prints_a_passing_scorecard() {
        let (code, text) = run_to_string(&["audit", "--quick", "--seed", "9"]);
        assert_eq!(code, 0, "{text}");
        for needle in [
            "seed 9",
            "[1/4] keying entropy vs Eq. 2",
            "[2/4] distinguishing attack",
            "[3/4] auth compare timing",
            "[4/4] keyspace collisions",
            "overall: PASS",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn soak_quick_reconciles_and_prints_the_report() {
        let (code, text) = run_to_string(&["soak", "--quick"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("reconciled exactly"), "{text}");
        assert!(text.contains("ledger"), "{text}");
        assert!(text.contains("sampler"), "{text}");
    }

    #[test]
    fn soak_rejects_stray_arguments() {
        let (code, text) = run_to_string(&["soak", "now"]);
        assert_eq!(code, 1);
        assert!(text.contains("unexpected argument"), "{text}");
    }

    #[test]
    fn audit_rejects_stray_arguments() {
        let (code, text) = run_to_string(&["audit", "now"]);
        assert_eq!(code, 1);
        assert!(text.contains("unexpected argument"), "{text}");
    }

    #[test]
    fn option_splitting() {
        let args: Vec<String> = ["a", "--seed", "7", "b", "--auth"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let (positional, options) = split_options(&args).unwrap();
        assert_eq!(positional, vec!["a", "b"]);
        assert_eq!(options.get("seed").map(String::as_str), Some("7"));
        assert_eq!(options.get("auth").map(String::as_str), Some("true"));
    }

    #[test]
    fn option_missing_value_errors() {
        let args: Vec<String> = vec!["--seed".to_owned()];
        assert!(split_options(&args).is_err());
    }

    #[test]
    fn parse_falls_back_to_default() {
        let options = std::collections::BTreeMap::new();
        assert_eq!(parse(&options, "seed", 42u64).unwrap(), 42);
    }
}
