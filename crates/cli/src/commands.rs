//! The `medsen-cli` subcommands.

use crate::{parse, split_options};
use medsen_cloud::{
    AmplitudeGroupingAttack, AnalysisServer, BurstClusteringAttack, WidthGroupingAttack,
};
use medsen_core::{CytoPassword, DiagnosticRule, PasswordAlphabet, Pipeline, PipelineConfig};
use medsen_microfluidics::{ChannelGeometry, ParticleKind, PeristalticPump, TransportSimulator};
use medsen_phone::{trace_from_csv, trace_to_csv};
use medsen_sensor::{ideal_key_length_bits, Controller, ControllerConfig, EncryptedAcquisition};
use medsen_units::{Concentration, Seconds};
use std::io::Write;

type Out<'a> = &'a mut dyn Write;

fn wl(out: Out, text: impl AsRef<str>) {
    let _ = writeln!(out, "{}", text.as_ref());
}

/// `session`: run one full diagnostic session.
pub fn session(args: &[String], out: Out) -> Result<(), String> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]));
    }
    let seed: u64 = parse(&options, "seed", 2024)?;
    let duration: f64 = parse(&options, "duration", 30.0)?;
    if !(1.0..=600.0).contains(&duration) {
        return Err("--duration must be in 1..=600 seconds".into());
    }
    let auth = options.contains_key("auth");

    if auth {
        let alphabet = PasswordAlphabet::paper_default();
        let config = PipelineConfig {
            duration: Seconds::new(duration),
            ..PipelineConfig::auth_default(seed)
        };
        let mut pipeline = Pipeline::new(config, alphabet.clone(), DiagnosticRule::cd4_staging());
        wl(out, "calibrating classifier...");
        pipeline.calibrate_classifier();
        let volume = pipeline.processed_volume();
        let password = CytoPassword::new(&alphabet, vec![2, 6]).expect("valid levels");
        pipeline
            .auth_mut()
            .enroll("cli-user", password.expected_signature(&alphabet, volume));
        let report = pipeline.run_session("cli-user", &password);
        wl(
            out,
            format!("measured signature : {:?}", report.measured_signature),
        );
        wl(out, format!("auth decision      : {:?}", report.auth));
    } else {
        let alphabet = PasswordAlphabet::new(
            vec![ParticleKind::Bead358, ParticleKind::Bead78],
            Concentration::new(100.0),
            8,
        )
        .expect("valid alphabet");
        let password = CytoPassword::new(&alphabet, vec![1, 1]).expect("valid levels");
        let config = PipelineConfig {
            duration: Seconds::new(duration),
            ..PipelineConfig::paper_default(seed)
        };
        let mut pipeline = Pipeline::new(config, alphabet, DiagnosticRule::cd4_staging());
        let report = pipeline.run_session("cli-user", &password);
        wl(
            out,
            format!(
                "true particles     : {} cells + {} beads",
                report.true_cells, report.true_beads
            ),
        );
        wl(
            out,
            format!("cloud saw          : {} peaks", report.peak_count),
        );
        wl(
            out,
            format!(
                "decoded            : {:?} total, {:?} cells",
                report.decoded_total, report.decoded_cells
            ),
        );
        wl(out, format!("verdict            : {:?}", report.verdict));
        wl(
            out,
            format!("compression        : {:.2}x", report.compression.ratio()),
        );
        wl(
            out,
            format!(
                "post-acquisition   : {:.3} s",
                report.timing.post_acquisition_s()
            ),
        );
    }
    Ok(())
}

/// `enroll`: assign collision-free passwords to users.
pub fn enroll(args: &[String], out: Out) -> Result<(), String> {
    let (users, _) = split_options(args)?;
    if users.is_empty() {
        return Err("enroll needs at least one user name".into());
    }
    let alphabet = PasswordAlphabet::paper_default();
    let mut registry = medsen_core::UserRegistry::new(alphabet.clone(), 2);
    wl(
        out,
        format!(
            "password space: {} identifiers, {:.1} bits",
            alphabet.password_space(),
            alphabet.entropy_bits()
        ),
    );
    for user in &users {
        let pw = registry.enroll(user.clone()).map_err(|e| e.to_string())?;
        wl(out, format!("enrolled {user}: levels {:?}", pw.levels()));
    }
    wl(out, format!("capacity left: {}", registry.capacity_left()));
    Ok(())
}

/// `synth`: write a demo encrypted trace CSV.
pub fn synth(args: &[String], out: Out) -> Result<(), String> {
    let (positional, options) = split_options(args)?;
    let [path] = positional.as_slice() else {
        return Err("synth needs exactly one output path".into());
    };
    let seed: u64 = parse(&options, "seed", 7)?;
    let particles: usize = parse(&options, "particles", 12)?;
    if particles == 0 || particles > 200 {
        return Err("--particles must be in 1..=200".into());
    }
    let duration = Seconds::new(2.0 + particles as f64 * 1.5);
    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        seed,
    );
    let events = sim.run_exact_count(ParticleKind::Bead78, particles, duration);
    let mut acq = EncryptedAcquisition::paper_default(seed);
    let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), seed);
    let schedule = controller.generate_schedule(duration).clone();
    let acquired = acq.run(&events, &schedule, duration);
    let csv = trace_to_csv(&acquired.trace);
    std::fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
    wl(
        out,
        format!(
            "wrote {} ({} samples/channel, {} true particles, {} scheduled dips)",
            path,
            acquired.trace.len(),
            particles,
            acquired.scheduled_dips
        ),
    );
    Ok(())
}

fn load_trace(path: &str) -> Result<medsen_impedance::SignalTrace, String> {
    let csv = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    trace_from_csv(&csv).map_err(|e| format!("{path}: {e}"))
}

/// `analyze`: run the cloud pipeline on a trace CSV.
pub fn analyze(args: &[String], out: Out) -> Result<(), String> {
    let (positional, _) = split_options(args)?;
    let [path] = positional.as_slice() else {
        return Err("analyze needs exactly one CSV path".into());
    };
    let trace = load_trace(path)?;
    let report = AnalysisServer::paper_default().analyze(&trace);
    wl(
        out,
        format!(
            "trace: {} channels x {} samples, {:.1} s",
            trace.channels().len(),
            trace.len(),
            report.duration_s
        ),
    );
    wl(
        out,
        format!("noise floor (sigma): {:.2e}", report.noise_sigma),
    );
    wl(out, format!("peaks: {}", report.peak_count()));
    for p in report.peaks.iter().take(20) {
        wl(
            out,
            format!(
                "  t={:.3}s amp={:.4} width={:.1}ms",
                p.time_s,
                p.amplitude,
                p.width_s * 1e3
            ),
        );
    }
    if report.peak_count() > 20 {
        wl(out, format!("  ... {} more", report.peak_count() - 20));
    }
    Ok(())
}

/// `attack`: run the three Sec. IV-A attacks on a trace CSV.
pub fn attack(args: &[String], out: Out) -> Result<(), String> {
    let (positional, _) = split_options(args)?;
    let [path] = positional.as_slice() else {
        return Err("attack needs exactly one CSV path".into());
    };
    let trace = load_trace(path)?;
    let report = AnalysisServer::paper_default().analyze(&trace);
    wl(out, format!("observed peaks: {}", report.peak_count()));
    let amp = AmplitudeGroupingAttack::paper_default().estimate(&report);
    let width = WidthGroupingAttack::paper_default().estimate(&report);
    let burst = BurstClusteringAttack::paper_default().estimate(&report);
    wl(
        out,
        format!(
            "amplitude-grouping estimate : {} cells",
            amp.estimated_cells
        ),
    );
    wl(
        out,
        format!(
            "width-grouping estimate     : {} cells",
            width.estimated_cells
        ),
    );
    wl(
        out,
        format!(
            "burst-clustering estimate   : {} cells",
            burst.estimated_cells
        ),
    );
    wl(
        out,
        "(only the key-holding controller can decrypt the true count)",
    );
    Ok(())
}

/// `capability`: demonstrate practitioner key sharing — derive, seal,
/// unseal, and decrypt with a shared secret.
pub fn capability(args: &[String], out: Out) -> Result<(), String> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]));
    }
    let seed: u64 = parse(&options, "seed", 99)?;
    let secret: u64 = parse(&options, "secret", 0x5EC2E7)?;
    let duration = Seconds::new(parse(&options, "duration", 20.0)?);

    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        seed,
    );
    let events = sim.run_exact_count(ParticleKind::Bead78, 12, duration);
    let mut acq = EncryptedAcquisition::paper_default(seed);
    let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), seed);
    let schedule = controller.generate_schedule(duration).clone();
    let acquired = acq.run(&events, &schedule, duration);
    let report = medsen_cloud::AnalysisServer::paper_default().analyze(&acquired.trace);

    let geometry = ChannelGeometry::paper_default();
    let v = PeristalticPump::paper_default().velocity_at(
        Seconds::ZERO,
        geometry.pore_width,
        geometry.pore_height,
    );
    let delay = Seconds::new(acq.array().span(&geometry).value() / (2.0 * v));
    let cap = medsen_core::sharing::DecryptionCapability::derive(&controller, delay);
    let sealed = medsen_core::sharing::SealedCapability::seal(&cap, secret, 1);
    wl(
        out,
        format!(
            "sealed capability: {} bytes (per-period multiplicities {:?})",
            sealed.len(),
            cap.multiplicities
        ),
    );
    let opened = sealed
        .unseal(secret)
        .map_err(|e| format!("unseal failed: {e}"))?;
    let decoded = opened.decrypt(&report.reported_peaks());
    wl(
        out,
        format!(
            "practitioner decrypts: {} particles (ground truth {})",
            decoded.rounded(),
            acquired.true_total()
        ),
    );
    match sealed.unseal(secret.wrapping_add(1)) {
        Err(e) => wl(out, format!("wrong secret: {e}")),
        Ok(_) => return Err("wrong secret must not unseal".into()),
    }
    Ok(())
}

/// `keylen`: Eq. 2.
pub fn keylen(args: &[String], out: Out) -> Result<(), String> {
    let (positional, _) = split_options(args)?;
    let values: Vec<u64> = positional
        .iter()
        .map(|a| a.parse().map_err(|_| format!("`{a}` is not a number")))
        .collect::<Result<_, _>>()?;
    let [cells, electrodes, gain_bits, flow_bits] = values.as_slice() else {
        return Err("keylen needs: <cells> <electrodes> <gainbits> <flowbits>".into());
    };
    let bits = ideal_key_length_bits(*cells, *electrodes, *gain_bits, *flow_bits);
    wl(out, format!(
        "L = {cells} x ({electrodes} + {electrodes}/2 x {gain_bits} + {flow_bits}) = {bits} bits ({:.3} MB)",
        bits as f64 / 8.0 / 1e6
    ));
    Ok(())
}

/// `gateway`: serve a simulated clinic fleet through the concurrent
/// ingestion gateway and print its metrics.
/// What `gateway --telemetry` emits after the fleet drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TelemetryMode {
    /// No span machinery at all (the default).
    Off,
    /// Print the `name value` text exposition.
    Text,
    /// Print the span ring as JSON lines.
    Json,
}

pub fn gateway(args: &[String], out: Out) -> Result<(), String> {
    use medsen_cloud::auth::{AuthDecision, BeadSignature};
    use medsen_cloud::service::{CloudService, Response};
    use medsen_dsp::classify::Classifier;
    use medsen_dsp::FeatureVector;
    use medsen_gateway::{
        Gateway, GatewayConfig, RuntimeKind, SessionConfig, ShedPolicy, TelemetryConfig,
    };
    use medsen_impedance::{PulseSpec, SignalTrace, TraceSynthesizer};

    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]));
    }
    for name in options.keys() {
        if ![
            "sessions",
            "workers",
            "queue",
            "flaky",
            "seed",
            "runtime",
            "shards",
            "data-dir",
            "flush",
            "telemetry",
            "replicas",
            "uplink",
            "symbol-budget",
            "wire",
        ]
        .contains(&name.as_str())
        {
            return Err(format!("unknown option --{name}"));
        }
    }
    let sessions: usize = parse(&options, "sessions", 16)?;
    let workers: usize = parse(&options, "workers", 4)?;
    let queue: usize = parse(&options, "queue", 8)?;
    let flaky: f64 = parse(&options, "flaky", 0.1)?;
    let seed: u64 = parse(&options, "seed", 7)?;
    let shards: usize = parse(&options, "shards", medsen_cloud::DEFAULT_SHARD_COUNT)?;
    let runtime: RuntimeKind = match options.get("runtime") {
        Some(value) => value.parse().map_err(|e| format!("--runtime: {e}"))?,
        None => RuntimeKind::default(),
    };
    // `off` keeps the span machinery out of the hot path entirely;
    // counters and the end-of-run metrics block are always on.
    let telemetry_mode = match options.get("telemetry").map(String::as_str) {
        None | Some("off") => TelemetryMode::Off,
        Some("text") => TelemetryMode::Text,
        Some("json") => TelemetryMode::Json,
        Some(other) => {
            return Err(format!(
                "--telemetry got `{other}` (expected `text`, `json`, or `off`)"
            ))
        }
    };
    // `--uplink fountain` runs the fleet in one-way (data diode) mode:
    // no retries, no ACKs, budgeted fountain symbols instead.
    let fountain_uplink = match options.get("uplink").map(String::as_str) {
        None | Some("retry") => false,
        Some("fountain") => true,
        Some(other) => {
            return Err(format!(
                "--uplink got `{other}` (expected `retry` or `fountain`)"
            ))
        }
    };
    // `--wire json` switches the fleet to the JSON debug encoding; the
    // default is the compact binary wire format.
    let wire_format: medsen::wire::WireFormat = match options.get("wire") {
        Some(value) => value.parse().map_err(|e| format!("--wire: {e}"))?,
        None => medsen::wire::WireFormat::default(),
    };
    let budget_factor: Option<f64> = match options.get("symbol-budget") {
        Some(value) => {
            if !fountain_uplink {
                return Err("--symbol-budget needs --uplink fountain".into());
            }
            let factor: f64 = value.parse().map_err(|e| format!("--symbol-budget: {e}"))?;
            if !(1.0..=64.0).contains(&factor) {
                return Err("--symbol-budget must be in 1.0..=64.0".into());
            }
            Some(factor)
        }
        None => None,
    };
    let data_dir = options.get("data-dir").cloned();
    let replicas = options.contains_key("replicas");
    if replicas && data_dir.is_none() {
        return Err("--replicas needs --data-dir (replication pairs two durable services)".into());
    }
    let flush: medsen_cloud::FlushPolicy = match options.get("flush") {
        Some(value) => {
            if data_dir.is_none() {
                return Err("--flush needs --data-dir (a memory-only service has no WAL)".into());
            }
            value.parse().map_err(|e| format!("--flush: {e}"))?
        }
        None => medsen_cloud::FlushPolicy::default(),
    };
    if !(1..=512).contains(&sessions) {
        return Err("--sessions must be in 1..=512".into());
    }
    if !(1..=64).contains(&workers) {
        return Err("--workers must be in 1..=64".into());
    }
    if queue == 0 {
        return Err("--queue must be positive".into());
    }
    if !(0.0..=0.8).contains(&flaky) {
        return Err("--flaky must be in 0.0..=0.8".into());
    }
    if !(1..=64).contains(&shards) {
        return Err("--shards must be in 1..=64".into());
    }

    // Clinic users with disjoint ±30% bead-count bands.
    let users: [(&str, u64); 3] = [("ana", 3), ("bo", 6), ("cleo", 12)];

    fn fleet_trace(jitter_ms: u64, pulses: u64) -> SignalTrace {
        let mut synth = TraceSynthesizer::clean(1);
        let jitter = jitter_ms as f64 * 1e-3;
        let specs: Vec<PulseSpec> = (0..pulses)
            .map(|j| {
                PulseSpec::unipolar(
                    Seconds::new(0.5 + jitter + j as f64 * 0.25),
                    Seconds::new(0.02),
                    0.01,
                )
            })
            .collect();
        synth.render(
            &specs,
            Seconds::new(0.5 + jitter + pulses as f64 * 0.25 + 0.5),
        )
    }

    // Train a one-class bead classifier from the pipeline's own features.
    let mut service = match &data_dir {
        Some(dir) => CloudService::with_storage(dir, shards, flush)
            .map_err(|e| format!("--data-dir {dir}: {e}"))?,
        None => CloudService::with_shards(shards),
    };
    if let Some(dir) = &data_dir {
        let stats = service.storage_stats().expect("durable service has stats");
        wl(out, format!(
            "durable store: {dir} (flush policy {flush}); recovered {} entries, {} snapshot(s), truncated {} B",
            stats.recovered_entries, stats.recovered_snapshots, stats.recovered_truncated_bytes
        ));
    }
    let reference = medsen_cloud::AnalysisServer::paper_default().analyze(&fleet_trace(999, 8));
    let vectors: Vec<FeatureVector> = reference
        .peaks
        .iter()
        .map(|p| FeatureVector {
            index: 0,
            amplitudes: p.features.clone(),
        })
        .collect();
    let classifier = Classifier::train(&[(ParticleKind::Bead358.label(), vectors)])
        .map_err(|e| format!("classifier training failed: {e}"))?;
    service.install_classifier(classifier.clone());

    let gateway_config = GatewayConfig {
        queue_capacity: queue,
        workers,
        shed_policy: ShedPolicy::Reject {
            retry_after: Seconds::from_millis(50.0),
        },
    };
    let telemetry_config = if telemetry_mode == TelemetryMode::Off {
        TelemetryConfig::disabled()
    } else {
        TelemetryConfig::default()
    };
    // With --replicas, pair the primary with a warm standby persisting
    // next to it; the gateway then routes through the pair so a primary
    // loss would fail the fleet over mid-run.
    let (gateway, pair) = if replicas {
        let dir = data_dir.as_deref().expect("checked with --replicas");
        let standby_dir = format!("{dir}-standby");
        let mut standby = CloudService::with_storage(&standby_dir, shards, flush)
            .map_err(|e| format!("standby {standby_dir}: {e}"))?;
        standby.install_classifier(classifier);
        let pair = service
            .with_replication(standby)
            .map_err(|e| format!("replication pairing failed: {e}"))?;
        wl(
            out,
            format!(
                "replication: warm standby at {standby_dir}, epoch {}",
                pair.epoch()
            ),
        );
        let gateway = Gateway::with_replicas(
            std::sync::Arc::clone(&pair),
            gateway_config,
            runtime,
            telemetry_config,
        );
        (gateway, Some(pair))
    } else {
        (
            Gateway::with_telemetry(service, gateway_config, runtime, telemetry_config),
            None,
        )
    };

    // Enroll through the gateway itself.
    {
        let mut admin = gateway.connect(SessionConfig::reliable().with_wire(wire_format));
        for (user, count) in users {
            let response = admin
                .enroll(
                    user,
                    BeadSignature::from_counts(&[(ParticleKind::Bead358, count)]),
                )
                .map_err(|e| format!("enroll failed: {e}"))?;
            if response != Response::Enrolled {
                return Err(format!("unexpected enroll response: {response:?}"));
            }
        }
        admin
            .close()
            .map_err(|e| format!("admin close failed: {e}"))?;
    }

    // Connect deterministically, then run all sessions concurrently. In
    // fountain mode the budget defaults to the observed drop rate (plus
    // LT margin); `--symbol-budget` overrides the factor directly.
    let session_config = |i: usize| {
        let seed = seed.wrapping_add(i as u64);
        if fountain_uplink {
            let budget = match budget_factor {
                Some(factor) => medsen_phone::SymbolBudget { factor, floor: 24 },
                None => medsen_phone::SymbolBudget::for_drop_rate(flaky),
            };
            SessionConfig::fountain(flaky, seed, budget).with_wire(wire_format)
        } else {
            SessionConfig::flaky(flaky, seed).with_wire(wire_format)
        }
    };
    let connected: Vec<_> = (0..sessions)
        .map(|i| gateway.connect(session_config(i)))
        .collect();
    let outcomes = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, mut session) in connected.into_iter().enumerate() {
            let outcomes = &outcomes;
            let users = &users;
            scope.spawn(move || {
                let (user, count) = users[i % users.len()];
                let outcome = session.analyze(fleet_trace(i as u64, count), true);
                let stats = session.stats();
                outcomes.lock().unwrap().push((i, user, outcome, stats));
            });
        }
    });

    let mut outcomes = outcomes.into_inner().unwrap();
    outcomes.sort_by_key(|(i, ..)| *i);
    let (mut accepted, mut rejected, mut other, mut errors) = (0u64, 0u64, 0u64, 0u64);
    let (mut link_retries, mut shed_retries) = (0u64, 0u64);
    let (mut symbols_emitted, mut symbols_dropped) = (0u64, 0u64);
    for (i, user, outcome, stats) in &outcomes {
        link_retries += stats.link_retries;
        shed_retries += stats.shed_retries;
        symbols_emitted += stats.symbols_emitted;
        symbols_dropped += stats.symbols_dropped;
        match outcome {
            Ok(Response::Analyzed {
                auth: Some(AuthDecision::Accepted { user_id }),
                ..
            }) if user_id == user => accepted += 1,
            Ok(Response::Analyzed {
                auth: Some(AuthDecision::Rejected),
                ..
            }) => rejected += 1,
            Ok(_) => other += 1,
            Err(e) => {
                errors += 1;
                wl(out, format!("session {i}: failed: {e}"));
            }
        }
    }
    let uplink_label = if fountain_uplink { "fountain" } else { "retry" };
    wl(out, format!(
        "fleet: {sessions} sessions via {workers} workers (queue depth {queue}, {:.0}% flaky uplink, {uplink_label} uplink, {wire_format} wire, {runtime} runtime)",
        flaky * 100.0
    ));
    wl(
        out,
        format!(
            "cloud tier: {shards} shard(s), {} gateway lane(s)",
            gateway.lane_count()
        ),
    );
    wl(out, format!(
        "auth: {accepted} accepted as themselves, {rejected} rejected, {other} other, {errors} gave up"
    ));
    if fountain_uplink {
        wl(
            out,
            format!("one-way stream: {symbols_emitted} symbols emitted, {symbols_dropped} lost in transit"),
        );
    } else {
        wl(
            out,
            format!("client retries: {link_retries} link, {shed_retries} backpressure"),
        );
    }
    if data_dir.is_some() {
        // Stop admitting, finish in-flight work, and force the final
        // group-commit flush before the process exits.
        gateway.drain();
    }
    if let Some(pair) = &pair {
        let status = pair.status();
        wl(out, format!(
            "replication: epoch {} | shipped {} frames ({} B) | acked {} B | lag {} B | snapshots {} | standby applied {}",
            status.epoch,
            status.shipper.shipped_frames,
            status.shipper.shipped_bytes,
            status.shipper.acked_bytes,
            status.shipper.lag_bytes,
            status.shipper.snapshots_shipped,
            status.standby.applied_frames,
        ));
    }
    match telemetry_mode {
        TelemetryMode::Off => {}
        TelemetryMode::Text => {
            wl(out, "telemetry:");
            let _ = write!(out, "{}", gateway.telemetry_text());
        }
        TelemetryMode::Json => {
            let _ = write!(out, "{}", gateway.spans_json());
        }
    }
    let metrics = gateway.shutdown();
    wl(out, format!("{metrics}"));
    if metrics.lost() != 0 {
        return Err(format!("{} accepted requests were lost", metrics.lost()));
    }
    Ok(())
}

/// `replica-status`: spin up a demo replicated pair, push a small write
/// workload through it, and print the shipping/lag/epoch status an
/// operator would watch — optionally crashing the primary mid-run
/// (`--kill`) to show the fenced failover.
pub fn replica_status(args: &[String], out: Out) -> Result<(), String> {
    use medsen_cloud::service::{CloudService, Request, Response};
    use medsen_cloud::{BeadSignature, ReplicaStatus, StorageConfig};

    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]));
    }
    for name in options.keys() {
        if !["shards", "writes", "kill"].contains(&name.as_str()) {
            return Err(format!("unknown option --{name}"));
        }
    }
    let shards: usize = parse(&options, "shards", 4)?;
    let writes: usize = parse(&options, "writes", 12)?;
    let kill = options.contains_key("kill");
    if !(1..=64).contains(&shards) {
        return Err("--shards must be in 1..=64".into());
    }
    if !(1..=10_000).contains(&writes) {
        return Err("--writes must be in 1..=10000".into());
    }

    fn print_status(out: Out, status: &ReplicaStatus) {
        wl(
            out,
            format!(
                "  epoch {} | promoted {} | primary {} | link {}",
                status.epoch,
                if status.promoted { "yes" } else { "no" },
                if status.primary_down { "down" } else { "up" },
                if status.link_down { "down" } else { "up" },
            ),
        );
        wl(
            out,
            format!(
                "  shipped {} frames ({} B) + {} snapshot(s) | acked {} B | lag {} B | failures {}",
                status.shipper.shipped_frames,
                status.shipper.shipped_bytes,
                status.shipper.snapshots_shipped,
                status.shipper.acked_bytes,
                status.shipper.lag_bytes,
                status.shipper.ship_failures,
            ),
        );
        wl(out, format!(
            "  standby: applied {} frames ({} B), {} snapshot(s) installed, {} stale ship(s) rejected",
            status.standby.applied_frames,
            status.standby.applied_bytes,
            status.standby.snapshots_installed,
            status.standby.stale_rejected,
        ));
        for lag in &status.shards {
            wl(
                out,
                format!(
                    "  shard {:>2}: produced {:>6} acked {:>6} {}",
                    lag.shard,
                    lag.produced,
                    lag.acked,
                    if lag.attached { "attached" } else { "DETACHED" },
                ),
            );
        }
        wl(
            out,
            format!(
                "  simulated uplink cost: {} µs (LTE model)",
                status.simulated_transfer_us
            ),
        );
    }

    let base = std::env::temp_dir().join(format!("medsen-replica-status-{}", std::process::id()));
    let dirs = [
        base.with_extension("primary"),
        base.with_extension("standby"),
    ];
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let [primary, standby] = [&dirs[0], &dirs[1]].map(|dir| {
        CloudService::with_storage_config(StorageConfig::new(dir), shards)
            .map_err(|e| format!("{}: {e}", dir.display()))
    });
    let pair = primary?
        .with_replication(standby?)
        .map_err(|e| format!("pairing failed: {e}"))?;

    wl(
        out,
        format!(
            "replicated pair up: {shards} shard(s), epoch {}",
            pair.epoch()
        ),
    );
    for i in 0..writes {
        let serving = pair.serving();
        let response = serving.handle_shared(Request::Enroll {
            identifier: format!("patient-{i}"),
            signature: BeadSignature::from_counts(&[(
                ParticleKind::Bead358,
                10 + (i as u64 % 7) * 5,
            )]),
        });
        if response != Response::Enrolled {
            return Err(format!("write {i} failed: {response:?}"));
        }
        if kill && i == writes / 2 {
            wl(out, format!("-- killing the primary after write {i} --"));
            pair.kill_primary();
        }
    }
    wl(out, format!("after {writes} write(s):"));
    print_status(out, &pair.status());
    if kill {
        let serving = pair.serving();
        let enrolled: usize = serving.shard_stats().iter().map(|s| s.enrolled).sum();
        wl(
            out,
            format!(
                "promoted standby serves epoch {} with {enrolled} enrollment(s); \
             a resurrected primary's ships are now rejected as stale",
                pair.epoch()
            ),
        );
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(())
}

/// `telemetry`: drive a small built-in workload through the gateway and
/// pretty-print the resulting snapshot — every registered instrument as
/// `name value` text, then the slowest requests with their per-stage
/// breakdowns. A fast way to see what the observability stack exports
/// without sizing a whole fleet run.
pub fn telemetry(args: &[String], out: Out) -> Result<(), String> {
    use medsen_cloud::service::{CloudService, Request};
    use medsen_gateway::{Gateway, GatewayConfig, RuntimeKind, ShedPolicy, TelemetryConfig};
    use medsen_impedance::PulseSpec;
    use medsen_impedance::TraceSynthesizer;

    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]));
    }
    for name in options.keys() {
        if !["requests", "runtime"].contains(&name.as_str()) {
            return Err(format!("unknown option --{name}"));
        }
    }
    let requests: usize = parse(&options, "requests", 24)?;
    if !(1..=512).contains(&requests) {
        return Err("--requests must be in 1..=512".into());
    }
    let runtime: RuntimeKind = match options.get("runtime") {
        Some(value) => value.parse().map_err(|e| format!("--runtime: {e}"))?,
        None => RuntimeKind::default(),
    };

    let gateway = Gateway::with_telemetry(
        CloudService::new(),
        GatewayConfig {
            queue_capacity: 16,
            workers: 4,
            shed_policy: ShedPolicy::Block,
        },
        runtime,
        TelemetryConfig::default(),
    );
    let mut synth = TraceSynthesizer::clean(1);
    let trace = synth.render(
        &[PulseSpec::unipolar(
            Seconds::new(0.5),
            Seconds::new(0.02),
            0.01,
        )],
        Seconds::new(1.5),
    );
    let replies: Vec<_> = (0..requests)
        .map(|i| {
            // A mix of cheap pings and full DSP analyses, so both the
            // analysis span and the response cache show up in the dump.
            let request = if i % 4 == 0 {
                Request::Ping
            } else {
                Request::Analyze {
                    trace: trace.clone(),
                    authenticate: false,
                }
            };
            let json =
                medsen_phone::to_json(&request).map_err(|e| format!("encode failed: {e}"))?;
            gateway
                .submit(medsen_gateway::encode_upload(i as u64 + 1, &json))
                .map_err(|e| format!("submit failed: {e}"))
        })
        .collect::<Result<_, String>>()?;
    for reply in replies {
        reply.wait().map_err(|e| format!("reply failed: {e}"))?;
    }

    wl(out, format!("instruments after {requests} requests:"));
    let _ = write!(out, "{}", gateway.telemetry_text());
    wl(out, "slowest requests:");
    for slow in gateway.slow_traces() {
        wl(
            out,
            format!(
                "  trace {} total {:.1} µs",
                slow.trace,
                slow.total_ns as f64 / 1e3
            ),
        );
        for span in &slow.stages {
            wl(
                out,
                format!(
                    "    {:<10} tag={} {:>10.1} µs",
                    span.stage.name(),
                    span.tag,
                    span.duration_ns() as f64 / 1e3
                ),
            );
        }
    }
    gateway.shutdown();
    Ok(())
}

/// `audit`: run the adversarial self-audit battery and print its
/// scorecard. Exit status follows the overall verdict, so CI can gate on
/// the command directly.
pub fn audit(args: &[String], out: Out) -> Result<(), String> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]));
    }
    let seed: u64 = parse(&options, "seed", 2024)?;
    let config = if options.contains_key("quick") {
        medsen::selfaudit::AuditConfig::quick(seed)
    } else {
        medsen::selfaudit::AuditConfig::full(seed)
    };
    let scorecard = medsen::selfaudit::run(&config);
    let _ = write!(out, "{scorecard}");
    if scorecard.pass() {
        Ok(())
    } else {
        Err("security audit FAILED (see scorecard above)".into())
    }
}

/// `soak`: run the reconciling overload soak and print its report.
///
/// The soak storms every refusal path the gateway has — queue shed,
/// per-session rate limiting, fountain session eviction, one primary
/// failover — through an adaptively-sampled gateway, then checks the
/// exposition's overload counters against the driver's own attempt
/// ledger. Any reconciliation violation (a lost attempt, a counter that
/// drifted, a sampler ledger leak) exits non-zero, which is what makes
/// this runnable as a CI gate rather than a demo.
pub fn soak(args: &[String], out: Out) -> Result<(), String> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected argument `{}`", positional[0]));
    }
    for name in options.keys() {
        if name != "quick" {
            return Err(format!("unknown option --{name}"));
        }
    }
    let config = if options.contains_key("quick") {
        medsen::gateway::SoakConfig::quick()
    } else {
        medsen::gateway::SoakConfig::standard()
    };
    let report = medsen::gateway::soak::run(&config);
    let _ = writeln!(out, "{report}");
    report
        .reconcile()
        .map_err(|errors| format!("soak reconciliation FAILED:\n{}", errors.join("\n")))
}

/// `wire-golden`: verify the checked-in golden wire frames against the
/// deterministic fixture corpus — or, with `--write`, regenerate them.
///
/// Verification is the wire-format tripwire: each `<name>.bin` must
/// decode (with the *built* binary decoder) to exactly the corpus value
/// and re-encode to exactly the committed bytes, and each `<name>.json`
/// sidecar must decode to the same value, proving the two formats stay
/// observationally equivalent. Any codec change that shifts a byte
/// fails here before it can silently strand deployed dongles.
pub fn wire_golden(args: &[String], out: Out) -> Result<(), String> {
    use medsen::wire::WireFormat;
    use medsen_cloud::wire::{
        decode_request, decode_request_traced, decode_response, decode_response_traced,
        encode_request, encode_request_traced, encode_response, encode_response_traced, golden,
    };

    let (positional, options) = split_options(args)?;
    let [dir] = positional.as_slice() else {
        return Err("wire-golden needs: <fixture-dir> [--write]".into());
    };
    for name in options.keys() {
        if name != "write" {
            return Err(format!("unknown option --{name}"));
        }
    }
    let write = options.contains_key("write");
    let dir = std::path::Path::new(dir);
    if write {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }

    // One closure per side so the request and response corpora share the
    // identical read/decode/re-encode discipline.
    fn process<T: PartialEq + std::fmt::Debug>(
        dir: &std::path::Path,
        write: bool,
        name: &str,
        value: &T,
        encode: impl Fn(WireFormat, &T) -> Result<Vec<u8>, String>,
        decode: impl Fn(WireFormat, &[u8]) -> Result<T, String>,
    ) -> Result<(), String> {
        for (format, ext) in [(WireFormat::Binary, "bin"), (WireFormat::Json, "json")] {
            let path = dir.join(format!("{name}.{ext}"));
            let encoded = encode(format, value).map_err(|e| format!("{name}: encode: {e}"))?;
            if write {
                std::fs::write(&path, &encoded)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                continue;
            }
            let committed = std::fs::read(&path).map_err(|e| {
                format!("read {} (run with --write to create): {e}", path.display())
            })?;
            let decoded =
                decode(format, &committed).map_err(|e| format!("{name}.{ext}: decode: {e}"))?;
            if decoded != *value {
                return Err(format!(
                    "{name}.{ext}: decoded value drifted from the fixture corpus"
                ));
            }
            // Byte-exactness only for the binary frames: JSON field order
            // is the serializer's business, equality above is its check.
            if format == WireFormat::Binary && committed != encoded {
                return Err(format!(
                    "{name}.{ext}: re-encoding produced different bytes ({} committed vs {} built) — binary wire format drifted",
                    committed.len(),
                    encoded.len()
                ));
            }
        }
        Ok(())
    }

    let mut count = 0usize;
    for (name, request) in golden::requests() {
        process(
            dir,
            write,
            name,
            &request,
            |f, v| encode_request(f, v).map_err(|e| e.to_string()),
            |f, b| decode_request(f, b).map_err(|e| e.to_string()),
        )?;
        count += 1;
    }
    for (name, response) in golden::responses() {
        process(
            dir,
            write,
            name,
            &response,
            |f, v| encode_response(f, v).map_err(|e| e.to_string()),
            |f, b| decode_response(f, b).map_err(|e| e.to_string()),
        )?;
        count += 1;
    }
    // Trace-context fixtures: the traced twin frame kinds must stay as
    // stable as the plain ones, and the pinned trace id must survive the
    // round trip — a decoder that strips or shifts the trace field fails
    // here, not in a clinic's trace backend.
    let expect_trace = |trace: Option<u64>| -> Result<(), String> {
        match trace {
            Some(t) if t == golden::TRACE_ID => Ok(()),
            Some(t) => Err(format!(
                "trace id drifted: expected {:#018x}, decoded {t:#018x}",
                golden::TRACE_ID
            )),
            None => Err("traced fixture decoded without a trace id".into()),
        }
    };
    for (name, request) in golden::traced_requests() {
        process(
            dir,
            write,
            name,
            &request,
            |f, v| encode_request_traced(f, v, golden::TRACE_ID).map_err(|e| e.to_string()),
            |f, b| {
                let (value, trace) = decode_request_traced(f, b).map_err(|e| e.to_string())?;
                expect_trace(trace)?;
                Ok(value)
            },
        )?;
        count += 1;
    }
    for (name, response) in golden::traced_responses() {
        process(
            dir,
            write,
            name,
            &response,
            |f, v| encode_response_traced(f, v, golden::TRACE_ID).map_err(|e| e.to_string()),
            |f, b| {
                let (value, trace) = decode_response_traced(f, b).map_err(|e| e.to_string())?;
                expect_trace(trace)?;
                Ok(value)
            },
        )?;
        count += 1;
    }
    let action = if write { "wrote" } else { "verified" };
    wl(
        out,
        format!(
            "golden frames: {action} {count} fixtures (binary + JSON) in {}",
            dir.display()
        ),
    );
    Ok(())
}
