//! End-to-end CLI tests: drive the actual binary through its subcommands.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_medsen-cli"))
}

fn run(args: &[&str]) -> (i32, String) {
    let output = bin().args(args).output().expect("binary runs");
    let text = String::from_utf8_lossy(&output.stdout).into_owned()
        + &String::from_utf8_lossy(&output.stderr);
    (output.status.code().unwrap_or(-1), text)
}

#[test]
fn help_and_errors() {
    let (code, text) = run(&["help"]);
    assert_eq!(code, 0);
    assert!(text.contains("medsen-cli"));

    let (code, text) = run(&["nonsense"]);
    assert_eq!(code, 1);
    assert!(text.contains("unknown command"));

    let (code, _) = run(&[]);
    assert_eq!(code, 2);
}

#[test]
fn keylen_reproduces_the_paper_headline() {
    let (code, text) = run(&["keylen", "20000", "16", "4", "4"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("1040000 bits"), "{text}");
}

#[test]
fn enroll_assigns_passwords() {
    let (code, text) = run(&["enroll", "alice", "bob"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("enrolled alice"));
    assert!(text.contains("enrolled bob"));
    assert!(text.contains("password space"));
}

#[test]
fn synth_analyze_attack_round_trip() {
    let dir = std::env::temp_dir().join(format!("medsen-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("trace.csv");
    let csv_str = csv.to_str().expect("utf8 path");

    let (code, text) = run(&["synth", csv_str, "--seed", "9", "--particles", "6"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("wrote"), "{text}");
    assert!(csv.exists());

    let (code, text) = run(&["analyze", csv_str]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("peaks:"), "{text}");
    assert!(text.contains("noise floor"), "{text}");

    let (code, text) = run(&["attack", csv_str]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("amplitude-grouping estimate"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_runs_encrypted_mode() {
    let (code, text) = run(&["session", "--seed", "3", "--duration", "10"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("decoded"), "{text}");
    assert!(text.contains("verdict"), "{text}");
}

#[test]
fn session_validates_duration() {
    let (code, text) = run(&["session", "--duration", "100000"]);
    assert_eq!(code, 1);
    assert!(text.contains("--duration"), "{text}");
}

#[test]
fn analyze_rejects_missing_and_malformed_files() {
    let (code, text) = run(&["analyze", "/nonexistent/trace.csv"]);
    assert_eq!(code, 1);
    assert!(text.contains("cannot read"), "{text}");

    let dir = std::env::temp_dir().join(format!("medsen-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "this is not a trace").expect("write");
    let (code, text) = run(&["analyze", bad.to_str().expect("utf8")]);
    assert_eq!(code, 1);
    assert!(text.contains("error"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn capability_demo_round_trips() {
    let (code, text) = run(&["capability", "--seed", "5", "--duration", "15"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("sealed capability"), "{text}");
    assert!(text.contains("practitioner decrypts"), "{text}");
    assert!(text.contains("wrong secret"), "{text}");
}

#[test]
fn gateway_serves_a_small_fleet() {
    let (code, text) = run(&[
        "gateway",
        "--sessions",
        "6",
        "--workers",
        "2",
        "--queue",
        "2",
        "--flaky",
        "0.2",
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("6 sessions via 2 workers"), "{text}");
    assert!(text.contains("async runtime"), "{text}");
    assert!(text.contains("6 accepted as themselves"), "{text}");
    assert!(text.contains("queue high-water"), "{text}");
}

#[test]
fn gateway_runs_on_either_runtime() {
    for runtime in ["threads", "async"] {
        let (code, text) = run(&[
            "gateway",
            "--sessions",
            "4",
            "--workers",
            "2",
            "--runtime",
            runtime,
        ]);
        assert_eq!(code, 0, "{runtime}: {text}");
        assert!(text.contains(&format!("{runtime} runtime")), "{text}");
        assert!(text.contains("4 accepted as themselves"), "{text}");
    }
}

#[test]
fn gateway_honors_the_shards_flag() {
    let (code, text) = run(&[
        "gateway",
        "--sessions",
        "4",
        "--workers",
        "4",
        "--shards",
        "4",
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(
        text.contains("cloud tier: 4 shard(s), 4 gateway lane(s)"),
        "{text}"
    );
    assert!(text.contains("4 accepted as themselves"), "{text}");

    // A single shard collapses to a single gateway lane.
    let (code, text) = run(&[
        "gateway",
        "--sessions",
        "4",
        "--workers",
        "4",
        "--shards",
        "1",
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(
        text.contains("cloud tier: 1 shard(s), 1 gateway lane(s)"),
        "{text}"
    );
}

#[test]
fn gateway_persists_to_a_data_dir_and_recovers_on_restart() {
    let dir = std::env::temp_dir().join(format!("medsen-cli-wal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_str = dir.to_str().expect("utf8 path");

    // First run: fresh directory, nothing to recover; the fleet's
    // enrollments and stored records land in the WAL.
    let (code, text) = run(&[
        "gateway",
        "--sessions",
        "4",
        "--workers",
        "2",
        "--flaky",
        "0",
        "--data-dir",
        dir_str,
        "--flush",
        "every:4",
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("durable store:"), "{text}");
    assert!(text.contains("flush policy every:4"), "{text}");
    assert!(text.contains("recovered 0 entries"), "{text}");
    assert!(text.contains("wal: appends"), "{text}");
    assert!(text.contains("drained"), "{text}");

    // Second run over the same directory: the first fleet's writes come
    // back (3 enrollments + 4 stored records at minimum).
    let (code, text) = run(&[
        "gateway",
        "--sessions",
        "4",
        "--workers",
        "2",
        "--flaky",
        "0",
        "--data-dir",
        dir_str,
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("recovered 7 entries"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gateway_validates_durability_options() {
    let (code, text) = run(&["gateway", "--flush", "every:4"]);
    assert_eq!(code, 1);
    assert!(text.contains("--flush needs --data-dir"), "{text}");

    let dir = std::env::temp_dir().join(format!("medsen-cli-badflush-{}", std::process::id()));
    let (code, text) = run(&[
        "gateway",
        "--data-dir",
        dir.to_str().expect("utf8"),
        "--flush",
        "sometimes",
    ]);
    assert_eq!(code, 1);
    assert!(text.contains("invalid flush policy 'sometimes'"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gateway_validates_options() {
    let (code, text) = run(&["gateway", "--sessions", "0"]);
    assert_eq!(code, 1);
    assert!(text.contains("--sessions"), "{text}");

    let (code, text) = run(&["gateway", "--flaky", "1.5"]);
    assert_eq!(code, 1);
    assert!(text.contains("--flaky"), "{text}");

    let (code, text) = run(&["gateway", "--runtime", "fibers"]);
    assert_eq!(code, 1);
    assert!(text.contains("--runtime"), "{text}");
    assert!(text.contains("unknown runtime `fibers`"), "{text}");
    assert!(text.contains("expected `threads` or `async`"), "{text}");

    let (code, text) = run(&["gateway", "--shards", "0"]);
    assert_eq!(code, 1);
    assert!(text.contains("--shards must be in 1..=64"), "{text}");

    let (code, text) = run(&["gateway", "--shards", "65"]);
    assert_eq!(code, 1);
    assert!(text.contains("--shards must be in 1..=64"), "{text}");
}

#[test]
fn gateway_telemetry_text_emits_a_parseable_exposition() {
    let (code, text) = run(&[
        "gateway",
        "--sessions",
        "4",
        "--workers",
        "2",
        "--queue",
        "4",
        "--flaky",
        "0.0",
        "--telemetry",
        "text",
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("telemetry:"), "{text}");
    // Every exposition line between the `telemetry:` header and the final
    // metrics block obeys the `name value` grammar.
    let mut in_block = false;
    let mut lines = 0usize;
    for line in text.lines() {
        if line == "telemetry:" {
            in_block = true;
            continue;
        }
        if in_block {
            if line.starts_with("accepted ") {
                break;
            }
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(
                name.split('.').all(|seg| {
                    !seg.is_empty()
                        && seg
                            .bytes()
                            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
                }),
                "bad name in {line:?}"
            );
            let parsed: f64 = value.parse().expect("numeric value");
            assert!(parsed >= 0.0 && parsed.is_finite(), "{line:?}");
            lines += 1;
        }
    }
    assert!(lines > 10, "exposition looks truncated:\n{text}");
    for name in [
        "gateway.accepted ",
        "gateway.completed ",
        "gateway.queue_wait.count ",
        "cache.misses ",
        "telemetry.spans_recorded ",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn gateway_telemetry_json_dumps_span_lines() {
    let (code, text) = run(&[
        "gateway",
        "--sessions",
        "3",
        "--workers",
        "2",
        "--queue",
        "4",
        "--flaky",
        "0.0",
        "--telemetry",
        "json",
    ]);
    assert_eq!(code, 0, "{text}");
    let spans: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("{\"trace\":"))
        .collect();
    assert!(!spans.is_empty(), "{text}");
    assert!(
        spans.iter().any(|l| l.contains("\"stage\":\"service\"")),
        "{text}"
    );
    assert!(spans.iter().all(|l| l.ends_with('}')), "{text}");
}

#[test]
fn gateway_validates_telemetry_mode() {
    let (code, text) = run(&["gateway", "--telemetry", "xml"]);
    assert_eq!(code, 1);
    assert!(text.contains("expected `text`, `json`, or `off`"), "{text}");
}

#[test]
fn telemetry_subcommand_pretty_prints_a_snapshot() {
    let (code, text) = run(&["telemetry", "--requests", "12"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("instruments after 12 requests:"), "{text}");
    assert!(text.contains("gateway.accepted 12"), "{text}");
    assert!(text.contains("cache.hits"), "{text}");
    assert!(text.contains("slowest requests:"), "{text}");
    assert!(text.contains("trace 0x"), "{text}");
    assert!(text.contains("service"), "{text}");

    let (code, text) = run(&["telemetry", "--requests", "0"]);
    assert_eq!(code, 1);
    assert!(text.contains("--requests must be in 1..=512"), "{text}");

    let (code, text) = run(&["telemetry", "--bogus", "1"]);
    assert_eq!(code, 1);
    assert!(text.contains("unknown option --bogus"), "{text}");
}
