//! The single-message transport frame.
//!
//! Every cross-tier message travels inside one length-prefixed,
//! CRC32-guarded frame — the same layout the WAL uses on disk
//! (`crates/store/src/frame.rs`), because the failure model is the
//! same: a frame that fails its length or checksum invariant is
//! garbage and must be rejected without being interpreted.
//!
//! ```text
//! ┌────────────┬────────────┬──────────┬─────────────────────┐
//! │ len: u32LE │ crc: u32LE │ kind: u8 │ payload: len-1 bytes│
//! └────────────┴────────────┴──────────┴─────────────────────┘
//! ```
//!
//! `len` counts the body (`kind` + payload, so `len >= 1`) and `crc`
//! is the CRC-32 (IEEE, reflected) of that body. Unlike the WAL
//! decoder, which scans a stream and truncates a torn tail, this
//! decoder expects exactly one frame and treats trailing bytes as an
//! error — a transport message has no legitimate continuation.
//!
//! Decoding is zero-copy: [`decode_frame`] hands back a borrowed
//! payload slice, so dispatch can route on the kind byte and pass the
//! payload onward without allocating.

use crate::crc::crc32;

/// Bytes of framing overhead per message (`len` + `crc` + `kind`).
pub const FRAME_OVERHEAD: usize = 9;

/// Hard cap on one frame's body, so a corrupted length prefix cannot
/// make a receiver allocate gigabytes. Matches the WAL's cap.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer than [`FRAME_OVERHEAD`] header bytes were present.
    TruncatedHeader,
    /// The length prefix was zero or above [`MAX_FRAME_BYTES`].
    BadLength,
    /// The length prefix pointed past the end of the input.
    TruncatedBody,
    /// The body's CRC-32 did not match the header.
    BadChecksum,
    /// Bytes followed the frame; a transport message is exactly one.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TruncatedHeader => write!(f, "truncated frame header"),
            FrameError::BadLength => write!(f, "implausible frame length"),
            FrameError::TruncatedBody => write!(f, "truncated frame body"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame, appending to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_BYTES`] minus the kind byte —
/// such a frame could never be decoded again.
pub fn encode_frame(kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    let body_len = payload.len() + 1;
    assert!(
        body_len <= MAX_FRAME_BYTES,
        "frame body of {body_len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
    );
    out.reserve(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let crc_at = out.len();
    out.extend_from_slice(&[0; 4]);
    out.push(kind);
    out.extend_from_slice(payload);
    let crc = crc32(&out[crc_at + 4..]);
    out[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
}

/// Convenience: encodes one frame into a fresh buffer.
pub fn frame_to_vec(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    encode_frame(kind, payload, &mut out);
    out
}

/// Decodes exactly one frame, returning the kind tag and a borrowed
/// payload slice. Never panics on malformed input.
pub fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8]), FrameError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(FrameError::TruncatedHeader);
    }
    let body_len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if body_len == 0 || body_len > MAX_FRAME_BYTES {
        return Err(FrameError::BadLength);
    }
    if bytes.len() < 8 + body_len {
        return Err(FrameError::TruncatedBody);
    }
    if bytes.len() > 8 + body_len {
        return Err(FrameError::TrailingBytes);
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let body = &bytes[8..8 + body_len];
    if crc32(body) != crc {
        return Err(FrameError::BadChecksum);
    }
    Ok((body[0], &body[1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_borrows_the_payload() {
        let encoded = frame_to_vec(0x21, b"payload bytes");
        let (kind, payload) = decode_frame(&encoded).expect("decodes");
        assert_eq!(kind, 0x21);
        assert_eq!(payload, b"payload bytes");
        // Zero-copy: the payload slice points into the encoded buffer.
        let base = encoded.as_ptr() as usize;
        let got = payload.as_ptr() as usize;
        assert_eq!(got - base, FRAME_OVERHEAD);
    }

    #[test]
    fn empty_payload_is_legal() {
        let encoded = frame_to_vec(7, b"");
        let (kind, payload) = decode_frame(&encoded).expect("decodes");
        assert_eq!(kind, 7);
        assert!(payload.is_empty());
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked() {
        let encoded = frame_to_vec(0x22, b"truncate me");
        for cut in 0..encoded.len() {
            let err = decode_frame(&encoded[..cut]).expect_err("truncated");
            assert!(
                matches!(err, FrameError::TruncatedHeader | FrameError::TruncatedBody),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let encoded = frame_to_vec(0x21, b"flip me");
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut bad = encoded.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at {byte}:{bit} decoded anyway"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut encoded = frame_to_vec(1, b"one message");
        encoded.push(0);
        assert_eq!(decode_frame(&encoded), Err(FrameError::TrailingBytes));
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        let mut zero = vec![0u8; FRAME_OVERHEAD];
        zero[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_frame(&zero), Err(FrameError::BadLength));

        let mut huge = vec![0u8; 64];
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&huge), Err(FrameError::BadLength));
    }
}
