//! The workspace's one CRC-32 implementation.
//!
//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) guards three
//! independent durability/wire contracts in this codebase: the WAL frame
//! stream (`medsen-store`), the credential blob (`CytoPassword` in
//! `medsen-core`), and the cross-tier message frames defined here. All
//! three used to carry their own copy of the same const-fn table; this
//! module is now the single source the others delegate to.
//!
//! One deliberate exception: `medsen-fountain` keeps a frozen private
//! copy, because the fountain symbol frame is a wire contract with
//! embedded senders that must build the crate with zero dependencies.
//! A workspace-level test pins that copy bit-equal to this one, the same
//! way the PR 8 PRNG pin works.

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
///
/// Implemented here rather than vendored: the checksum is part of both
/// the persistence and the wire contract and must never drift with a
/// dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// The 256-entry lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn is_sensitive_to_single_bit_flips() {
        let base = crc32(b"wire frame body");
        let mut flipped = b"wire frame body".to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
