//! # medsen-wire — the shared cross-tier wire protocol
//!
//! Phone, gateway, and cloud are built at different times (a clinic
//! phone may be a year older than the cloud it talks to), so the bytes
//! between them are a contract no single tier may own informally. This
//! crate is that contract, in the `setup1-shared` style: one bottom-of-
//! graph crate holding the codec machinery, with every peer linking the
//! same implementation so the tiers cannot drift.
//!
//! Three layers, bottom up:
//!
//! * [`crc`] — the workspace's one CRC-32 (IEEE, reflected)
//!   implementation, shared with the WAL and credential codecs;
//! * [`frame`] — the length-prefixed, CRC-guarded, zero-copy transport
//!   frame (`[len u32LE][crc u32LE][kind u8][payload]`), the same
//!   layout the WAL uses on disk;
//! * [`codec`] — bounds-checked primitive readers/writers, the
//!   [`Wire`] trait message types implement in their owning crates,
//!   the versioned message envelope, and the [`WireCodec`] backend
//!   trait with the [`BinaryWire`] backend (the JSON debug backend
//!   lives in `medsen-phone`, next to its serializer).
//!
//! Every decoder in this crate is total: malformed input — truncated,
//! bit-flipped, forged length, unknown tag — returns an error, never
//! panics, and never allocates proportionally to a forged prefix.
//!
//! This crate is std-only with zero dependencies, enforced by CI's
//! vendor-hygiene job, because a codec that both embedded senders and
//! the cloud must agree on cannot drag a dependency graph along.

pub mod codec;
pub mod crc;
pub mod frame;

pub use codec::{
    decode_message, decode_message_traced, encode_message, encode_message_traced, BinaryWire,
    Reader, Wire, WireCodec, WireError, WireFormat, WireMessage, Writer, TRACED_KIND_BIT,
    WIRE_VERSION,
};
pub use crc::crc32;
pub use frame::{
    decode_frame, encode_frame, frame_to_vec, FrameError, FRAME_OVERHEAD, MAX_FRAME_BYTES,
};
