//! The zero-copy binary codec: bounds-checked primitives, the [`Wire`]
//! trait, the versioned message envelope, and backend selection.
//!
//! # Layout rules
//!
//! Every field is little-endian and fixed-width at the primitive level:
//!
//! * integers — `u8`/`u16`/`u32`/`u64` as that many LE bytes;
//! * `f64` — IEEE 754 bit pattern as `u64` LE (NaN payloads survive);
//! * `bool` — one byte, `0` or `1` (anything else is a decode error);
//! * `String` / byte blobs — `u32` LE length prefix, then the bytes;
//! * `Vec<T>` — `u32` LE element count, then each element in order;
//! * `Option<T>` — one presence byte (`0`/`1`), then the value if `1`;
//! * enums — one `u8` variant tag, then the variant's fields in order.
//!
//! A full message is the frame from [`crate::frame`] whose payload is a
//! format-version byte ([`WIRE_VERSION`]) followed by the root value.
//! Decoders are total: every malformed input returns [`WireError`],
//! never panics, and a message that leaves undecoded payload bytes is
//! rejected ([`WireError::TrailingBytes`]) so two peers cannot disagree
//! about where a message ends.
//!
//! # Evolution policy
//!
//! The version byte names the *payload schema*, not the framing. Adding
//! a message kind is backward compatible (old peers reject the unknown
//! kind tag cleanly); changing any existing type's field order or width
//! requires bumping [`WIRE_VERSION`], and decoders reject versions they
//! do not know rather than guessing.

use crate::frame::{self, FrameError};

/// Version byte carried at the head of every message payload.
pub const WIRE_VERSION: u8 = 1;

/// Why a wire value failed to decode (or a backend failed to encode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated,
    /// Bytes remained after the root value was fully decoded.
    TrailingBytes,
    /// The frame's kind byte named a different message type.
    WrongKind { expected: u8, found: u8 },
    /// The payload's version byte is newer (or older) than this build.
    UnsupportedVersion { version: u8 },
    /// An enum/bool tag byte had no matching variant.
    BadTag { what: &'static str, tag: u8 },
    /// A string field held invalid UTF-8.
    NotUtf8,
    /// The bytes decoded but violated a structural invariant of the type.
    Invalid(&'static str),
    /// The transport frame itself was malformed.
    Frame(FrameError),
    /// A non-binary backend (e.g. the JSON debug codec) failed.
    Codec(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated mid-value"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong message kind: expected {expected:#04x}, found {found:#04x}"
                )
            }
            WireError::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            WireError::NotUtf8 => write!(f, "string field is not UTF-8"),
            WireError::Invalid(what) => write!(f, "invalid value: {what}"),
            WireError::Frame(e) => write!(f, "frame error: {e}"),
            WireError::Codec(reason) => write!(f, "codec error: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

/// Append-only encode buffer with little-endian primitive writers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a `u32` length prefix followed by the raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than `u32::MAX` — such a value could
    /// never be decoded again.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("wire blob exceeds u32::MAX bytes");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked, zero-copy decode cursor. Every read returns
/// [`WireError::Truncated`] instead of panicking when bytes run out.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { rest: bytes }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Errors unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.rest.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }

    /// Reads a `u32`-prefixed byte blob as a borrowed slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-prefixed UTF-8 string as a borrowed slice.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::NotUtf8)
    }

    /// Reads a `u32` element count, capped so a forged prefix cannot
    /// drive a huge allocation: every legal element occupies at least
    /// one byte, so a count above [`Reader::remaining`] is malformed.
    pub fn get_count(&mut self) -> Result<usize, WireError> {
        let count = self.get_u32()? as usize;
        if count > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(count)
    }
}

/// A type with a canonical binary wire encoding.
///
/// Implementations live in the crate that owns the type (orphan rules);
/// `medsen-wire` provides the primitive and container impls every
/// message is built from.
pub trait Wire: Sized {
    /// Appends this value's canonical encoding to `w`.
    fn wire_encode(&self, w: &mut Writer);
    /// Decodes one value, consuming exactly its bytes from `r`.
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// A root message type: a [`Wire`] value that travels as a whole frame,
/// identified by a fixed kind tag.
pub trait WireMessage: Wire {
    /// Frame kind byte identifying this message type on the wire.
    const KIND: u8;
}

macro_rules! wire_int {
    ($($ty:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Wire for $ty {
            fn wire_encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    )*};
}

wire_int! {
    u8 => put_u8 / get_u8,
    u16 => put_u16 / get_u16,
    u32 => put_u32 / get_u32,
    u64 => put_u64 / get_u64,
    f64 => put_f64 / get_f64,
    bool => put_bool / get_bool,
}

impl Wire for String {
    fn wire_encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.get_str()?.to_owned())
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_encode(&self, w: &mut Writer) {
        let len = u32::try_from(self.len()).expect("wire vec exceeds u32::MAX elements");
        w.put_u32(len);
        for item in self {
            item.wire_encode(w);
        }
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let count = r.get_count()?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::wire_decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_encode(&self, w: &mut Writer) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.wire_encode(w);
            }
        }
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        if r.get_bool()? {
            Ok(Some(T::wire_decode(r)?))
        } else {
            Ok(None)
        }
    }
}

/// Encodes a root message as one versioned, CRC-framed byte buffer.
pub fn encode_message<T: WireMessage>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(WIRE_VERSION);
    value.wire_encode(&mut w);
    frame::frame_to_vec(T::KIND, &w.into_bytes())
}

/// Decodes one versioned, CRC-framed root message. Total: every
/// malformed input — truncated, bit-flipped, forged header, wrong
/// kind, unknown version, trailing bytes — returns an error.
pub fn decode_message<T: WireMessage>(bytes: &[u8]) -> Result<T, WireError> {
    let (kind, payload) = frame::decode_frame(bytes)?;
    if kind != T::KIND {
        return Err(WireError::WrongKind {
            expected: T::KIND,
            found: kind,
        });
    }
    let mut r = Reader::new(payload);
    let version = r.get_u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { version });
    }
    let value = T::wire_decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Kind-space bit marking a frame whose payload carries a trace-context
/// prefix: `[version u8][trace u64 LE][root value]` instead of
/// `[version u8][root value]`.
///
/// Per the evolution policy, an optional field cannot be spliced into an
/// existing payload (that changes field order under a frozen version),
/// but a **new message kind** is backward compatible: a pre-trace peer
/// sees `kind | TRACED_KIND_BIT` as an unknown kind and rejects the
/// frame cleanly with [`WireError::WrongKind`] instead of mis-decoding
/// it. Untraced frames stay byte-identical to every release since v1.
pub const TRACED_KIND_BIT: u8 = 0x80;

/// Encodes a root message with a trace-context prefix under the traced
/// twin kind (`T::KIND | TRACED_KIND_BIT`). A zero `trace` means "no
/// trace" ([`crate::codec`] reserves 0) and falls back to the plain,
/// byte-identical [`encode_message`] envelope.
pub fn encode_message_traced<T: WireMessage>(value: &T, trace: u64) -> Vec<u8> {
    if trace == 0 {
        return encode_message(value);
    }
    let mut w = Writer::new();
    w.put_u8(WIRE_VERSION);
    w.put_u64(trace);
    value.wire_encode(&mut w);
    frame::frame_to_vec(T::KIND | TRACED_KIND_BIT, &w.into_bytes())
}

/// Decodes a root message that may or may not carry trace context:
/// accepts both the plain kind (→ `None`) and its traced twin
/// (→ `Some(trace)`). Total, like [`decode_message`].
pub fn decode_message_traced<T: WireMessage>(bytes: &[u8]) -> Result<(T, Option<u64>), WireError> {
    let (kind, payload) = frame::decode_frame(bytes)?;
    if kind != T::KIND && kind != (T::KIND | TRACED_KIND_BIT) {
        return Err(WireError::WrongKind {
            expected: T::KIND,
            found: kind,
        });
    }
    let mut r = Reader::new(payload);
    let version = r.get_u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { version });
    }
    let trace = if kind & TRACED_KIND_BIT != 0 {
        match r.get_u64()? {
            0 => return Err(WireError::Invalid("traced frame with zero trace id")),
            t => Some(t),
        }
    } else {
        None
    };
    let value = T::wire_decode(&mut r)?;
    r.finish()?;
    Ok((value, trace))
}

/// Which end-to-end encoding a session, gateway, and cloud agree on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// Line-delimited JSON — the debug/compat path.
    Json,
    /// The CRC-framed binary codec — the default serving path.
    #[default]
    Binary,
}

impl WireFormat {
    /// Single-byte discriminant carried in transport headers.
    pub const fn tag(self) -> u8 {
        match self {
            WireFormat::Json => 0,
            WireFormat::Binary => 1,
        }
    }

    /// Inverse of [`WireFormat::tag`].
    pub const fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(WireFormat::Json),
            1 => Some(WireFormat::Binary),
            _ => None,
        }
    }

    pub const fn as_str(self) -> &'static str {
        match self {
            WireFormat::Json => "json",
            WireFormat::Binary => "binary",
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for WireFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(WireFormat::Json),
            "binary" => Ok(WireFormat::Binary),
            other => Err(format!(
                "unknown wire format {other:?} (expected binary or json)"
            )),
        }
    }
}

/// A pluggable message encoding: the binary codec here, or the JSON
/// debug backend in `medsen-phone`. Both ends of a connection must pick
/// the same backend; [`WireFormat`] is the negotiated selector.
pub trait WireCodec<T> {
    /// Which [`WireFormat`] this backend implements.
    fn format(&self) -> WireFormat;
    /// Encodes one message to bytes.
    fn encode(&self, value: &T) -> Result<Vec<u8>, WireError>;
    /// Decodes one message from bytes. Must be total (never panic).
    fn decode(&self, bytes: &[u8]) -> Result<T, WireError>;
}

/// The binary backend: versioned, CRC-framed, zero-copy decode.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryWire;

impl<T: WireMessage> WireCodec<T> for BinaryWire {
    fn format(&self) -> WireFormat {
        WireFormat::Binary
    }

    fn encode(&self, value: &T) -> Result<Vec<u8>, WireError> {
        Ok(encode_message(value))
    }

    fn decode(&self, bytes: &[u8]) -> Result<T, WireError> {
        decode_message(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32;
    use crate::frame::FRAME_OVERHEAD;

    #[derive(Debug, Clone, PartialEq)]
    struct Probe {
        id: u64,
        label: String,
        samples: Vec<f64>,
        note: Option<String>,
        flag: bool,
    }

    impl Wire for Probe {
        fn wire_encode(&self, w: &mut Writer) {
            self.id.wire_encode(w);
            self.label.wire_encode(w);
            self.samples.wire_encode(w);
            self.note.wire_encode(w);
            self.flag.wire_encode(w);
        }
        fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
            Ok(Probe {
                id: u64::wire_decode(r)?,
                label: String::wire_decode(r)?,
                samples: Vec::wire_decode(r)?,
                note: Option::wire_decode(r)?,
                flag: bool::wire_decode(r)?,
            })
        }
    }

    impl WireMessage for Probe {
        const KIND: u8 = 0x7E;
    }

    fn probe() -> Probe {
        Probe {
            id: u64::MAX - 3,
            label: "β-channel".into(),
            samples: vec![0.0, -1.5, f64::MIN_POSITIVE, 1e300],
            note: Some("fine".into()),
            flag: true,
        }
    }

    #[test]
    fn message_round_trips() {
        let encoded = encode_message(&probe());
        let decoded: Probe = decode_message(&encoded).expect("decodes");
        assert_eq!(decoded, probe());
    }

    #[test]
    fn layout_is_pinned_byte_for_byte() {
        // The envelope layout must never drift: len/crc/kind header,
        // version byte, then the root value. Pin it against an
        // explicitly constructed expectation.
        let encoded = encode_message(&42u64);
        let mut body = vec![0x7Fu8, WIRE_VERSION];
        body.extend_from_slice(&42u64.to_le_bytes());
        let mut expected = Vec::new();
        expected.extend_from_slice(&(body.len() as u32).to_le_bytes());
        expected.extend_from_slice(&crc32(&body).to_le_bytes());
        expected.extend_from_slice(&body);
        assert_eq!(encoded, expected);
        assert_eq!(encoded.len(), FRAME_OVERHEAD + 1 + 8);
    }

    impl WireMessage for u64 {
        const KIND: u8 = 0x7F;
    }

    #[test]
    fn traced_message_round_trips_with_its_trace() {
        let encoded = encode_message_traced(&probe(), 0xDEAD_BEEF);
        let (decoded, trace) = decode_message_traced::<Probe>(&encoded).expect("decodes");
        assert_eq!(decoded, probe());
        assert_eq!(trace, Some(0xDEAD_BEEF));
    }

    #[test]
    fn traced_layout_is_pinned_byte_for_byte() {
        // The traced twin kind carries `[version][trace u64 LE][value]`.
        let encoded = encode_message_traced(&42u64, 0x0102_0304_0506_0708);
        let mut body = vec![0x7Fu8 | TRACED_KIND_BIT, WIRE_VERSION];
        body.extend_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        body.extend_from_slice(&42u64.to_le_bytes());
        let mut expected = Vec::new();
        expected.extend_from_slice(&(body.len() as u32).to_le_bytes());
        expected.extend_from_slice(&crc32(&body).to_le_bytes());
        expected.extend_from_slice(&body);
        assert_eq!(encoded, expected);
    }

    #[test]
    fn zero_trace_encodes_the_plain_byte_identical_envelope() {
        assert_eq!(encode_message_traced(&probe(), 0), encode_message(&probe()));
    }

    #[test]
    fn traced_decoder_accepts_pre_trace_context_frames() {
        // Envelope backward compatibility: a frame from a peer that has
        // never heard of trace context decodes as (value, None).
        let legacy = encode_message(&probe());
        let (decoded, trace) = decode_message_traced::<Probe>(&legacy).expect("decodes");
        assert_eq!(decoded, probe());
        assert_eq!(trace, None);
    }

    #[test]
    fn plain_decoder_rejects_traced_frames_as_an_unknown_kind() {
        // Forward direction of the evolution policy: an old peer sees a
        // clean WrongKind, never a mis-decoded value.
        let traced = encode_message_traced(&probe(), 9);
        let err = decode_message::<Probe>(&traced).expect_err("unknown kind to old peers");
        assert_eq!(
            err,
            WireError::WrongKind {
                expected: Probe::KIND,
                found: Probe::KIND | TRACED_KIND_BIT,
            }
        );
    }

    #[test]
    fn traced_frame_with_zero_trace_id_is_invalid() {
        // Hand-frame a traced-kind payload claiming trace 0 (reserved).
        let mut w = Writer::new();
        w.put_u8(WIRE_VERSION);
        w.put_u64(0);
        42u64.wire_encode(&mut w);
        let bytes = frame::frame_to_vec(u64::KIND | TRACED_KIND_BIT, &w.into_bytes());
        assert!(matches!(
            decode_message_traced::<u64>(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn wrong_kind_and_version_are_rejected() {
        let encoded = encode_message(&7u64);
        let err = decode_message::<Probe>(&encoded).expect_err("wrong kind");
        assert_eq!(
            err,
            WireError::WrongKind {
                expected: Probe::KIND,
                found: u64::KIND
            }
        );

        // Re-frame the payload with a bumped version byte.
        let (kind, payload) = crate::frame::decode_frame(&encoded).expect("frame");
        let mut forged = payload.to_vec();
        forged[0] = WIRE_VERSION + 1;
        let reframed = crate::frame::frame_to_vec(kind, &forged);
        let err = decode_message::<u64>(&reframed).expect_err("bad version");
        assert_eq!(
            err,
            WireError::UnsupportedVersion {
                version: WIRE_VERSION + 1
            }
        );
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let encoded = encode_message(&7u64);
        let (kind, payload) = crate::frame::decode_frame(&encoded).expect("frame");
        let mut padded = payload.to_vec();
        padded.push(0);
        let reframed = crate::frame::frame_to_vec(kind, &padded);
        assert_eq!(
            decode_message::<u64>(&reframed),
            Err(WireError::TrailingBytes)
        );
    }

    #[test]
    fn every_truncation_and_bit_flip_errors_cleanly() {
        let encoded = encode_message(&probe());
        for cut in 0..encoded.len() {
            assert!(
                decode_message::<Probe>(&encoded[..cut]).is_err(),
                "cut {cut}"
            );
        }
        for byte in 0..encoded.len() {
            let mut bad = encoded.clone();
            bad[byte] ^= 0x10;
            // A flip may surface as any WireError; it must never panic
            // and never silently decode to the original value.
            if let Ok(decoded) = decode_message::<Probe>(&bad) {
                panic!("flip at {byte} decoded to {decoded:?}");
            }
        }
    }

    #[test]
    fn forged_vec_count_cannot_force_allocation() {
        // A count prefix claiming u32::MAX elements on a short payload
        // must fail before reserving anything.
        let mut w = Writer::new();
        w.put_u8(WIRE_VERSION);
        w.put_u64(1); // id
        w.put_str("x"); // label
        w.put_u32(u32::MAX); // forged sample count
        let framed = crate::frame::frame_to_vec(Probe::KIND, &w.into_bytes());
        assert_eq!(decode_message::<Probe>(&framed), Err(WireError::Truncated));
    }

    #[test]
    fn nan_payload_survives_binary_round_trip() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut w = Writer::new();
        weird.wire_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = f64::wire_decode(&mut r).expect("decodes");
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn format_selector_round_trips() {
        for format in [WireFormat::Json, WireFormat::Binary] {
            assert_eq!(WireFormat::from_tag(format.tag()), Some(format));
            assert_eq!(format.as_str().parse::<WireFormat>(), Ok(format));
        }
        assert_eq!(WireFormat::from_tag(9), None);
        assert!("cbor".parse::<WireFormat>().is_err());
        assert_eq!(WireFormat::default(), WireFormat::Binary);
    }

    #[test]
    fn binary_backend_implements_the_codec_trait() {
        let codec = BinaryWire;
        assert_eq!(WireCodec::<Probe>::format(&codec), WireFormat::Binary);
        let bytes = codec.encode(&probe()).expect("encodes");
        let back: Probe = codec.decode(&bytes).expect("decodes");
        assert_eq!(back, probe());
    }
}
