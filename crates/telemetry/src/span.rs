//! Request-scoped spans recorded into a fixed-capacity lock-free ring.
//!
//! A [`TraceId`] is minted once per admitted request at the gateway and
//! rides along as the request crosses layers (queue lane → worker task →
//! cloud shard → WAL → DSP). Each layer records a [`Stage`] span —
//! `(trace, stage, tag, start, end)` — into the shared [`SpanRecorder`].
//!
//! # Hot-path contract: wait-free, allocation-free
//!
//! [`SpanRecorder::record`] is the only operation on the request hot path
//! and it performs exactly one `fetch_add` (the slot claim) plus six plain
//! atomic stores into a preallocated slot. No locks, no allocation, no CAS
//! loops — a writer can neither block nor be blocked. Readers are the ones
//! who pay: [`SpanRecorder::snapshot`] walks the ring and discards slots a
//! concurrent writer tore, seqlock-style.
//!
//! # Per-slot seqlock protocol
//!
//! Every slot carries a sequence word derived from the *global* claim
//! index `i` of the writer that owns it:
//!
//! - `0` — never written,
//! - `2·i + 1` (odd) — writer `i` is mid-write,
//! - `2·i + 2` (even, ≥ 2) — writer `i`'s record is complete.
//!
//! Because two writers that ever touch the same slot claimed different
//! global indices (they are `capacity` apart), their markers never
//! collide: a reader that sees the same even sequence before and after
//! copying the payload knows exactly one complete write produced it. A
//! torn or in-flight slot is simply skipped — spans are telemetry, and
//! dropping a lapped record is the designed overwrite behaviour of a
//! bounded ring.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

/// Identifies one end-to-end request across every layer it crosses.
///
/// Minted from a process-global counter; `0` is reserved as "no trace"
/// so a zeroed ring slot can never alias a real record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

impl TraceId {
    /// Mints a fresh process-unique id.
    pub fn mint() -> Self {
        Self(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw non-zero id.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value (`None` for the reserved 0).
    pub fn from_raw(raw: u64) -> Option<Self> {
        (raw != 0).then_some(Self(raw))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// The pipeline stage a span measures, in canonical pipeline order.
///
/// Discriminants are in-process only (ring slots, sort keys) — they are
/// never serialized across a wire or into a file, so the ordering may be
/// re-derived when the pipeline grows. Sorting spans by `stage as usize`
/// yields canonical phone → gateway → cloud → standby → phone order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Phone-side request encode: serialize + frame (+ compress and
    /// fountain-encode on the one-way path).
    PhoneEncode = 0,
    /// The simulated uplink: first transmit attempt through gateway
    /// acceptance, including link retries or symbol emission.
    Uplink = 1,
    /// Fountain reassembly of a one-way upload: first surviving symbol
    /// through peeling completion.
    FountainDecode = 2,
    /// Gateway admission: shed-policy check plus lane enqueue.
    Admission = 3,
    /// Time spent parked in a gateway queue lane.
    Queue = 4,
    /// Worker service: decode + cloud round trip, end to end.
    Service = 5,
    /// Cloud shard lock: acquire through release of the write guard.
    ShardLock = 6,
    /// One WAL append (frame encode + write, including any fsync).
    WalAppend = 7,
    /// The fsync portion of a group commit, when this append paid it.
    WalFsync = 8,
    /// DSP analysis of the uploaded trace (cache misses only).
    Analysis = 9,
    /// Shipping one WAL frame to the warm standby, through its ack.
    Replication = 10,
    /// Phone-side decode of the reply envelope.
    ReplyDecode = 11,
}

/// Every stage, in pipeline order.
pub const STAGES: [Stage; 12] = [
    Stage::PhoneEncode,
    Stage::Uplink,
    Stage::FountainDecode,
    Stage::Admission,
    Stage::Queue,
    Stage::Service,
    Stage::ShardLock,
    Stage::WalAppend,
    Stage::WalFsync,
    Stage::Analysis,
    Stage::Replication,
    Stage::ReplyDecode,
];

impl Stage {
    /// Stable snake_case name used in JSON dumps and pretty-printing.
    pub fn name(self) -> &'static str {
        match self {
            Stage::PhoneEncode => "phone_encode",
            Stage::Uplink => "uplink",
            Stage::FountainDecode => "fountain_decode",
            Stage::Admission => "admission",
            Stage::Queue => "queue",
            Stage::Service => "service",
            Stage::ShardLock => "shard_lock",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::Analysis => "analysis",
            Stage::Replication => "replication",
            Stage::ReplyDecode => "reply_decode",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        STAGES.into_iter().find(|s| *s as u8 == v)
    }
}

/// One completed span copied out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// Which pipeline stage it measures.
    pub stage: Stage,
    /// Stage-specific tag: lane or shard index, 0 when meaningless.
    pub tag: u32,
    /// Start, in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the recorder's epoch (≥ `start_ns`).
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One preallocated ring slot. Every field is an atomic so concurrent
/// writer/reader races read stale or torn *values*, never undefined
/// behaviour; the sequence word decides whether the copy is coherent.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    stage_tag: AtomicU64, // stage in the low 8 bits, tag in the high 32
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            stage_tag: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
        }
    }
}

/// Default ring capacity: 4096 spans ≈ 400 complete 10-stage requests,
/// comfortably more than a full fleet run of in-flight work between
/// snapshot reads, at 40 B/slot ≈ 160 KiB resident.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A fixed-capacity lock-free multi-writer span ring.
#[derive(Debug)]
pub struct SpanRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    epoch: Instant,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl SpanRecorder {
    /// A ring holding `capacity` spans (rounded up to a power of two,
    /// minimum 2) before the oldest are overwritten.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        Self {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever claimed (recorded minus none — claims never fail).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The instant all span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds from the recorder epoch to `t` (0 if `t` predates it).
    pub fn nanos_at(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Records one completed span. Wait-free: one `fetch_add` plus plain
    /// atomic stores into a preallocated slot — no lock, no allocation,
    /// no retry loop. Safe to call from any thread or task.
    pub fn record(&self, trace: TraceId, stage: Stage, tag: u32, start: Instant, end: Instant) {
        let start_ns = self.nanos_at(start);
        let end_ns = self.nanos_at(end).max(start_ns);
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx & self.mask) as usize];
        // Claim: odd marker tells readers the payload is in flux. Release
        // so the marker is visible before any payload store lands.
        slot.seq.store(2 * idx + 1, Ordering::Release);
        slot.trace.store(trace.get(), Ordering::Relaxed);
        slot.stage_tag.store(
            u64::from(stage as u8) | (u64::from(tag) << 32),
            Ordering::Relaxed,
        );
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.end_ns.store(end_ns, Ordering::Relaxed);
        // Publish: even marker, Release so payload stores happen-before it.
        slot.seq.store(2 * idx + 2, Ordering::Release);
    }

    /// Copies every coherent span out of the ring, oldest claim first.
    /// Slots mid-write or lapped during the copy are skipped.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<(u64, SpanRecord)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 == 1 {
                continue; // never written, or mid-write
            }
            let trace = slot.trace.load(Ordering::Relaxed);
            let stage_tag = slot.stage_tag.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed);
            // Order the payload loads before the confirming sequence load.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 {
                continue; // lapped mid-copy: discard the torn read
            }
            let (Some(trace), Some(stage)) = (
                TraceId::from_raw(trace),
                Stage::from_u8((stage_tag & 0xff) as u8),
            ) else {
                continue;
            };
            out.push((
                seq1,
                SpanRecord {
                    trace,
                    stage,
                    tag: (stage_tag >> 32) as u32,
                    start_ns,
                    end_ns,
                },
            ));
        }
        out.sort_by_key(|&(seq, _)| seq);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Every retained span for `trace`, in claim order.
    pub fn spans_for(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.snapshot()
            .into_iter()
            .filter(|r| r.trace == trace)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.get(), 0);
        assert_eq!(TraceId::from_raw(0), None);
        assert_eq!(TraceId::from_raw(a.get()), Some(a));
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in STAGES {
            assert_eq!(Stage::from_u8(stage as u8), Some(stage));
            assert!(!stage.name().is_empty());
        }
        assert_eq!(Stage::from_u8(200), None);
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let r = SpanRecorder::with_capacity(16);
        let t = TraceId::mint();
        let start = Instant::now();
        let end = start + Duration::from_micros(250);
        r.record(t, Stage::Queue, 3, start, end);
        r.record(t, Stage::Service, 3, end, end + Duration::from_micros(100));
        let spans = r.spans_for(t);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Queue);
        assert_eq!(spans[0].tag, 3);
        assert_eq!(spans[0].duration_ns(), 250_000);
        assert_eq!(spans[1].stage, Stage::Service);
        assert!(
            spans[1].start_ns >= spans[0].start_ns,
            "claim order is time order here"
        );
    }

    #[test]
    fn end_before_start_clamps_to_zero_duration() {
        let r = SpanRecorder::with_capacity(4);
        let t = TraceId::mint();
        let now = Instant::now();
        r.record(t, Stage::Admission, 0, now + Duration::from_secs(1), now);
        let spans = r.spans_for(t);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration_ns(), 0);
        assert_eq!(spans[0].end_ns, spans[0].start_ns);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let r = SpanRecorder::with_capacity(4);
        let now = Instant::now();
        let traces: Vec<TraceId> = (0..6).map(|_| TraceId::mint()).collect();
        for &t in &traces {
            r.record(t, Stage::Admission, 0, now, now);
        }
        assert_eq!(r.recorded(), 6);
        let spans = r.snapshot();
        assert_eq!(spans.len(), 4, "capacity bounds retention");
        let kept: Vec<TraceId> = spans.iter().map(|s| s.trace).collect();
        assert_eq!(kept, traces[2..].to_vec(), "oldest two were lapped");
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SpanRecorder::with_capacity(5).capacity(), 8);
        assert_eq!(SpanRecorder::with_capacity(0).capacity(), 2);
        assert_eq!(SpanRecorder::default().capacity(), DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn concurrent_writers_and_reader_never_yield_torn_records() {
        let r = Arc::new(SpanRecorder::with_capacity(64));
        let epoch = Instant::now();
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 10_000;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    let t = TraceId::mint();
                    for i in 0..PER_WRITER {
                        // Each writer stamps matching start/end so any
                        // cross-writer mix-up shows as start != end.
                        let at = epoch + Duration::from_nanos(w * PER_WRITER + i);
                        r.record(t, Stage::Queue, w as u32, at, at);
                    }
                });
            }
            let r = Arc::clone(&r);
            scope.spawn(move || {
                for _ in 0..500 {
                    for span in r.snapshot() {
                        assert_eq!(
                            span.start_ns, span.end_ns,
                            "a coherent slot is one writer's record, whole"
                        );
                        assert_eq!(span.stage, Stage::Queue);
                        assert!(span.tag < WRITERS as u32);
                    }
                }
            });
        });
        assert_eq!(r.recorded(), WRITERS * PER_WRITER);
        assert_eq!(
            r.snapshot().len(),
            64,
            "quiesced full ring is fully coherent"
        );
    }
}
