//! Wait-free instruments: counters, gauges, and latency histograms.
//!
//! Every mutation is a single relaxed atomic RMW — the counters are
//! independent monotone tallies with no cross-counter invariant, so
//! stronger orderings would buy nothing. Readers take point-in-time
//! snapshots after quiescing (tests, exposition) or accept the usual
//! snapshot skew (live dashboards).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins level with a monotone high-water helper.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the level to `v` if larger (high-water mark semantics).
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two latency buckets: 1 µs up to ~1.1 hours.
const BUCKETS: usize = 32;

/// A histogram of durations in power-of-two microsecond buckets.
///
/// Bucket `i` counts samples with `duration_us < 2^i` (that were not
/// already counted by a smaller bucket); the last bucket absorbs overflow.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one wall-clock duration.
    pub fn record(&self, duration: Duration) {
        self.record_us(duration.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one simulated duration expressed in seconds.
    pub fn record_seconds(&self, seconds: f64) {
        let us = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e6).min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.record_us(us);
    }

    /// Records one duration expressed in whole microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    ///
    /// Concurrent recorders may land between the field loads, so a live
    /// snapshot can be mid-update (e.g. a bucket bumped but `count` not
    /// yet); every field is still a value some prefix of the record calls
    /// produced, and a quiesced snapshot is exact.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    buckets: [u64; BUCKETS],
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, in microseconds.
    pub total_us: u64,
    /// Largest sample, in microseconds.
    pub max_us: u64,
}

impl LatencySnapshot {
    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Upper bound (µs) of the bucket containing the `p`-th percentile
    /// (`0.0..=1.0`); 0 when empty. Resolution is the bucket width, which
    /// is all queue-tuning needs.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Non-empty `(bucket_upper_bound_us, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << i, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7, "record_max never lowers the level");
        g.record_max(11);
        assert_eq!(g.get(), 11);
        g.set(2);
        assert_eq!(g.get(), 2, "set overwrites unconditionally");
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 100, 1000, 1_000_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.max_us, 1_000_000);
        assert_eq!(s.total_us, 1 + 2 + 3 + 100 + 1000 + 1_000_000);
        // p50 of 6 samples is the 3rd smallest (3 µs → bucket ≤ 4 µs).
        assert_eq!(s.percentile_us(0.5), 4);
        assert!(s.percentile_us(1.0) >= 1_000_000);
        assert!(!s.nonzero_buckets().is_empty());
    }

    #[test]
    fn simulated_seconds_are_recorded_as_microseconds() {
        let h = LatencyHistogram::new();
        h.record_seconds(0.05);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.total_us, 50_000);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero_everywhere() {
        let s = LatencyHistogram::new().snapshot();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile_us(p), 0, "p={p}");
        }
        assert_eq!(s.count, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.mean_us(), 0.0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let h = LatencyHistogram::new();
        for us in [1u64, 10, 100] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        // p ≤ 0 clamps to 0.0, whose rank still floors at the 1st sample.
        assert_eq!(s.percentile_us(0.0), s.percentile_us(-3.0));
        assert_eq!(s.percentile_us(0.0), 2, "1 µs lands in the ≤2 µs bucket");
        // p ≥ 1 clamps to 1.0: the bucket holding the maximum sample.
        assert_eq!(s.percentile_us(1.0), s.percentile_us(42.0));
        assert_eq!(s.percentile_us(1.0), 128, "100 µs lands in ≤128 µs");
        // NaN degenerates to rank 1 (the clamp's floor), never a panic.
        assert_eq!(s.percentile_us(f64::NAN), 2);
    }

    #[test]
    fn nonpositive_and_nonfinite_seconds_record_as_zero() {
        let h = LatencyHistogram::new();
        h.record_seconds(-1.0);
        h.record_seconds(f64::NAN);
        h.record_seconds(f64::INFINITY);
        let s = h.snapshot();
        // None of them is a finite positive duration, so all clamp to 0
        // instead of wrapping or poisoning the totals.
        assert_eq!(s.count, 3);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.total_us, 0);
        assert_eq!(s.buckets[0], 3, "all three clamp to the 0 bucket");
    }

    #[test]
    fn saturated_top_bucket_percentiles_pin_to_the_overflow_bound() {
        let h = LatencyHistogram::new();
        // u64::MAX µs has 0 leading zeros → bucket index 64, clamped into
        // the final overflow bucket. Pile every sample there.
        for _ in 0..100 {
            h.record_us(u64::MAX);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, u64::MAX);
        let top = 1u64 << (BUCKETS - 1);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(
                s.percentile_us(p),
                top,
                "every rank resolves to the overflow bucket's bound at p={p}"
            );
        }
        assert_eq!(s.nonzero_buckets(), vec![(top, 100)]);
        // The bound understates the true samples — that is the documented
        // contract: resolution is the bucket width, and the top bucket
        // absorbs everything past ~36 minutes.
        assert!(s.percentile_us(1.0) < s.max_us);
    }

    #[test]
    fn sub_microsecond_records_land_in_the_zero_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_nanos(999));
        h.record(Duration::from_nanos(0));
        let s = h.snapshot();
        // All three truncate to 0 µs: bucket 0, upper bound 1 µs.
        assert_eq!(s.count, 3);
        assert_eq!(s.total_us, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.nonzero_buckets(), vec![(1, 3)]);
        assert_eq!(s.percentile_us(0.5), 1);
        assert_eq!(s.percentile_us(1.0), 1);
    }

    #[test]
    fn concurrent_record_vs_snapshot_hammer() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record_us(t * 1_000 + i);
                    }
                });
            }
            // Reader hammers snapshots mid-flight: every intermediate copy
            // must stay internally bounded and never panic.
            let h = Arc::clone(&h);
            scope.spawn(move || {
                for _ in 0..2_000 {
                    let s = h.snapshot();
                    assert!(s.count <= THREADS * PER_THREAD);
                    let bucket_sum: u64 = s.nonzero_buckets().iter().map(|&(_, n)| n).sum();
                    assert!(bucket_sum <= THREADS * PER_THREAD);
                    let _ = s.percentile_us(0.99);
                    let _ = s.mean_us();
                }
            });
        });
        // Quiesced: the final snapshot is exact.
        let s = h.snapshot();
        assert_eq!(s.count, THREADS * PER_THREAD);
        let bucket_sum: u64 = s.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_sum, THREADS * PER_THREAD);
        let expected_total: u64 = (0..THREADS)
            .map(|t| (0..PER_THREAD).map(|i| t * 1_000 + i).sum::<u64>())
            .sum();
        assert_eq!(s.total_us, expected_total);
        assert_eq!(s.max_us, (THREADS - 1) * 1_000 + PER_THREAD - 1);
    }
}
