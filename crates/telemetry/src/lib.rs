//! # medsen-telemetry
//!
//! Request-scoped tracing and a unified metrics registry for the MedSen
//! serving stack, built on std alone (no vendored stubs, no external
//! crates — this crate sits at the bottom of the dependency graph so
//! every layer can instrument itself).
//!
//! Three pieces, deliberately decoupled:
//!
//! - **Spans** ([`span`], [`context`], [`sampler`]): a [`TraceId`]
//!   minted once per request on the phone, carried across the wire, and
//!   propagated via thread-local context (and a [`TaskSlot`] for async
//!   tasks), recorded per [`Stage`] into the lock-free [`SpanRecorder`]
//!   ring — optionally through a head-sampling [`Sampler`] whose keep
//!   probability adapts to overload. The recording path is wait-free and
//!   allocation-free — see the module docs for the seqlock protocol.
//! - **Metrics** ([`metrics`], [`registry`]): [`Counter`]/[`Gauge`]/
//!   [`LatencyHistogram`] instruments registered under stable dotted
//!   names in a [`Registry`]; hot-path mutation is one relaxed atomic.
//! - **Exposition** ([`export`], [`exemplar`]): line-oriented
//!   `name value` text, a JSON-lines span dump, and the K worst
//!   end-to-end traces with per-stage breakdowns ([`Exemplars`]).

#![forbid(unsafe_code)]

pub mod context;
pub mod exemplar;
pub mod export;
pub mod metrics;
pub mod registry;
pub mod sampler;
pub mod span;

pub use context::{current, install, record, record_since, ActiveTrace, ContextGuard, TaskSlot};
pub use exemplar::{Exemplar, Exemplars, SlowTrace, DEFAULT_EXEMPLARS};
pub use export::{parse_text_exposition, spans_json_lines, text_exposition};
pub use metrics::{Counter, Gauge, LatencyHistogram, LatencySnapshot};
pub use registry::{MetricValue, Registry, RegistrySnapshot};
pub use sampler::{OverloadSignal, Sampler, SamplerMode, MIN_KEEP_PERMILLE};
pub use span::{SpanRecord, SpanRecorder, Stage, TraceId, DEFAULT_RING_CAPACITY, STAGES};
