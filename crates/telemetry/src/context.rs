//! Trace-context propagation: thread-local for synchronous code, a
//! swappable [`TaskSlot`] for async tasks.
//!
//! The gateway mints a [`TraceId`] at admission and installs an
//! [`ActiveTrace`] around each request's synchronous handling; the layers
//! below (shard locks, WAL appends, DSP) call the free functions
//! [`record`]/[`record_since`], which are silent no-ops when no context is
//! installed — instrumented code needs no feature flags and pays one
//! thread-local read when telemetry is off.
//!
//! Async executors cannot rely on a bare thread-local (a task migrates
//! between worker threads and interleaves with other tasks on the same
//! thread), so the runtime parks each task's context in a [`TaskSlot`]:
//! swapped into the polling thread's local slot before `poll`, swapped
//! back out after. Context installed inside the task then genuinely
//! follows the task, not the thread.

use crate::sampler::Sampler;
use crate::span::{SpanRecorder, Stage, TraceId};
use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The trace identity + recorder pair a piece of code records spans into.
///
/// When a [`Sampler`] is attached, every span goes through its funnel:
/// the trace-level head verdict (`sampled_in`, decided once at
/// construction) plus the always-keep-slow override decide whether the
/// span reaches the ring, and the attempt is counted either way so the
/// `recorded + sampled_out == admitted` ledger stays exact.
#[derive(Debug, Clone)]
pub struct ActiveTrace {
    /// The request this code is running on behalf of.
    pub id: TraceId,
    /// Where its spans go.
    pub recorder: Arc<SpanRecorder>,
    /// The sampling funnel; `None` records unconditionally.
    pub sampler: Option<Arc<Sampler>>,
    /// This trace's head-sampling verdict, decided at mint/join time.
    pub sampled_in: bool,
}

impl ActiveTrace {
    /// A context that records every span — the no-sampler fast path.
    pub fn unsampled(id: TraceId, recorder: Arc<SpanRecorder>) -> Self {
        Self {
            id,
            recorder,
            sampler: None,
            sampled_in: true,
        }
    }

    /// A context routed through `sampler`'s funnel; the whole-trace head
    /// verdict is drawn here, deterministically in `id`, so every tier
    /// that joins the same trace reaches the same verdict.
    pub fn sampled(id: TraceId, recorder: Arc<SpanRecorder>, sampler: Arc<Sampler>) -> Self {
        let sampled_in = sampler.admit_trace(id);
        Self {
            id,
            recorder,
            sampler: Some(sampler),
            sampled_in,
        }
    }

    /// Records one completed span through the sampling funnel (or
    /// straight to the ring when no sampler is attached).
    pub fn record(&self, stage: Stage, tag: u32, start: Instant, end: Instant) {
        if let Some(sampler) = &self.sampler {
            let duration_ns = end
                .saturating_duration_since(start)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            if !sampler.offer(self.sampled_in, duration_ns) {
                return;
            }
        }
        self.recorder.record(self.id, stage, tag, start, end);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Installs `trace` as the thread's active context until the returned
/// guard drops, then restores whatever was active before (contexts nest).
#[must_use = "the context is uninstalled when the guard drops"]
pub fn install(trace: ActiveTrace) -> ContextGuard {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(trace));
    ContextGuard { previous }
}

/// The thread's active context, if any.
pub fn current() -> Option<ActiveTrace> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Records a completed span against the active context (through its
/// sampling funnel, if any); no-op without a context.
pub fn record(stage: Stage, tag: u32, start: Instant, end: Instant) {
    CURRENT.with(|c| {
        if let Some(active) = c.borrow().as_ref() {
            active.record(stage, tag, start, end);
        }
    });
}

/// Records a span from `start` to now against the active context.
pub fn record_since(stage: Stage, tag: u32, start: Instant) {
    record(stage, tag, start, Instant::now());
}

/// Restores the previously active context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    previous: Option<ActiveTrace>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT.with(|c| *c.borrow_mut() = previous);
    }
}

/// Parks an async task's trace context between polls.
///
/// The executor calls [`TaskSlot::enter`] around every `poll`: the slot's
/// stored context becomes the thread's active context for the duration of
/// the poll, and whatever is active when the poll returns (the task may
/// have installed or dropped contexts) is parked back into the slot. The
/// polling thread's own context is untouched across the swap. The slot's
/// mutex is uncontended by construction — a task is polled by one worker
/// at a time — so this is two cheap lock acquisitions per poll, well off
/// the span-recording hot path.
#[derive(Debug, Default)]
pub struct TaskSlot {
    parked: Mutex<Option<ActiveTrace>>,
}

impl TaskSlot {
    /// An empty slot: the task starts with no inherited context.
    pub fn new() -> Self {
        Self::default()
    }

    /// A slot seeded with the spawning thread's active context, so a task
    /// spawned mid-request keeps recording against that request.
    pub fn capture() -> Self {
        Self {
            parked: Mutex::new(current()),
        }
    }

    /// Swaps the parked context in as the thread's active context until
    /// the guard drops, which parks the then-active context back here.
    #[must_use = "the task context is parked again when the guard drops"]
    pub fn enter(&self) -> SlotGuard<'_> {
        let parked = self.parked.lock().map(|mut p| p.take()).unwrap_or(None);
        let previous = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), parked));
        SlotGuard {
            slot: self,
            previous,
        }
    }
}

/// Parks the active context back into the task's slot on drop.
#[derive(Debug)]
pub struct SlotGuard<'a> {
    slot: &'a TaskSlot,
    previous: Option<ActiveTrace>,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let active =
            CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), self.previous.take()));
        if let Ok(mut parked) = self.slot.parked.lock() {
            *parked = active;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanRecorder, Stage};
    use std::time::Duration;

    fn trace_on(recorder: &Arc<SpanRecorder>) -> ActiveTrace {
        ActiveTrace::unsampled(TraceId::mint(), Arc::clone(recorder))
    }

    #[test]
    fn sampled_context_funnels_and_balances_the_ledger() {
        use crate::sampler::{Sampler, SamplerMode};
        let recorder = Arc::new(SpanRecorder::with_capacity(8));
        let sampler = Arc::new(Sampler::new(SamplerMode::Fixed(0)));
        let t = ActiveTrace::sampled(TraceId::mint(), Arc::clone(&recorder), Arc::clone(&sampler));
        assert!(!t.sampled_in, "permille 0 loses the head draw");
        let _g = install(t.clone());
        let now = Instant::now();
        record(Stage::Service, 0, now, now); // fast: sampled out
        record(Stage::Analysis, 0, now, now + Duration::from_secs(1)); // slow: kept
        assert_eq!(
            recorder.recorded(),
            1,
            "only the slow span reached the ring"
        );
        assert_eq!(sampler.admitted(), 2);
        assert_eq!(sampler.sampled_out(), 1);
        assert_eq!(
            recorder.recorded() + sampler.sampled_out(),
            sampler.admitted()
        );
    }

    #[test]
    fn record_without_context_is_a_no_op() {
        assert!(current().is_none());
        record_since(Stage::Service, 0, Instant::now());
        // Nothing to assert against — the point is it neither panics nor
        // needs a recorder.
    }

    #[test]
    fn install_records_and_restores_nested_contexts() {
        let recorder = Arc::new(SpanRecorder::with_capacity(8));
        let outer = trace_on(&recorder);
        let inner = trace_on(&recorder);
        {
            let _g1 = install(outer.clone());
            assert_eq!(current().unwrap().id, outer.id);
            {
                let _g2 = install(inner.clone());
                assert_eq!(current().unwrap().id, inner.id);
                record(Stage::Analysis, 7, Instant::now(), Instant::now());
            }
            assert_eq!(
                current().unwrap().id,
                outer.id,
                "inner guard restored outer"
            );
        }
        assert!(current().is_none(), "outer guard restored the empty state");
        let spans = recorder.spans_for(inner.id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::Analysis);
        assert_eq!(spans[0].tag, 7);
        assert!(recorder.spans_for(outer.id).is_empty());
    }

    #[test]
    fn record_since_measures_forward_from_start() {
        let recorder = Arc::new(SpanRecorder::with_capacity(8));
        let t = trace_on(&recorder);
        let _g = install(t.clone());
        let start = Instant::now();
        std::thread::sleep(Duration::from_micros(500));
        record_since(Stage::Queue, 1, start);
        let spans = recorder.spans_for(t.id);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].duration_ns() >= 500_000);
    }

    #[test]
    fn task_slot_parks_context_between_enters() {
        let recorder = Arc::new(SpanRecorder::with_capacity(8));
        let task_trace = trace_on(&recorder);
        let slot = TaskSlot::new();
        // Poll 1: the task installs a context and "yields" while holding
        // none of our guards — the slot parks it.
        {
            let _poll = slot.enter();
            assert!(current().is_none(), "fresh slot starts empty");
            let g = install(task_trace.clone());
            std::mem::forget(g); // context intentionally outlives the poll
        }
        assert!(
            current().is_none(),
            "the task's context does not leak onto the worker thread"
        );
        // Poll 2, possibly on another thread: the context is back.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _poll = slot.enter();
                assert_eq!(current().unwrap().id, task_trace.id);
                record(Stage::Service, 0, Instant::now(), Instant::now());
            });
        });
        assert_eq!(recorder.spans_for(task_trace.id).len(), 1);
    }

    #[test]
    fn task_slot_preserves_the_worker_threads_own_context() {
        let recorder = Arc::new(SpanRecorder::with_capacity(8));
        let worker_trace = trace_on(&recorder);
        let slot = TaskSlot::capture();
        let _worker = install(worker_trace.clone());
        {
            let _poll = slot.enter();
            // capture() happened before the worker context existed → empty.
            assert!(current().is_none());
        }
        assert_eq!(
            current().unwrap().id,
            worker_trace.id,
            "worker context restored after the poll"
        );
    }

    #[test]
    fn capture_seeds_the_slot_with_the_spawners_context() {
        let recorder = Arc::new(SpanRecorder::with_capacity(8));
        let spawner = trace_on(&recorder);
        let _g = install(spawner.clone());
        let slot = TaskSlot::capture();
        drop(_g);
        let _poll = slot.enter();
        assert_eq!(current().unwrap().id, spawner.id);
    }
}
