//! Head sampling with an overload-driven feedback controller.
//!
//! At million-user simulated load the span ring laps itself between
//! scrapes and every record is a (cheap but nonzero) `fetch_add` plus
//! five stores on the request hot path. The [`Sampler`] keeps the ring
//! useful under that load by deciding **once per trace, at mint time**
//! whether the whole request records spans — so a sampled-out request
//! pays one hash per span attempt and nothing else — while a slow-span
//! override still captures the tail outliers the exemplar reservoir
//! cares about even when their trace lost the head draw.
//!
//! # The exact reconciliation invariant
//!
//! Every span attempt in the process funnels through
//! [`Sampler::offer`], which atomically counts the attempt as
//! `admitted` and then either lets it reach the ring (`recorded`) or
//! counts it `sampled_out`. Because the funnel is the only path to the
//! ring, the ledger
//!
//! ```text
//! telemetry.spans_recorded + telemetry.spans_sampled_out
//!     == telemetry.spans_admitted
//! ```
//!
//! holds **exactly** at any quiescent point — not approximately, not
//! eventually. The soak harness asserts it after a million-request
//! overload storm.
//!
//! # The control loop
//!
//! [`Sampler::observe`] is an AIMD (additive-increase,
//! multiplicative-decrease) controller fed two overload signals the
//! gateway already measures:
//!
//! - **ring churn** — spans claimed since the last observation relative
//!   to ring capacity. Churn ≥ ½ means a scrape cadence this long loses
//!   history: halve the keep probability.
//! - **refusals** — shed + rate-limited submissions since the last
//!   observation. Any refusal means the gateway is past saturation and
//!   tracing throughput should yield: halve.
//!
//! Otherwise the keep probability recovers by a fixed additive step per
//! observation, up to keep-everything. The decision is deterministic in
//! the trace id (a splitmix64 draw), so every tier that sees the same
//! trace — phone, gateway, fountain reassembly, workers — reaches the
//! same verdict without coordination.

use crate::span::TraceId;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// How the gateway samples spans. `Always` is the zero-overhead
/// PR 5 behaviour (no sampler in the path at all); `Fixed` pins the
/// keep probability; `Adaptive` lets the AIMD controller drive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerMode {
    /// Record every span of every trace; no funnel, no counters.
    Always,
    /// Head-sample at a fixed keep probability in permille (0..=1000).
    Fixed(u32),
    /// Feedback-controlled keep probability: AIMD on overload signals.
    Adaptive,
}

/// Keep probability ceiling (and the `Always`-equivalent fixed setting).
pub const KEEP_ALL_PERMILLE: u32 = 1000;

/// Adaptive floor: never sample below 1-in-125 so a storm still leaves
/// a statistically useful trickle of complete traces in the ring.
pub const MIN_KEEP_PERMILLE: u32 = 8;

/// Additive recovery step per calm observation window.
pub const RECOVERY_STEP_PERMILLE: u32 = 64;

/// Ring-churn fraction (per observation window) above which the
/// controller treats the ring as lapping and halves the keep rate.
pub const CHURN_DECREASE_THRESHOLD: f64 = 0.5;

/// Spans at least this long are always recorded, even when their trace
/// lost the head draw — the p99 tail is exactly what overload debugging
/// needs and exactly what uniform head sampling would starve.
pub const DEFAULT_SLOW_KEEP: Duration = Duration::from_millis(2);

/// One overload observation handed to the feedback controller:
/// deltas are computed internally against the previous observation.
#[derive(Debug, Clone, Copy)]
pub struct OverloadSignal {
    /// Total spans ever claimed by the ring (monotonic).
    pub recorded_total: u64,
    /// Total shed + rate-limited refusals (monotonic).
    pub refused_total: u64,
    /// Ring capacity in slots.
    pub ring_capacity: u64,
}

/// Head sampler + feedback controller + reconciliation ledger.
///
/// All state is atomics; every operation is wait-free and the type is
/// `Sync` — one instance is shared by every tier of a gateway.
#[derive(Debug)]
pub struct Sampler {
    mode: SamplerMode,
    keep_permille: AtomicU32,
    slow_keep_ns: AtomicU64,
    admitted: AtomicU64,
    sampled_out: AtomicU64,
    last_recorded: AtomicU64,
    last_refused: AtomicU64,
}

impl Sampler {
    /// A sampler in the given mode. `Fixed` clamps to 0..=1000;
    /// `Adaptive` starts at keep-everything and lets observations
    /// pull it down.
    pub fn new(mode: SamplerMode) -> Self {
        let initial = match mode {
            SamplerMode::Always => KEEP_ALL_PERMILLE,
            SamplerMode::Fixed(p) => p.min(KEEP_ALL_PERMILLE),
            SamplerMode::Adaptive => KEEP_ALL_PERMILLE,
        };
        Self {
            mode,
            keep_permille: AtomicU32::new(initial),
            slow_keep_ns: AtomicU64::new(DEFAULT_SLOW_KEEP.as_nanos() as u64),
            admitted: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            last_recorded: AtomicU64::new(0),
            last_refused: AtomicU64::new(0),
        }
    }

    /// Overrides the always-keep slow-span floor (`None` disables it).
    pub fn set_slow_keep(&self, floor: Option<Duration>) {
        let ns = floor.map_or(u64::MAX, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.slow_keep_ns.store(ns, Ordering::Relaxed);
    }

    /// The mode this sampler was built with.
    pub fn mode(&self) -> SamplerMode {
        self.mode
    }

    /// Current keep probability in permille.
    pub fn keep_permille(&self) -> u32 {
        self.keep_permille.load(Ordering::Relaxed)
    }

    /// Span attempts that reached the funnel.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Span attempts the head decision dropped.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out.load(Ordering::Relaxed)
    }

    /// The whole-trace head decision: deterministic in the trace id, so
    /// every tier that joins this trace independently agrees. Does not
    /// touch the ledger — only [`Sampler::offer`] does.
    pub fn admit_trace(&self, trace: TraceId) -> bool {
        let keep = self.keep_permille.load(Ordering::Relaxed);
        if keep >= KEEP_ALL_PERMILLE {
            return true;
        }
        trace_draw(trace) < keep
    }

    /// The per-span funnel: counts the attempt, then returns whether it
    /// may reach the ring. `sampled_in` is the trace's head verdict;
    /// a span at or above the slow floor is kept regardless.
    pub fn offer(&self, sampled_in: bool, duration_ns: u64) -> bool {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let keep = sampled_in || duration_ns >= self.slow_keep_ns.load(Ordering::Relaxed);
        if !keep {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
        }
        keep
    }

    /// Feeds the AIMD controller one observation of the monotonic
    /// overload totals; a no-op except in `Adaptive` mode. Returns the
    /// keep probability in force after the observation.
    pub fn observe(&self, signal: OverloadSignal) -> u32 {
        if self.mode != SamplerMode::Adaptive {
            return self.keep_permille();
        }
        let recorded_delta = signal.recorded_total.saturating_sub(
            self.last_recorded
                .swap(signal.recorded_total, Ordering::Relaxed),
        );
        let refused_delta = signal.refused_total.saturating_sub(
            self.last_refused
                .swap(signal.refused_total, Ordering::Relaxed),
        );
        let churn = recorded_delta as f64 / signal.ring_capacity.max(1) as f64;
        let current = self.keep_permille.load(Ordering::Relaxed);
        let next = if refused_delta > 0 || churn >= CHURN_DECREASE_THRESHOLD {
            (current / 2).max(MIN_KEEP_PERMILLE)
        } else {
            current
                .saturating_add(RECOVERY_STEP_PERMILLE)
                .min(KEEP_ALL_PERMILLE)
        };
        self.keep_permille.store(next, Ordering::Relaxed);
        next
    }
}

/// splitmix64 finalizer over the trace id, reduced to 0..1000. Uniform
/// enough that the kept fraction tracks `keep_permille`, and — unlike
/// `id % 1000` — uncorrelated with the sequential mint counter.
fn trace_draw(trace: TraceId) -> u32 {
    let mut z = trace.get().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % 1000) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(recorded: u64, refused: u64) -> OverloadSignal {
        OverloadSignal {
            recorded_total: recorded,
            refused_total: refused,
            ring_capacity: 4096,
        }
    }

    #[test]
    fn always_mode_keeps_every_trace_and_span() {
        let s = Sampler::new(SamplerMode::Always);
        for _ in 0..100 {
            assert!(s.admit_trace(TraceId::mint()));
        }
        assert!(s.offer(true, 0));
        assert_eq!(s.admitted(), 1);
        assert_eq!(s.sampled_out(), 0);
    }

    #[test]
    fn fixed_zero_drops_every_fast_span_but_ledger_balances() {
        let s = Sampler::new(SamplerMode::Fixed(0));
        let mut recorded = 0u64;
        for _ in 0..1000 {
            let t = TraceId::mint();
            assert!(!s.admit_trace(t), "permille 0 admits no trace");
            if s.offer(false, 0) {
                recorded += 1;
            }
        }
        assert_eq!(recorded, 0);
        assert_eq!(s.admitted(), 1000);
        assert_eq!(s.sampled_out(), 1000);
        assert_eq!(recorded + s.sampled_out(), s.admitted());
    }

    #[test]
    fn fixed_fraction_tracks_permille_within_tolerance() {
        let s = Sampler::new(SamplerMode::Fixed(250));
        let kept = (0..20_000)
            .filter(|_| s.admit_trace(TraceId::mint()))
            .count();
        let fraction = kept as f64 / 20_000.0;
        assert!(
            (fraction - 0.25).abs() < 0.02,
            "kept {fraction} of traces at permille 250"
        );
    }

    #[test]
    fn head_decision_is_deterministic_per_trace() {
        let s = Sampler::new(SamplerMode::Fixed(500));
        for _ in 0..100 {
            let t = TraceId::mint();
            let first = s.admit_trace(t);
            for _ in 0..5 {
                assert_eq!(s.admit_trace(t), first, "same trace, same verdict");
            }
        }
    }

    #[test]
    fn slow_spans_survive_a_lost_head_draw() {
        let s = Sampler::new(SamplerMode::Fixed(0));
        let slow = DEFAULT_SLOW_KEEP.as_nanos() as u64;
        assert!(!s.offer(false, slow - 1), "fast span of a dropped trace");
        assert!(s.offer(false, slow), "slow span is always kept");
        assert_eq!(s.admitted(), 2);
        assert_eq!(s.sampled_out(), 1);
    }

    #[test]
    fn adaptive_halves_on_refusals_and_recovers_additively() {
        let s = Sampler::new(SamplerMode::Adaptive);
        assert_eq!(s.keep_permille(), KEEP_ALL_PERMILLE);
        // Refusals appear: multiplicative decrease.
        assert_eq!(s.observe(signal(0, 10)), 500);
        assert_eq!(s.observe(signal(0, 20)), 250);
        // Calm window: additive recovery.
        assert_eq!(s.observe(signal(0, 20)), 250 + RECOVERY_STEP_PERMILLE);
        // Full recovery is capped at keep-everything.
        for _ in 0..32 {
            s.observe(signal(0, 20));
        }
        assert_eq!(s.keep_permille(), KEEP_ALL_PERMILLE);
    }

    #[test]
    fn adaptive_halves_on_ring_churn_and_respects_the_floor() {
        let s = Sampler::new(SamplerMode::Adaptive);
        let mut recorded = 0u64;
        for _ in 0..16 {
            recorded += 4096; // a full ring lap per window
            s.observe(signal(recorded, 0));
        }
        assert_eq!(
            s.keep_permille(),
            MIN_KEEP_PERMILLE,
            "sustained churn bottoms out at the floor, not zero"
        );
        // Sub-threshold churn counts as calm.
        recorded += 100;
        assert_eq!(
            s.observe(signal(recorded, 0)),
            MIN_KEEP_PERMILLE + RECOVERY_STEP_PERMILLE
        );
    }

    #[test]
    fn fixed_and_always_ignore_observations() {
        for mode in [SamplerMode::Always, SamplerMode::Fixed(300)] {
            let s = Sampler::new(mode);
            let before = s.keep_permille();
            s.observe(signal(1 << 20, 1 << 20));
            assert_eq!(s.keep_permille(), before, "{mode:?} is not adaptive");
        }
    }
}
