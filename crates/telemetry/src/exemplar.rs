//! Slow-request exemplars: the K worst end-to-end traces.
//!
//! The completion path calls [`Exemplars::offer`] once per finished
//! request. The common case — a request faster than the current K-th
//! worst — is rejected by a single relaxed atomic load (the *floor*),
//! touching no lock. Only genuine tail candidates reach the small mutex,
//! and even those use `try_lock`: if two tail-latency requests finish in
//! the same instant, one of them is dropped rather than ever blocking a
//! worker. Telemetry is best-effort by design; the hot path is not.

use crate::span::{SpanRecord, SpanRecorder, TraceId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One retained slow request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The offending request.
    pub trace: TraceId,
    /// Its end-to-end latency in nanoseconds.
    pub total_ns: u64,
}

/// A slow request joined with its per-stage breakdown from the span ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowTrace {
    /// The offending request.
    pub trace: TraceId,
    /// Its end-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Every span the ring still holds for it, in claim order. May be
    /// empty if the ring has since lapped this trace's slots.
    pub stages: Vec<SpanRecord>,
}

/// Retains the K worst end-to-end traces seen so far.
#[derive(Debug)]
pub struct Exemplars {
    k: usize,
    /// Fast-reject bound: once the list is full, the smallest retained
    /// `total_ns`. Offers at or below it cannot change the list.
    floor: AtomicU64,
    worst: Mutex<Vec<Exemplar>>,
}

/// Default number of retained slow requests.
pub const DEFAULT_EXEMPLARS: usize = 8;

impl Default for Exemplars {
    fn default() -> Self {
        Self::new(DEFAULT_EXEMPLARS)
    }
}

impl Exemplars {
    /// Retains the `k` worst traces (`k` clamped to at least 1).
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        Self {
            k,
            floor: AtomicU64::new(0),
            worst: Mutex::new(Vec::with_capacity(k + 1)),
        }
    }

    /// How many traces are retained at most.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Offers a finished request. Lock-free rejection for the fast
    /// majority; `try_lock` (drop on contention) for tail candidates.
    pub fn offer(&self, trace: TraceId, total_ns: u64) {
        if total_ns <= self.floor.load(Ordering::Relaxed) {
            return; // cannot beat the K-th worst: no lock touched
        }
        let Ok(mut worst) = self.worst.try_lock() else {
            return; // contended: telemetry drops, workers never wait
        };
        worst.push(Exemplar { trace, total_ns });
        worst.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        worst.truncate(self.k);
        if worst.len() == self.k {
            // Publish the new fast-reject bound (only meaningful once
            // full — before that every offer must take the lock).
            self.floor
                .store(worst.last().map_or(0, |e| e.total_ns), Ordering::Relaxed);
        }
    }

    /// The retained exemplars, worst first.
    pub fn snapshot(&self) -> Vec<Exemplar> {
        self.worst.lock().map(|w| w.clone()).unwrap_or_default()
    }

    /// The retained exemplars joined with their stage breakdowns from
    /// `recorder`, worst first.
    pub fn report(&self, recorder: &SpanRecorder) -> Vec<SlowTrace> {
        self.snapshot()
            .into_iter()
            .map(|e| SlowTrace {
                trace: e.trace,
                total_ns: e.total_ns,
                stages: recorder.spans_for(e.trace),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Stage;
    use std::time::{Duration, Instant};

    #[test]
    fn retains_the_k_worst_in_order() {
        let ex = Exemplars::new(3);
        let traces: Vec<TraceId> = (0..6).map(|_| TraceId::mint()).collect();
        for (i, &t) in traces.iter().enumerate() {
            ex.offer(t, [50, 900, 10, 700, 800, 20][i]);
        }
        let snap = ex.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.total_ns).collect::<Vec<_>>(),
            vec![900, 800, 700]
        );
        assert_eq!(snap[0].trace, traces[1]);
    }

    #[test]
    fn floor_rejects_only_once_full() {
        let ex = Exemplars::new(2);
        let t = TraceId::mint();
        ex.offer(t, 0);
        // total_ns == 0 never beats the initial floor of 0 — but the list
        // is not full, so the floor stays 0 and a 1 ns offer still lands.
        assert!(ex.snapshot().is_empty());
        ex.offer(t, 1);
        ex.offer(t, 2);
        assert_eq!(ex.snapshot().len(), 2);
        // Now full with {2, 1}: a 1 ns offer is floor-rejected.
        ex.offer(TraceId::mint(), 1);
        assert_eq!(
            ex.snapshot().iter().map(|e| e.total_ns).collect::<Vec<_>>(),
            vec![2, 1]
        );
        // A 3 ns offer displaces the 1 and raises the floor to 2.
        ex.offer(TraceId::mint(), 3);
        assert_eq!(
            ex.snapshot().iter().map(|e| e.total_ns).collect::<Vec<_>>(),
            vec![3, 2]
        );
    }

    #[test]
    fn k_clamps_to_one() {
        let ex = Exemplars::new(0);
        assert_eq!(ex.capacity(), 1);
        ex.offer(TraceId::mint(), 5);
        ex.offer(TraceId::mint(), 9);
        ex.offer(TraceId::mint(), 7);
        let snap = ex.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].total_ns, 9);
    }

    #[test]
    fn report_joins_stage_breakdowns() {
        let recorder = SpanRecorder::with_capacity(16);
        let ex = Exemplars::new(2);
        let t = TraceId::mint();
        let now = Instant::now();
        recorder.record(t, Stage::Queue, 0, now, now + Duration::from_micros(40));
        recorder.record(t, Stage::Service, 0, now, now + Duration::from_micros(60));
        ex.offer(t, 100_000);
        let report = ex.report(&recorder);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].trace, t);
        assert_eq!(report[0].stages.len(), 2);
        assert_eq!(report[0].stages[1].stage, Stage::Service);
        // A lapped trace still reports, with an empty breakdown.
        let gone = TraceId::mint();
        ex.offer(gone, 200_000);
        let report = ex.report(&recorder);
        assert_eq!(report[0].trace, gone);
        assert!(report[0].stages.is_empty());
    }
}
