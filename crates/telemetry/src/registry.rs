//! A unified metrics registry keyed by stable dotted names.
//!
//! Layers register instruments once, at wiring time (`gateway.accepted`,
//! `cloud.shard.contention`, `wal.fsyncs`, …), hold the returned `Arc`
//! handle, and mutate it lock-free on the hot path — the registry's mutex
//! guards only registration and snapshotting, never a record. Snapshots
//! can additionally be overlaid with values owned by subsystems that keep
//! their own counters (shard stats, WAL stats), so one exposition covers
//! the whole stack.
//!
//! # Name schema
//!
//! `<layer>.<subject>[.<index>][.<aspect>]`, lowercase `[a-z0-9_]`
//! segments joined by dots: `gateway.queue_wait`, `gateway.lane.3.routed`,
//! `cloud.shard.0.contention`, `wal.bytes_written`, `cache.hits`.
//! Histograms expose derived `.count`/`.mean_us`/`.p50_us`/`.p99_us`/
//! `.max_us` lines plus sparse `.bucket.<upper_us>` distribution lines
//! in the text exposition.

use crate::metrics::{Counter, Gauge, LatencyHistogram, LatencySnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A registered instrument handle.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

/// One instrument's value in a [`RegistrySnapshot`].
///
/// The histogram variant is ~280 B against the scalars' 8 B; snapshots
/// are cold-path value types built once per exposition, so the per-entry
/// footprint is preferred over boxing every histogram read.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A monotone counter's value.
    Counter(u64),
    /// A gauge's level.
    Gauge(u64),
    /// A histogram's full distribution.
    Histogram(LatencySnapshot),
}

/// The unified, name-keyed instrument registry.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind —
    /// that is a wiring bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.instruments.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            other => panic!("telemetry name {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge registered under `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.instruments.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            other => panic!("telemetry name {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut map = self.instruments.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(LatencyHistogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            other => panic!("telemetry name {name:?} already registered as {other:?}"),
        }
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.instruments
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// A point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.instruments.lock().expect("registry poisoned");
        RegistrySnapshot {
            values: map
                .iter()
                .map(|(name, inst)| {
                    let value = match inst {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// An immutable name → value copy of a [`Registry`], plus any overlaid
/// subsystem-owned values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    values: BTreeMap<String, MetricValue>,
}

impl RegistrySnapshot {
    /// An empty snapshot (useful as an overlay base).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overlays a counter value owned outside the registry (shard stats,
    /// WAL stats, cache stats), replacing any prior value under `name`.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.values
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Overlays a gauge value owned outside the registry.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.values
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// The value under `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// The counter or gauge value under `name`, if it is scalar.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        match self.values.get(name)? {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Histogram(_) => None,
        }
    }

    /// All `(name, value)` pairs, name-sorted.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let reg = Registry::new();
        let a = reg.counter("gateway.accepted");
        let b = reg.counter("gateway.accepted");
        a.incr();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit one underlying counter");
        assert_eq!(reg.names(), vec!["gateway.accepted"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x.y");
        let _ = reg.histogram("x.y");
    }

    #[test]
    fn snapshot_copies_all_kinds_and_overlays_merge() {
        let reg = Registry::new();
        reg.counter("gateway.accepted").add(5);
        reg.gauge("gateway.queue_high_water").record_max(9);
        reg.histogram("gateway.queue_wait")
            .record(Duration::from_micros(100));
        let mut snap = reg.snapshot();
        assert_eq!(snap.scalar("gateway.accepted"), Some(5));
        assert_eq!(snap.scalar("gateway.queue_high_water"), Some(9));
        assert!(matches!(
            snap.get("gateway.queue_wait"),
            Some(MetricValue::Histogram(h)) if h.count == 1
        ));
        assert_eq!(
            snap.scalar("gateway.queue_wait"),
            None,
            "histograms are not scalar"
        );
        // Overlay subsystem-owned values.
        snap.set_counter("wal.fsyncs", 12);
        snap.set_gauge("gateway.drained", 1);
        assert_eq!(snap.scalar("wal.fsyncs"), Some(12));
        assert_eq!(snap.len(), 5);
        // Name-sorted iteration.
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn empty_snapshot_is_empty() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.get("missing"), None);
    }
}
