//! Exposition formats: Prometheus-style `name value` text and a
//! JSON-lines span dump.
//!
//! # Text grammar
//!
//! ```text
//! exposition := line*
//! line       := name ' ' value '\n'
//! name       := segment ('.' segment)*
//! segment    := [a-z0-9_]+
//! value      := non-negative decimal integer or finite float
//! ```
//!
//! Histograms expand into derived scalar lines (`.count`, `.mean_us`,
//! `.p50_us`, `.p99_us`, `.max_us`) plus one `.bucket.<upper_us>` line
//! per non-empty power-of-two bucket, so the whole exposition stays in
//! the one-line-one-number grammar that line-oriented tooling (and the
//! CI golden check) can parse without a schema. [`parse_text_exposition`]
//! is that parser — exported so tests and CI validate real output
//! against the real grammar instead of a drifting copy.

use crate::registry::{MetricValue, RegistrySnapshot};
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Renders a registry snapshot as line-oriented `name value` text,
/// name-sorted, histograms expanded into derived scalar lines.
pub fn text_exposition(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snapshot.iter() {
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "{name}.count {}", h.count);
                let _ = writeln!(out, "{name}.max_us {}", h.max_us);
                let _ = writeln!(out, "{name}.mean_us {:.1}", h.mean_us());
                let _ = writeln!(out, "{name}.p50_us {}", h.percentile_us(0.50));
                let _ = writeln!(out, "{name}.p99_us {}", h.percentile_us(0.99));
                // Full distribution, sparsely: empty buckets are elided so
                // an idle histogram stays five lines, not thirty-seven.
                for (upper_us, n) in h.nonzero_buckets() {
                    let _ = writeln!(out, "{name}.bucket.{upper_us} {n}");
                }
            }
        }
    }
    out
}

/// Parses text produced by [`text_exposition`], returning the `(name,
/// value)` pairs or a description of the first grammar violation.
pub fn parse_text_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {lineno}: no space separator in {line:?}"))?;
        if name.is_empty()
            || name.split('.').any(|seg| {
                seg.is_empty()
                    || !seg
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
            })
        {
            return Err(format!("line {lineno}: malformed name {name:?}"));
        }
        if value.contains(' ') {
            return Err(format!("line {lineno}: more than one value in {line:?}"));
        }
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value {value:?}"))?;
        if !parsed.is_finite() || parsed < 0.0 {
            return Err(format!("line {lineno}: value out of range {value:?}"));
        }
        out.push((name.to_string(), parsed));
    }
    Ok(out)
}

/// Renders spans as JSON lines, one object per span, in input order.
///
/// Every value is a number or a fixed snake_case stage name, so the
/// encoder needs no escaping machinery (and no serde).
pub fn spans_json_lines(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in spans {
        let _ = writeln!(
            out,
            "{{\"trace\":{},\"stage\":\"{}\",\"tag\":{},\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{}}}",
            span.trace.get(),
            span.stage.name(),
            span.tag,
            span.start_ns,
            span.end_ns,
            span.duration_ns(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::{SpanRecorder, Stage, TraceId};
    use std::time::{Duration, Instant};

    #[test]
    fn exposition_round_trips_through_its_own_parser() {
        let reg = Registry::new();
        reg.counter("gateway.accepted").add(17);
        reg.gauge("gateway.queue_high_water").set(4);
        reg.histogram("gateway.queue_wait")
            .record(Duration::from_micros(300));
        let mut snap = reg.snapshot();
        snap.set_counter("cache.hits", 2);
        let text = text_exposition(&snap);
        let parsed = parse_text_exposition(&text).expect("own output parses");
        let get = |n: &str| parsed.iter().find(|(name, _)| name == n).map(|&(_, v)| v);
        assert_eq!(get("gateway.accepted"), Some(17.0));
        assert_eq!(get("gateway.queue_high_water"), Some(4.0));
        assert_eq!(get("cache.hits"), Some(2.0));
        assert_eq!(get("gateway.queue_wait.count"), Some(1.0));
        assert_eq!(get("gateway.queue_wait.p99_us"), Some(512.0));
        assert!(get("gateway.queue_wait.mean_us").is_some());
        // The one 300 µs sample lands in the ≤512 µs bucket, and empty
        // buckets emit no lines at all.
        assert_eq!(get("gateway.queue_wait.bucket.512"), Some(1.0));
        assert_eq!(
            parsed
                .iter()
                .filter(|(name, _)| name.contains(".bucket."))
                .count(),
            1,
            "only non-empty buckets are emitted"
        );
    }

    #[test]
    fn bucket_lines_cover_the_whole_distribution() {
        let reg = Registry::new();
        let h = reg.histogram("cloud.replication_ship");
        for us in [1u64, 3, 3, 300] {
            h.record(Duration::from_micros(us));
        }
        let text = text_exposition(&reg.snapshot());
        let parsed = parse_text_exposition(&text).expect("own output parses");
        let get = |n: &str| parsed.iter().find(|(name, _)| name == n).map(|&(_, v)| v);
        assert_eq!(get("cloud.replication_ship.bucket.2"), Some(1.0));
        assert_eq!(get("cloud.replication_ship.bucket.4"), Some(2.0));
        assert_eq!(get("cloud.replication_ship.bucket.512"), Some(1.0));
        let bucket_sum: f64 = parsed
            .iter()
            .filter(|(name, _)| name.starts_with("cloud.replication_ship.bucket."))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(bucket_sum, 4.0, "bucket counts sum to the sample count");
    }

    #[test]
    fn parser_rejects_grammar_violations() {
        assert!(parse_text_exposition("no_value_here\n").is_err());
        assert!(parse_text_exposition("Upper.case 1\n").is_err());
        assert!(parse_text_exposition("tra iling 1 2\n").is_err());
        assert!(parse_text_exposition("dots..empty 1\n").is_err());
        assert!(parse_text_exposition(".leading 1\n").is_err());
        assert!(parse_text_exposition("nan_value NaN\n").is_err());
        assert!(parse_text_exposition("negative -1\n").is_err());
        assert!(parse_text_exposition("word one\n").is_err());
        assert!(parse_text_exposition("").unwrap().is_empty());
        assert_eq!(
            parse_text_exposition("a.b_2.c 3.5\n").unwrap(),
            vec![("a.b_2.c".to_string(), 3.5)]
        );
    }

    #[test]
    fn span_dump_is_one_json_object_per_line() {
        let r = SpanRecorder::with_capacity(4);
        let t = TraceId::mint();
        let now = Instant::now();
        r.record(t, Stage::WalAppend, 5, now, now + Duration::from_micros(80));
        r.record(t, Stage::Analysis, 0, now, now + Duration::from_micros(20));
        let dump = spans_json_lines(&r.snapshot());
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"stage\":\"wal_append\""));
        assert!(lines[0].contains("\"tag\":5"));
        assert!(lines[0].contains("\"duration_ns\":80000"));
        assert!(lines[1].contains("\"stage\":\"analysis\""));
        assert!(lines[1].contains(&format!("\"trace\":{}", t.get())));
    }
}
