//! Exposition formats: Prometheus-style `name value` text and a
//! JSON-lines span dump.
//!
//! # Text grammar
//!
//! ```text
//! exposition := line*
//! line       := name ' ' value '\n'
//! name       := segment ('.' segment)*
//! segment    := [a-z0-9_]+
//! value      := non-negative decimal integer or finite float
//! ```
//!
//! Histograms expand into derived scalar lines (`.count`, `.mean_us`,
//! `.p50_us`, `.p99_us`, `.max_us`) plus one `.bucket.<upper_us>` line
//! per non-empty power-of-two bucket, so the whole exposition stays in
//! the one-line-one-number grammar that line-oriented tooling (and the
//! CI golden check) can parse without a schema. [`parse_text_exposition`]
//! is that parser — exported so tests and CI validate real output
//! against the real grammar instead of a drifting copy.

use crate::registry::{MetricValue, RegistrySnapshot};
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Renders a registry snapshot as line-oriented `name value` text,
/// name-sorted, histograms expanded into derived scalar lines.
pub fn text_exposition(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snapshot.iter() {
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "{name}.count {}", h.count);
                let _ = writeln!(out, "{name}.max_us {}", h.max_us);
                let _ = writeln!(out, "{name}.mean_us {:.1}", h.mean_us());
                let _ = writeln!(out, "{name}.p50_us {}", h.percentile_us(0.50));
                let _ = writeln!(out, "{name}.p99_us {}", h.percentile_us(0.99));
                // Full distribution, sparsely: empty buckets are elided so
                // an idle histogram stays five lines, not thirty-seven.
                for (upper_us, n) in h.nonzero_buckets() {
                    let _ = writeln!(out, "{name}.bucket.{upper_us} {n}");
                }
            }
        }
    }
    out
}

/// Parses text produced by [`text_exposition`], returning the `(name,
/// value)` pairs or a description of the first grammar violation.
pub fn parse_text_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {lineno}: no space separator in {line:?}"))?;
        if name.is_empty()
            || name.split('.').any(|seg| {
                seg.is_empty()
                    || !seg
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
            })
        {
            return Err(format!("line {lineno}: malformed name {name:?}"));
        }
        if value.contains(' ') {
            return Err(format!("line {lineno}: more than one value in {line:?}"));
        }
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value {value:?}"))?;
        if !parsed.is_finite() || parsed < 0.0 {
            return Err(format!("line {lineno}: value out of range {value:?}"));
        }
        out.push((name.to_string(), parsed));
    }
    Ok(out)
}

/// Renders spans as JSON lines, one object per span, in input order.
///
/// Every value is a number or a fixed snake_case stage name, so the
/// encoder needs no escaping machinery (and no serde).
pub fn spans_json_lines(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in spans {
        let _ = writeln!(
            out,
            "{{\"trace\":{},\"stage\":\"{}\",\"tag\":{},\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{}}}",
            span.trace.get(),
            span.stage.name(),
            span.tag,
            span.start_ns,
            span.end_ns,
            span.duration_ns(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::{SpanRecorder, Stage, TraceId};
    use std::time::{Duration, Instant};

    #[test]
    fn exposition_round_trips_through_its_own_parser() {
        let reg = Registry::new();
        reg.counter("gateway.accepted").add(17);
        reg.gauge("gateway.queue_high_water").set(4);
        reg.histogram("gateway.queue_wait")
            .record(Duration::from_micros(300));
        let mut snap = reg.snapshot();
        snap.set_counter("cache.hits", 2);
        let text = text_exposition(&snap);
        let parsed = parse_text_exposition(&text).expect("own output parses");
        let get = |n: &str| parsed.iter().find(|(name, _)| name == n).map(|&(_, v)| v);
        assert_eq!(get("gateway.accepted"), Some(17.0));
        assert_eq!(get("gateway.queue_high_water"), Some(4.0));
        assert_eq!(get("cache.hits"), Some(2.0));
        assert_eq!(get("gateway.queue_wait.count"), Some(1.0));
        assert_eq!(get("gateway.queue_wait.p99_us"), Some(512.0));
        assert!(get("gateway.queue_wait.mean_us").is_some());
        // The one 300 µs sample lands in the ≤512 µs bucket, and empty
        // buckets emit no lines at all.
        assert_eq!(get("gateway.queue_wait.bucket.512"), Some(1.0));
        assert_eq!(
            parsed
                .iter()
                .filter(|(name, _)| name.contains(".bucket."))
                .count(),
            1,
            "only non-empty buckets are emitted"
        );
    }

    #[test]
    fn bucket_lines_cover_the_whole_distribution() {
        let reg = Registry::new();
        let h = reg.histogram("cloud.replication_ship");
        for us in [1u64, 3, 3, 300] {
            h.record(Duration::from_micros(us));
        }
        let text = text_exposition(&reg.snapshot());
        let parsed = parse_text_exposition(&text).expect("own output parses");
        let get = |n: &str| parsed.iter().find(|(name, _)| name == n).map(|&(_, v)| v);
        assert_eq!(get("cloud.replication_ship.bucket.2"), Some(1.0));
        assert_eq!(get("cloud.replication_ship.bucket.4"), Some(2.0));
        assert_eq!(get("cloud.replication_ship.bucket.512"), Some(1.0));
        let bucket_sum: f64 = parsed
            .iter()
            .filter(|(name, _)| name.starts_with("cloud.replication_ship.bucket."))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(bucket_sum, 4.0, "bucket counts sum to the sample count");
    }

    #[test]
    fn duplicate_instrument_names_collapse_to_one_line() {
        let reg = Registry::new();
        // Re-registering a name hands back the same instrument, so both
        // call sites feed one counter — the exposition must carry one
        // line with the combined value, never two conflicting lines.
        reg.counter("gateway.accepted").add(3);
        reg.counter("gateway.accepted").add(4);
        let mut snap = reg.snapshot();
        let text = text_exposition(&snap);
        let accepted: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("gateway.accepted "))
            .collect();
        assert_eq!(accepted, vec!["gateway.accepted 7"]);

        // An overlay (`set_counter`) on an already-registered name
        // replaces the value rather than adding a second line.
        snap.set_counter("gateway.accepted", 99);
        let text = text_exposition(&snap);
        let accepted: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("gateway.accepted "))
            .collect();
        assert_eq!(accepted, vec!["gateway.accepted 99"]);

        // The *parser* is a grammar check, not a uniqueness check: text
        // with a repeated name still parses, surfacing both pairs so the
        // caller can detect the duplication.
        let parsed = parse_text_exposition("a.b 1\na.b 2\n").expect("grammar allows repeats");
        assert_eq!(
            parsed,
            vec![("a.b".to_string(), 1.0), ("a.b".to_string(), 2.0)]
        );
    }

    #[test]
    fn empty_histogram_emits_derived_scalars_and_no_buckets() {
        let reg = Registry::new();
        reg.histogram("gateway.queue_wait"); // registered, never recorded
        let text = text_exposition(&reg.snapshot());
        let parsed = parse_text_exposition(&text).expect("own output parses");
        let get = |n: &str| parsed.iter().find(|(name, _)| name == n).map(|&(_, v)| v);
        assert_eq!(get("gateway.queue_wait.count"), Some(0.0));
        assert_eq!(get("gateway.queue_wait.max_us"), Some(0.0));
        assert_eq!(get("gateway.queue_wait.p50_us"), Some(0.0));
        assert_eq!(get("gateway.queue_wait.p99_us"), Some(0.0));
        assert!(
            !parsed.iter().any(|(name, _)| name.contains(".bucket.")),
            "an idle histogram emits no bucket lines:\n{text}"
        );
    }

    #[test]
    fn sampler_instrument_lines_round_trip_through_the_parser() {
        // The adaptive-sampler instruments the gateway overlays must ride
        // the same grammar as everything else: render → parse → re-render
        // reproduces the exact text.
        let reg = Registry::new();
        let mut snap = reg.snapshot();
        snap.set_counter("telemetry.spans_admitted", 1436);
        snap.set_counter("telemetry.spans_recorded", 1046);
        snap.set_counter("telemetry.spans_sampled_out", 390);
        snap.set_gauge("telemetry.sampler_permille", 8);
        let text = text_exposition(&snap);
        let parsed = parse_text_exposition(&text).expect("sampler lines obey the grammar");
        assert_eq!(
            parsed,
            vec![
                ("telemetry.sampler_permille".to_string(), 8.0),
                ("telemetry.spans_admitted".to_string(), 1436.0),
                ("telemetry.spans_recorded".to_string(), 1046.0),
                ("telemetry.spans_sampled_out".to_string(), 390.0),
            ]
        );
        // Re-render from the parsed pairs: byte-identical for a
        // scalar-only exposition, proving nothing is lost either way.
        let reg2 = Registry::new();
        let mut snap2 = reg2.snapshot();
        for (name, value) in &parsed {
            snap2.set_counter(name, *value as u64);
        }
        assert_eq!(text_exposition(&snap2), text);
        // The soak's exactness invariant is checkable straight off the
        // parsed pairs — the form the CI gate consumes.
        let get = |n: &str| parsed.iter().find(|(name, _)| name == n).map(|&(_, v)| v);
        assert_eq!(
            get("telemetry.spans_recorded").unwrap() + get("telemetry.spans_sampled_out").unwrap(),
            get("telemetry.spans_admitted").unwrap()
        );
    }

    #[test]
    fn parser_rejects_grammar_violations() {
        assert!(parse_text_exposition("no_value_here\n").is_err());
        assert!(parse_text_exposition("Upper.case 1\n").is_err());
        assert!(parse_text_exposition("tra iling 1 2\n").is_err());
        assert!(parse_text_exposition("dots..empty 1\n").is_err());
        assert!(parse_text_exposition(".leading 1\n").is_err());
        assert!(parse_text_exposition("nan_value NaN\n").is_err());
        assert!(parse_text_exposition("negative -1\n").is_err());
        assert!(parse_text_exposition("word one\n").is_err());
        assert!(parse_text_exposition("").unwrap().is_empty());
        assert_eq!(
            parse_text_exposition("a.b_2.c 3.5\n").unwrap(),
            vec![("a.b_2.c".to_string(), 3.5)]
        );
    }

    #[test]
    fn span_dump_is_one_json_object_per_line() {
        let r = SpanRecorder::with_capacity(4);
        let t = TraceId::mint();
        let now = Instant::now();
        r.record(t, Stage::WalAppend, 5, now, now + Duration::from_micros(80));
        r.record(t, Stage::Analysis, 0, now, now + Duration::from_micros(20));
        let dump = spans_json_lines(&r.snapshot());
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"stage\":\"wal_append\""));
        assert!(lines[0].contains("\"tag\":5"));
        assert!(lines[0].contains("\"duration_ns\":80000"));
        assert!(lines[1].contains("\"stage\":\"analysis\""));
        assert!(lines[1].contains(&format!("\"trace\":{}", t.get())));
    }
}
