//! Link timing models for the USB accessory hop and the 4G uplink.

use medsen_units::Seconds;
use serde::{Deserialize, Serialize};

/// A simple bandwidth + latency link model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkLink {
    /// Sustained throughput in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency.
    pub latency: Seconds,
}

impl NetworkLink {
    /// A 2015-era LTE uplink (the Nexus 5's 4G connection): ~10 Mbit/s up,
    /// 50 ms latency.
    pub fn lte_uplink() -> Self {
        Self {
            bandwidth_mbps: 10.0,
            latency: Seconds::from_millis(50.0),
        }
    }

    /// USB 2.0 full-speed bulk transfer between the Pi and the phone.
    pub fn usb_accessory() -> Self {
        Self {
            bandwidth_mbps: 200.0,
            latency: Seconds::from_millis(1.0),
        }
    }

    /// Time to move `bytes` across the link (one latency + serialization).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn transfer_time(&self, bytes: usize) -> Seconds {
        assert!(self.bandwidth_mbps > 0.0, "bandwidth must be positive");
        let bits = bytes as f64 * 8.0;
        Seconds::new(self.latency.value() + bits / (self.bandwidth_mbps * 1e6))
    }

    /// Round-trip time for a request of `up` bytes and a response of `down`
    /// bytes.
    pub fn round_trip(&self, up: usize, down: usize) -> Seconds {
        self.transfer_time(up) + self.transfer_time(down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payloads_are_latency_dominated() {
        let link = NetworkLink::lte_uplink();
        let t = link.transfer_time(100);
        assert!((t.value() - 0.05).abs() < 0.001, "t = {t}");
    }

    #[test]
    fn large_payloads_are_bandwidth_dominated() {
        let link = NetworkLink::lte_uplink();
        // 240 MB over 10 Mbit/s ≈ 192 s — matching the paper's note that
        // compression matters for "smartphone data plans".
        let t = link.transfer_time(240 * 1024 * 1024);
        assert!(t.value() > 190.0 && t.value() < 215.0, "t = {t}");
    }

    #[test]
    fn compression_saves_transfer_time_proportionally() {
        let link = NetworkLink::lte_uplink();
        let raw = link.transfer_time(600_000_000).value();
        let compressed = link.transfer_time(240_000_000).value();
        assert!((raw / compressed - 2.5).abs() < 0.01);
    }

    #[test]
    fn usb_is_much_faster_than_lte() {
        let bytes = 10_000_000;
        let usb = NetworkLink::usb_accessory().transfer_time(bytes);
        let lte = NetworkLink::lte_uplink().transfer_time(bytes);
        assert!(usb.value() < lte.value() / 10.0);
    }

    #[test]
    fn round_trip_sums_both_directions() {
        let link = NetworkLink::lte_uplink();
        let rt = link.round_trip(1000, 1000);
        assert!((rt.value() - 2.0 * link.transfer_time(1000).value()).abs() < 1e-12);
    }
}
