//! Link timing models for the USB accessory hop and the 4G uplink.

use medsen_units::Seconds;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when a link's parameters cannot model a transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkError {
    /// The configured bandwidth is zero, negative, or NaN — no finite
    /// transfer time exists.
    NonPositiveBandwidth {
        /// The offending bandwidth, in Mbit/s.
        bandwidth_mbps: f64,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::NonPositiveBandwidth { bandwidth_mbps } => write!(
                f,
                "link bandwidth must be positive, got {bandwidth_mbps} Mbit/s"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// A simple bandwidth + latency link model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkLink {
    /// Sustained throughput in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency.
    pub latency: Seconds,
}

impl NetworkLink {
    /// A 2015-era LTE uplink (the Nexus 5's 4G connection): ~10 Mbit/s up,
    /// 50 ms latency.
    pub fn lte_uplink() -> Self {
        Self {
            bandwidth_mbps: 10.0,
            latency: Seconds::from_millis(50.0),
        }
    }

    /// USB 2.0 full-speed bulk transfer between the Pi and the phone.
    pub fn usb_accessory() -> Self {
        Self {
            bandwidth_mbps: 200.0,
            latency: Seconds::from_millis(1.0),
        }
    }

    /// Time to move `bytes` across the link (one latency + serialization),
    /// or [`LinkError::NonPositiveBandwidth`] if the link's bandwidth is
    /// zero, negative, or NaN.
    pub fn try_transfer_time(&self, bytes: usize) -> Result<Seconds, LinkError> {
        if self.bandwidth_mbps.is_nan() || self.bandwidth_mbps <= 0.0 {
            return Err(LinkError::NonPositiveBandwidth {
                bandwidth_mbps: self.bandwidth_mbps,
            });
        }
        let bits = bytes as f64 * 8.0;
        Ok(Seconds::new(
            self.latency.value() + bits / (self.bandwidth_mbps * 1e6),
        ))
    }

    /// Infallible convenience wrapper around [`try_transfer_time`]: a link
    /// with non-positive bandwidth moves nothing, so the transfer time
    /// saturates to [`f64::INFINITY`] instead of panicking. Callers that
    /// need to distinguish "misconfigured link" from "very slow link"
    /// should use `try_transfer_time`.
    ///
    /// [`try_transfer_time`]: NetworkLink::try_transfer_time
    pub fn transfer_time(&self, bytes: usize) -> Seconds {
        self.try_transfer_time(bytes)
            .unwrap_or(Seconds::new(f64::INFINITY))
    }

    /// Round-trip time for a request of `up` bytes and a response of `down`
    /// bytes. Saturates like [`transfer_time`](NetworkLink::transfer_time).
    pub fn round_trip(&self, up: usize, down: usize) -> Seconds {
        self.transfer_time(up) + self.transfer_time(down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payloads_are_latency_dominated() {
        let link = NetworkLink::lte_uplink();
        let t = link.transfer_time(100);
        assert!((t.value() - 0.05).abs() < 0.001, "t = {t}");
    }

    #[test]
    fn large_payloads_are_bandwidth_dominated() {
        let link = NetworkLink::lte_uplink();
        // 240 MB over 10 Mbit/s ≈ 192 s — matching the paper's note that
        // compression matters for "smartphone data plans".
        let t = link.transfer_time(240 * 1024 * 1024);
        assert!(t.value() > 190.0 && t.value() < 215.0, "t = {t}");
    }

    #[test]
    fn compression_saves_transfer_time_proportionally() {
        let link = NetworkLink::lte_uplink();
        let raw = link.transfer_time(600_000_000).value();
        let compressed = link.transfer_time(240_000_000).value();
        assert!((raw / compressed - 2.5).abs() < 0.01);
    }

    #[test]
    fn usb_is_much_faster_than_lte() {
        let bytes = 10_000_000;
        let usb = NetworkLink::usb_accessory().transfer_time(bytes);
        let lte = NetworkLink::lte_uplink().transfer_time(bytes);
        assert!(usb.value() < lte.value() / 10.0);
    }

    #[test]
    fn round_trip_sums_both_directions() {
        let link = NetworkLink::lte_uplink();
        let rt = link.round_trip(1000, 1000);
        assert!((rt.value() - 2.0 * link.transfer_time(1000).value()).abs() < 1e-12);
    }

    #[test]
    fn non_positive_bandwidth_is_an_error_not_a_panic() {
        for bad in [0.0, -5.0, f64::NAN] {
            let link = NetworkLink {
                bandwidth_mbps: bad,
                latency: Seconds::from_millis(1.0),
            };
            match link.try_transfer_time(1000) {
                Err(LinkError::NonPositiveBandwidth { bandwidth_mbps }) => {
                    assert!(bandwidth_mbps.is_nan() || bandwidth_mbps <= 0.0);
                }
                Ok(t) => panic!("expected error, got {t}"),
            }
            // The infallible form saturates.
            assert!(link.transfer_time(1000).value().is_infinite());
            assert!(link.round_trip(10, 10).value().is_infinite());
        }
    }

    #[test]
    fn link_error_displays_the_offending_value() {
        let err = NetworkLink {
            bandwidth_mbps: -1.0,
            latency: Seconds::new(0.0),
        }
        .try_transfer_time(1)
        .unwrap_err();
        assert!(err.to_string().contains("-1"));
    }
}
