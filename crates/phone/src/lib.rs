//! The smartphone relay (Sec. VI-D).
//!
//! The Nexus 5 in the prototype is *not* trusted: it detects the sensor over
//! the Android Open Accessory protocol, shows test progression, compresses
//! the encrypted measurements ("MedSen implements zip data compression on the
//! smartphone. This reduced the sample size [from 600 MB] to 240 MB"), and
//! relays them to the cloud over 4G. This crate models that whole path:
//!
//! * [`frame`] — AOAP-style message framing with checksums;
//! * [`app`] — the Android app's state machine (detect → test → upload →
//!   results);
//! * [`csv`] — the CSV serialization the prototype captures traces in;
//! * [`mod@compress`] — a from-scratch LZW codec standing in for zip;
//! * [`json`] — a from-scratch JSON codec (serde backend) for the
//!   phone↔cloud request/response bodies;
//! * [`network`] — 4G/USB link timing models;
//! * [`oneway`] — ACK-free fountain-coded uploads for RF-restricted
//!   clinics (compress → rateless symbol stream, no back-channel);
//! * [`profile`] — the Fig. 14 computer-vs-smartphone performance model.

pub mod app;
pub mod compress;
pub mod csv;
pub mod frame;
pub mod json;
pub mod network;
pub mod oneway;
pub mod profile;

pub use app::{AppEvent, AppState, PhoneApp};
pub use compress::{compress, decompress, CompressionStats};
pub use csv::{trace_from_csv, trace_to_csv};
pub use frame::{Frame, FrameError, MessageType};
pub use json::{from_json, to_json, JsonError, JsonWire};
pub use network::{LinkError, NetworkLink};
pub use oneway::{
    stream_seed_for, OneWayStats, OneWayUpload, OneWayUploader, SymbolBudget, DEFAULT_SYMBOL_BYTES,
};
pub use profile::{DeviceProfile, PAPER_FIG14_SAMPLE_SIZES};
