//! A from-scratch JSON codec over serde.
//!
//! The prototype ships analysis requests and results between the phone and
//! the cloud; the approved dependency set has no `serde_json`, so this
//! module implements the subset of JSON the MedSen wire types need —
//! objects, arrays, strings, numbers, booleans, null — as a serde
//! `Serializer`/`Deserializer` pair. Floats are emitted with enough digits
//! to round-trip exactly (via Rust's shortest-round-trip formatting).
//!
//! Not supported (and not used by any wire type): non-string map keys,
//! byte strings, and `i128`/`u128`.

use medsen_wire::{WireCodec, WireError, WireFormat};
use serde::de::{self, DeserializeOwned, Visitor};
use serde::ser::{self, Serialize};
use std::fmt::Write as _;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: core::fmt::Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

impl de::Error for JsonError {
    fn custom<T: core::fmt::Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Fails on unsupported shapes (non-string map keys, bytes).
pub fn to_json<T: Serialize>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    value.serialize(&mut JsonSer { out: &mut out })?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON or shape mismatches.
pub fn from_json<T: DeserializeOwned>(text: &str) -> Result<T, JsonError> {
    let mut parser = Parser::new(text);
    let value = T::deserialize(&mut parser)?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(JsonError::new("trailing characters after value"));
    }
    Ok(value)
}

/// The JSON backend of the wire-format selector (`--wire json`).
///
/// Implements [`medsen_wire::WireCodec`] for every serde-capable message
/// type by delegating to this module's codec; the binary backend
/// ([`medsen_wire::BinaryWire`]) lives next to the frame layout it owns.
/// JSON stays available end to end as the debug/compat path: bodies are
/// human-readable on the wire, and peers that predate the binary format
/// can still be served.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonWire;

impl<T: Serialize + DeserializeOwned> WireCodec<T> for JsonWire {
    fn format(&self) -> WireFormat {
        WireFormat::Json
    }

    fn encode(&self, value: &T) -> Result<Vec<u8>, WireError> {
        to_json(value)
            .map(String::into_bytes)
            .map_err(|e| WireError::Codec(e.to_string()))
    }

    fn decode(&self, bytes: &[u8]) -> Result<T, WireError> {
        let text = std::str::from_utf8(bytes).map_err(|_| WireError::NotUtf8)?;
        from_json(text).map_err(|e| WireError::Codec(e.to_string()))
    }
}

// ───────────────────────── serialization ─────────────────────────

struct JsonSer<'o> {
    out: &'o mut String,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) -> Result<(), JsonError> {
    if !v.is_finite() {
        return Err(JsonError::new("non-finite float"));
    }
    // Rust's Display for f64 is shortest-round-trip.
    let _ = write!(out, "{v}");
    if !out.ends_with(|c: char| c.is_ascii_digit()) || !out.contains(['.', 'e', 'E']) {
        // Ensure floats keep a float shape only when needed — integers parse
        // back fine either way, so no action required.
    }
    Ok(())
}

struct SeqSer<'a, 'o> {
    ser: &'a mut JsonSer<'o>,
    first: bool,
    close: char,
}

impl<'a, 'o> ser::Serializer for &'a mut JsonSer<'o> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = SeqSer<'a, 'o>;
    type SerializeTuple = SeqSer<'a, 'o>;
    type SerializeTupleStruct = SeqSer<'a, 'o>;
    type SerializeTupleVariant = SeqSer<'a, 'o>;
    type SerializeMap = SeqSer<'a, 'o>;
    type SerializeStruct = SeqSer<'a, 'o>;
    type SerializeStructVariant = SeqSer<'a, 'o>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v.into())
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v.into())
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        write_f64(self.out, v.into())
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        write_f64(self.out, v)
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        write_escaped(self.out, &v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        write_escaped(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<(), JsonError> {
        Err(JsonError::new("byte strings are not supported"))
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        write_escaped(self.out, variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, JsonError> {
        self.out.push('[');
        Ok(SeqSer {
            ser: self,
            first: true,
            close: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, JsonError> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":[");
        Ok(SeqSer {
            ser: self,
            first: true,
            close: '!', // closes both ] and } — handled in end()
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, JsonError> {
        self.out.push('{');
        Ok(SeqSer {
            ser: self,
            first: true,
            close: '}',
        })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, JsonError> {
        self.serialize_map(Some(len))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, JsonError> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":{");
        Ok(SeqSer {
            ser: self,
            first: true,
            close: '?', // closes both } and } — handled in end()
        })
    }
}

impl SeqSer<'_, '_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
    fn finish(self) -> Result<(), JsonError> {
        match self.close {
            ']' | '}' => self.ser.out.push(self.close),
            '!' => self.ser.out.push_str("]}"),
            '?' => self.ser.out.push_str("}}"),
            _ => unreachable!("close tokens are fixed"),
        }
        Ok(())
    }
}

impl ser::SerializeSeq for SeqSer<'_, '_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.comma();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeTuple for SeqSer<'_, '_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeTupleStruct for SeqSer<'_, '_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeTupleVariant for SeqSer<'_, '_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeMap for SeqSer<'_, '_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonError> {
        self.comma();
        // Keys must serialize as strings; detect by serializing to a probe.
        let mut probe = String::new();
        key.serialize(&mut JsonSer { out: &mut probe })?;
        if !probe.starts_with('"') {
            return Err(JsonError::new("map keys must be strings"));
        }
        self.ser.out.push_str(&probe);
        self.ser.out.push(':');
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeStruct for SeqSer<'_, '_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.comma();
        write_escaped(self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeStructVariant for SeqSer<'_, '_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

// ───────────────────────── deserialization ─────────────────────────

struct Parser<'de> {
    input: &'de str,
    pos: usize,
}

impl<'de> Parser<'de> {
    fn new(input: &'de str) -> Self {
        Self { input, pos: 0 }
    }

    fn rest(&self) -> &'de str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<char, JsonError> {
        self.skip_ws();
        self.rest()
            .chars()
            .next()
            .ok_or_else(|| JsonError::new("unexpected end of input"))
    }

    fn bump(&mut self) -> Result<char, JsonError> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Ok(c)
    }

    fn expect(&mut self, c: char) -> Result<(), JsonError> {
        let got = self.bump()?;
        if got != c {
            return Err(JsonError::new(format!("expected `{c}`, found `{got}`")));
        }
        Ok(())
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        self.skip_ws();
        if self.rest().starts_with(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(JsonError::new(format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = self
                .rest()
                .chars()
                .next()
                .ok_or_else(|| JsonError::new("unterminated string"))?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .rest()
                        .chars()
                        .next()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hex = self
                                .rest()
                                .get(..4)
                                .ok_or_else(|| JsonError::new("short \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid codepoint"))?,
                            );
                        }
                        other => return Err(JsonError::new(format!("bad escape `\\{other}`"))),
                    }
                }
                c => out.push(c),
            }
        }
    }

    /// Lexes one number token and returns its text. Integer/float
    /// interpretation is left to the caller: 64-bit record ids exceed
    /// `f64`'s 53-bit mantissa, so integers must never detour through a
    /// float.
    ///
    /// The token must match the RFC 8259 grammar exactly. An earlier
    /// version lexed greedily and let Rust's `f64` parser decide, which
    /// silently accepted non-JSON spellings like `+1` and `.5` — so a
    /// forged body could differ byte-wise from every canonical
    /// re-encoding while decoding to the same value.
    fn parse_number_text(&mut self) -> Result<&'de str, JsonError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.pos < bytes.len() && (bytes[self.pos] == b'-' || bytes[self.pos] == b'+') {
            self.pos += 1;
        }
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_digit()
                || matches!(bytes[self.pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            // Only allow +/- after an exponent marker.
            if matches!(bytes[self.pos], b'+' | b'-') && !matches!(bytes[self.pos - 1], b'e' | b'E')
            {
                break;
            }
            self.pos += 1;
        }
        let text = &self.input[start..self.pos];
        if !is_canonical_number(text) {
            return Err(JsonError::new(format!("non-canonical number `{text}`")));
        }
        Ok(text)
    }
}

/// RFC 8259 `number` grammar: `-? int frac? exp?`, where `int` is `0` or
/// a digit run without a leading zero, `frac` is `.` plus at least one
/// digit, and `exp` is `e`/`E`, an optional sign, and at least one digit.
/// Leading `+`, bare `.5`, trailing-dot `5.`, zero-led `01`, and a
/// digitless exponent `1e` all fail.
fn is_canonical_number(text: &str) -> bool {
    let b = text.as_bytes();
    let mut i = usize::from(b.first() == Some(&b'-'));
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == int_start || (b[int_start] == b'0' && i - int_start > 1) {
        return false;
    }
    if i < b.len() && b[i] == b'.' {
        i += 1;
        let frac_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == frac_start {
            return false;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        let exp_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return false;
        }
    }
    i == b.len()
}

impl<'de> de::Deserializer<'de> for &mut Parser<'de> {
    type Error = JsonError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.peek()? {
            'n' => {
                self.expect_keyword("null")?;
                visitor.visit_unit()
            }
            't' => {
                self.expect_keyword("true")?;
                visitor.visit_bool(true)
            }
            'f' => {
                self.expect_keyword("false")?;
                visitor.visit_bool(false)
            }
            '"' => visitor.visit_string(self.parse_string()?),
            '[' => self.deserialize_seq(visitor),
            '{' => self.deserialize_map(visitor),
            _ => {
                let text = self.parse_number_text()?;
                // Integer-shaped tokens parse losslessly as u64/i64 first
                // (full 64-bit range); anything with a fraction or
                // exponent — or beyond 64 bits — falls back to f64.
                if !text.contains(['.', 'e', 'E']) {
                    if text.starts_with('-') {
                        if let Ok(v) = text.parse::<i64>() {
                            return visitor.visit_i64(v);
                        }
                    } else if let Ok(v) = text.parse::<u64>() {
                        return visitor.visit_u64(v);
                    }
                }
                let n: f64 = text
                    .parse()
                    .map_err(|_| JsonError::new(format!("bad number `{text}`")))?;
                visitor.visit_f64(n)
            }
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        if self.peek()? == 'n' {
            self.expect_keyword("null")?;
            visitor.visit_none()
        } else {
            visitor.visit_some(self)
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.expect_keyword("null")?;
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.expect('[')?;
        let value = visitor.visit_seq(SeqAccess {
            parser: self,
            first: true,
        })?;
        self.expect(']')?;
        Ok(value)
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.expect('{')?;
        let value = visitor.visit_map(SeqAccess {
            parser: self,
            first: true,
        })?;
        self.expect('}')?;
        Ok(value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        self.deserialize_map(visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        visitor.visit_enum(EnumAccess { parser: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        visitor.visit_string(self.parse_string()?)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.deserialize_any(visitor)
    }

    serde::forward_to_deserialize_any! {
        bool i8 i16 i32 i64 u8 u16 u32 u64 f32 f64 char str string bytes byte_buf
    }
}

struct SeqAccess<'p, 'de> {
    parser: &'p mut Parser<'de>,
    first: bool,
}

impl<'de> de::SeqAccess<'de> for SeqAccess<'_, 'de> {
    type Error = JsonError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, JsonError> {
        if self.parser.peek()? == ']' {
            return Ok(None);
        }
        if !self.first {
            self.parser.expect(',')?;
        }
        self.first = false;
        seed.deserialize(&mut *self.parser).map(Some)
    }
}

impl<'de> de::MapAccess<'de> for SeqAccess<'_, 'de> {
    type Error = JsonError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, JsonError> {
        if self.parser.peek()? == '}' {
            return Ok(None);
        }
        if !self.first {
            self.parser.expect(',')?;
        }
        self.first = false;
        seed.deserialize(&mut *self.parser).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, JsonError> {
        self.parser.expect(':')?;
        seed.deserialize(&mut *self.parser)
    }
}

struct EnumAccess<'p, 'de> {
    parser: &'p mut Parser<'de>,
}

impl<'de, 'p> de::EnumAccess<'de> for EnumAccess<'p, 'de> {
    type Error = JsonError;
    type Variant = VariantAccess<'p, 'de>;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), JsonError> {
        if self.parser.peek()? == '"' {
            // Unit variant: a bare string.
            let value = seed.deserialize(&mut *self.parser)?;
            Ok((value, VariantAccess { parser: None }))
        } else {
            // Data-carrying variant: {"Variant": payload}.
            self.parser.expect('{')?;
            let value = seed.deserialize(&mut *self.parser)?;
            self.parser.expect(':')?;
            Ok((
                value,
                VariantAccess {
                    parser: Some(self.parser),
                },
            ))
        }
    }
}

struct VariantAccess<'p, 'de> {
    /// `Some` when a `{"Variant": ...}` wrapper remains open.
    parser: Option<&'p mut Parser<'de>>,
}

impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
    type Error = JsonError;

    fn unit_variant(self) -> Result<(), JsonError> {
        match self.parser {
            None => Ok(()),
            Some(_) => Err(JsonError::new("expected a bare string for a unit variant")),
        }
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, JsonError> {
        let parser = self
            .parser
            .ok_or_else(|| JsonError::new("newtype variant needs a payload"))?;
        let value = seed.deserialize(&mut *parser)?;
        parser.expect('}')?;
        Ok(value)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        let parser = self
            .parser
            .ok_or_else(|| JsonError::new("tuple variant needs a payload"))?;
        let value = de::Deserializer::deserialize_seq(&mut *parser, visitor)?;
        parser.expect('}')?;
        Ok(value)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        let parser = self
            .parser
            .ok_or_else(|| JsonError::new("struct variant needs a payload"))?;
        let value = de::Deserializer::deserialize_map(&mut *parser, visitor)?;
        parser.expect('}')?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T>(value: &T) -> T
    where
        T: Serialize + DeserializeOwned + PartialEq + core::fmt::Debug,
    {
        let text = to_json(value).expect("serializes");
        let back: T = from_json(&text).expect("parses back");
        assert_eq!(&back, value, "json was: {text}");
        back
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        Newtype(u32),
        Tuple(u8, String),
        Struct { a: f64, b: Option<bool> },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Nested {
        name: String,
        values: Vec<f64>,
        kind: Kind,
        table: BTreeMap<String, i64>,
        opt: Option<String>,
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(&true);
        roundtrip(&42u64);
        roundtrip(&-17i32);
        roundtrip(&1.5e-3f64);
        roundtrip(&f64::MAX);
        roundtrip(&"hello \"quoted\" \n line".to_owned());
        roundtrip(&Option::<u8>::None);
        roundtrip(&Some(9u8));
    }

    #[test]
    fn leading_plus_is_rejected_per_variant() {
        // `+1` is not an RFC 8259 number; the old lexer let f64's parser
        // coerce it silently. Every numeric target must now reject it.
        assert!(from_json::<u64>("+1").is_err());
        assert!(from_json::<i64>("+1").is_err());
        assert!(from_json::<f64>("+1.5").is_err());
        assert!(from_json::<u32>("+0").is_err());
        assert!(from_json::<Vec<f64>>("[1.0, +2.0]").is_err());
    }

    #[test]
    fn bare_fraction_is_rejected_per_variant() {
        // `.5` (digitless integer part) likewise coerced before.
        assert!(from_json::<f64>(".5").is_err());
        assert!(from_json::<f64>("-.5").is_err());
        assert!(from_json::<f32>(".5").is_err());
        assert!(from_json::<Vec<f64>>("[.25]").is_err());
    }

    #[test]
    fn trailing_dot_and_digitless_exponent_are_rejected() {
        assert!(from_json::<f64>("5.").is_err());
        assert!(from_json::<f64>("1e").is_err());
        assert!(from_json::<f64>("1e+").is_err());
        assert!(from_json::<f64>("1.e3").is_err());
    }

    #[test]
    fn zero_led_integers_are_rejected() {
        assert!(from_json::<u64>("01").is_err());
        assert!(from_json::<f64>("00.5").is_err());
        // A lone `0` (and a `0.x` fraction) stays legal.
        assert_eq!(from_json::<u64>("0").expect("zero"), 0);
        assert_eq!(from_json::<f64>("0.5").expect("half"), 0.5);
        assert_eq!(from_json::<f64>("-0.5").expect("neg half"), -0.5);
    }

    #[test]
    fn canonical_numbers_still_parse() {
        assert_eq!(
            from_json::<u64>("18446744073709551615").expect("u64 max"),
            u64::MAX
        );
        assert_eq!(
            from_json::<i64>("-9223372036854775808").expect("i64 min"),
            i64::MIN
        );
        assert_eq!(from_json::<f64>("1.5e-3").expect("sci"), 1.5e-3);
        assert_eq!(from_json::<f64>("2E+8").expect("sci plus"), 2e8);
    }

    #[test]
    fn json_wire_backend_round_trips() {
        let value = Nested {
            name: "wire".into(),
            values: vec![0.25, -1.0],
            kind: Kind::Struct {
                a: 2.5,
                b: Some(false),
            },
            table: BTreeMap::new(),
            opt: None,
        };
        let codec = JsonWire;
        assert_eq!(WireCodec::<Nested>::format(&codec), WireFormat::Json);
        let bytes = codec.encode(&value).expect("encodes");
        assert_eq!(bytes, to_json(&value).expect("json").into_bytes());
        let back: Nested = codec.decode(&bytes).expect("decodes");
        assert_eq!(back, value);
        assert!(codec
            .decode(&bytes[..bytes.len() - 1])
            .map(|v: Nested| v)
            .is_err());
        assert!(codec.decode(&[0xFF, 0xFE]).map(|v: Nested| v).is_err());
    }

    #[test]
    fn containers_round_trip() {
        roundtrip(&vec![1.0f64, -2.5, 3.25e8]);
        roundtrip(&(1u8, "two".to_owned(), 3.0f32));
        let mut table = BTreeMap::new();
        table.insert("alpha".to_owned(), -1i64);
        table.insert("beta".to_owned(), 2);
        roundtrip(&table);
    }

    #[test]
    fn enums_round_trip() {
        roundtrip(&Kind::Unit);
        roundtrip(&Kind::Newtype(7));
        roundtrip(&Kind::Tuple(1, "x".into()));
        roundtrip(&Kind::Struct {
            a: 2.5,
            b: Some(false),
        });
        roundtrip(&Kind::Struct { a: -0.0, b: None });
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut table = BTreeMap::new();
        table.insert("k".to_owned(), 5i64);
        roundtrip(&Nested {
            name: "trace-θ".into(),
            values: vec![0.1, 0.2, f64::MIN_POSITIVE],
            kind: Kind::Struct { a: 1.0, b: None },
            table,
            opt: Some("present".into()),
        });
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let parsed: Vec<u32> = from_json(" [ 1 ,\n\t2 , 3 ] ").expect("parses");
        assert_eq!(parsed, vec![1, 2, 3]);
        let s: String = from_json(r#""a\u0041b""#).expect("parses");
        assert_eq!(s, "aAb");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_json::<u32>("").is_err());
        assert!(from_json::<u32>("12 34").is_err());
        assert!(from_json::<Vec<u32>>("[1, 2").is_err());
        assert!(from_json::<String>("\"unterminated").is_err());
        assert!(from_json::<bool>("maybe").is_err());
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        assert!(to_json(&f64::NAN).is_err());
        assert!(to_json(&f64::INFINITY).is_err());
    }

    #[test]
    fn full_range_integers_round_trip_exactly() {
        // Sharded record ids set the top bits of a u64 — far beyond
        // f64's 53-bit mantissa — so integers must not detour through a
        // float on the way back in.
        roundtrip(&u64::MAX);
        roundtrip(&(u64::MAX - 1));
        roundtrip(&((7u64 << 56) | (7 << 48) | 42)); // a sharded RecordId shape
        roundtrip(&i64::MIN);
        roundtrip(&i64::MAX);
        // Beyond u64: degrades to a float rather than erroring.
        let huge: f64 = from_json("100000000000000000000000").expect("parses");
        assert_eq!(huge, 1e23);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &v in &[0.1, 1.0 / 3.0, 2.5e-3, 9.96e-4, 1e300, -1e-300] {
            let text = to_json(&v).expect("serializes");
            let back: f64 = from_json(&text).expect("parses");
            assert_eq!(back, v, "text {text}");
        }
    }
}
