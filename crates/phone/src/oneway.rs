//! One-way (ACK-free) upload encoding for RF-restricted clinics.
//!
//! Some deployment sites — EMI-sensitive wards, shielded labs — forbid
//! any RF downlink into the clinic, so the retry-over-flaky-link path is
//! structurally unavailable: there is nothing to carry an ACK back. This
//! module is the phone side of the data-diode alternative: compress the
//! request body with the same LZW codec the relay already uses, then
//! fountain-encode it into a budgeted stream of self-describing coded
//! symbols. Any sufficiently large subset that survives the link lets
//! the gateway reassemble the upload; the phone never learns which
//! symbols made it and never needs to.

use medsen_fountain::{CodecError, Encoder, EncoderStats};

use crate::compress::compress;

/// Default coded-symbol payload size in bytes. Small enough that one
/// symbol rides comfortably in a single link MTU, large enough that the
/// 41-byte frame overhead stays under 10%.
pub const DEFAULT_SYMBOL_BYTES: usize = 512;

/// How many coded symbols to emit for a block of `k` source symbols.
///
/// The budget is the one-way substitute for retries: instead of
/// reacting to loss, the phone front-loads redundancy. `factor` scales
/// with `k`; `floor` keeps tiny blocks (small `k`) decodable, since LT
/// overhead is proportionally largest there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolBudget {
    /// Coded symbols per source symbol.
    pub factor: f64,
    /// Minimum extra symbols on top of `factor * k`.
    pub floor: u32,
}

impl SymbolBudget {
    /// The paper-scenario default: survives sustained 50% symbol drop
    /// with margin (expected surviving symbols ≈ 2k + floor/2).
    pub fn paper_default() -> Self {
        Self {
            factor: 4.0,
            floor: 24,
        }
    }

    /// A budget scaled for an expected worst-case drop rate: emits
    /// enough that the *surviving* stream still carries ~2x the source
    /// symbols.
    pub fn for_drop_rate(drop_rate: f64) -> Self {
        let survival = (1.0 - drop_rate.clamp(0.0, 0.95)).max(0.05);
        Self {
            factor: (2.0 / survival).max(2.0),
            floor: 24,
        }
    }

    /// Total symbols to emit for `k` source symbols.
    pub fn symbols_for(&self, k: usize) -> u64 {
        let scaled = (self.factor * k as f64).ceil() as u64;
        scaled.max(k as u64) + self.floor as u64
    }
}

/// Counters for one encoded one-way upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneWayStats {
    /// Request body bytes before compression.
    pub raw_bytes: usize,
    /// Compressed block bytes actually fountain-coded.
    pub compressed_bytes: usize,
    /// Encoder-side counters (k, symbols emitted, wire bytes).
    pub encoder: EncoderStats,
}

/// A fully encoded one-way upload: the budgeted symbol stream, in
/// emission order, each element one wire-ready symbol frame.
#[derive(Debug, Clone)]
pub struct OneWayUpload {
    /// Wire frames to emit, in order. A real diode phone sends them all;
    /// simulations may stop early once the in-process decoder completes.
    pub frames: Vec<Vec<u8>>,
    /// What was encoded.
    pub stats: OneWayStats,
}

/// The phone-side encoder for one-way uploads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneWayUploader {
    /// Coded-symbol payload size in bytes.
    pub symbol_bytes: usize,
    /// Redundancy budget.
    pub budget: SymbolBudget,
}

impl Default for OneWayUploader {
    fn default() -> Self {
        Self {
            symbol_bytes: DEFAULT_SYMBOL_BYTES,
            budget: SymbolBudget::paper_default(),
        }
    }
}

impl OneWayUploader {
    /// An uploader with an explicit budget and the default symbol size.
    pub fn with_budget(budget: SymbolBudget) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }

    /// Compress `body` and encode it as the first upload (`seq` 0) of
    /// session `session_id`. See [`OneWayUploader::encode_numbered`].
    pub fn encode(&self, session_id: u64, body: &[u8]) -> Result<OneWayUpload, CodecError> {
        self.encode_numbered(session_id, 0, body)
    }

    /// Compress `body` and encode it into a budgeted symbol stream as
    /// upload number `seq` of session `session_id`. The body is opaque
    /// bytes — in practice the complete framed upload (wire-format tag
    /// and all), so one-way traffic arrives at the gateway looking
    /// exactly like a two-way submission. The stream seed is derived
    /// from both ids, so consecutive requests from one session are
    /// distinct streams at the gateway (a completed upload's tombstone
    /// must not swallow the next request), while re-encoding the *same*
    /// upload re-emits the same stream. The gateway needs nothing beyond
    /// the frames themselves — each carries the seed explicitly.
    pub fn encode_numbered(
        &self,
        session_id: u64,
        seq: u64,
        body: &[u8],
    ) -> Result<OneWayUpload, CodecError> {
        let compressed = compress(body);
        let mut encoder = Encoder::new(
            session_id,
            stream_seed_for(session_id, seq),
            &compressed,
            self.symbol_bytes,
        )?;
        let total = self.budget.symbols_for(encoder.source_symbols());
        let mut frames = Vec::with_capacity(total as usize);
        for id in 0..total {
            frames.push(encoder.symbol_bytes(id));
        }
        Ok(OneWayUpload {
            frames,
            stats: OneWayStats {
                raw_bytes: body.len(),
                compressed_bytes: compressed.len(),
                encoder: encoder.stats(),
            },
        })
    }
}

/// The stream seed a phone derives for upload number `seq` of
/// `session_id`. Deterministic so a resumed upload re-emits the *same*
/// stream (symbol ids already sent stay valid), and distinct per upload
/// so the gateway sees each request as its own stream — the frames still
/// carry it, so the gateway never has to recompute this.
pub fn stream_seed_for(session_id: u64, seq: u64) -> u64 {
    (session_id ^ 0x0E1A_97F0_57E4_D10D).wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::decompress;
    use medsen_fountain::{decode_symbol_frame, Decoder};

    fn decode_all(upload: &OneWayUpload, keep: impl Fn(usize) -> bool) -> Option<Vec<u8>> {
        let mut dec: Option<Decoder> = None;
        for (i, wire) in upload.frames.iter().enumerate() {
            if !keep(i) {
                continue;
            }
            let (frame, _) = decode_symbol_frame(wire).expect("well-formed frame");
            let d = dec.get_or_insert_with(|| Decoder::for_frame(&frame).expect("bootstrap"));
            if d.push_frame(&frame).expect("stream match") {
                break;
            }
        }
        dec.and_then(|d| d.block())
    }

    #[test]
    fn budget_floors_protect_tiny_blocks() {
        let b = SymbolBudget::paper_default();
        assert_eq!(b.symbols_for(1), 28);
        assert_eq!(b.symbols_for(10), 64);
        let worst = SymbolBudget::for_drop_rate(0.5);
        assert!(worst.factor >= 4.0);
        assert!(SymbolBudget::for_drop_rate(2.0).factor <= 40.0 + 1e-9);
    }

    #[test]
    fn lossless_stream_round_trips_to_the_original_body() {
        let body = r#"{"Ping":{"sequence":42}}"#;
        let upload = OneWayUploader::default()
            .encode(7, body.as_bytes())
            .expect("encode");
        assert!(upload.frames.len() >= 28);
        let block = decode_all(&upload, |_| true).expect("complete");
        assert_eq!(decompress(&block).expect("lzw"), body.as_bytes());
        assert_eq!(upload.stats.raw_bytes, body.len());
    }

    #[test]
    fn every_other_symbol_dropped_still_round_trips() {
        // 50% deterministic loss against the default budget.
        let body: String = (0..200)
            .map(|i| format!("{{\"sequence\":{i}}}"))
            .collect::<Vec<_>>()
            .join(",");
        let upload = OneWayUploader::default()
            .encode(9, body.as_bytes())
            .expect("encode");
        let block = decode_all(&upload, |i| i % 2 == 0).expect("complete at 50% loss");
        assert_eq!(decompress(&block).expect("lzw"), body.as_bytes());
    }

    #[test]
    fn empty_body_is_encodable() {
        let upload = OneWayUploader::default().encode(3, b"").expect("encode");
        let block = decode_all(&upload, |_| true).expect("complete");
        assert_eq!(decompress(&block).expect("lzw"), b"");
    }

    #[test]
    fn stream_seed_is_deterministic_per_upload() {
        assert_eq!(stream_seed_for(5, 0), stream_seed_for(5, 0));
        assert_ne!(stream_seed_for(5, 0), stream_seed_for(6, 0));
        assert_ne!(
            stream_seed_for(5, 0),
            stream_seed_for(5, 1),
            "consecutive uploads must be distinct streams"
        );
        let a = OneWayUploader::default()
            .encode(5, b"body")
            .expect("encode");
        let b = OneWayUploader::default()
            .encode(5, b"body")
            .expect("encode");
        assert_eq!(a.frames, b.frames, "re-encoding must re-emit the stream");
        let c = OneWayUploader::default()
            .encode_numbered(5, 1, b"body")
            .expect("encode");
        assert_ne!(a.frames, c.frames, "next upload is a different stream");
    }
}
