//! The Android app's state machine.
//!
//! "This app has two purposes: it provides an interface for the user to
//! start the blood test and provides a test progression feedback ... and
//! relays the measurements to the cloud infrastructure ... It also receives
//! the analysis outcomes and forwards them to MedSen device" (Sec. VI-D).
//! The app never sees plaintext: it shuttles ciphertext and progress ticks.

use serde::{Deserialize, Serialize};

/// App lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppState {
    /// No accessory attached.
    Disconnected,
    /// AOAP handshake completed; prompting the user to start.
    Ready,
    /// Acquisition running; progress ticks arriving from the sensor.
    Testing,
    /// Compressing + uploading the encrypted measurements.
    Uploading,
    /// Waiting for the cloud's analysis result.
    AwaitingResult,
    /// Result relayed back to the sensor; session complete.
    Complete,
    /// A relay error occurred; user must restart the test.
    Failed,
}

/// Events driving the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppEvent {
    /// USB accessory detected and handshake finished.
    AccessoryAttached,
    /// USB unplugged.
    AccessoryDetached,
    /// User tapped "start blood test".
    StartPressed,
    /// The sensor reported acquisition progress (0–100).
    Progress(u8),
    /// The sensor finished acquiring; data is ready to relay.
    AcquisitionDone,
    /// Upload to the cloud finished.
    UploadDone,
    /// The cloud returned the analysis result.
    ResultReceived,
    /// Any transport error.
    TransportError,
}

/// The phone app.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhoneApp {
    state: AppState,
    /// Latest progress percentage shown to the user.
    progress: u8,
}

impl PhoneApp {
    /// A freshly launched app.
    pub fn new() -> Self {
        Self {
            state: AppState::Disconnected,
            progress: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> AppState {
        self.state
    }

    /// Latest progress percentage.
    pub fn progress(&self) -> u8 {
        self.progress
    }

    /// Feeds one event; returns the new state. Illegal events for the
    /// current state are ignored (the UI can always receive stale ticks).
    pub fn handle(&mut self, event: AppEvent) -> AppState {
        use AppEvent as E;
        use AppState as S;
        self.state = match (self.state, event) {
            (_, E::AccessoryDetached) => {
                self.progress = 0;
                S::Disconnected
            }
            (_, E::TransportError) => S::Failed,
            (S::Disconnected, E::AccessoryAttached) => S::Ready,
            (S::Failed, E::AccessoryAttached) => S::Ready,
            (S::Ready, E::StartPressed) => {
                self.progress = 0;
                S::Testing
            }
            (S::Testing, E::Progress(p)) => {
                self.progress = p.min(100);
                S::Testing
            }
            (S::Testing, E::AcquisitionDone) => S::Uploading,
            (S::Uploading, E::UploadDone) => S::AwaitingResult,
            (S::AwaitingResult, E::ResultReceived) => S::Complete,
            (state, _) => state, // ignore out-of-order events
        };
        self.state
    }

    /// Runs a full happy-path session in one call (used by examples).
    pub fn run_happy_path(&mut self) -> AppState {
        for event in [
            AppEvent::AccessoryAttached,
            AppEvent::StartPressed,
            AppEvent::Progress(50),
            AppEvent::Progress(100),
            AppEvent::AcquisitionDone,
            AppEvent::UploadDone,
            AppEvent::ResultReceived,
        ] {
            self.handle(event);
        }
        self.state
    }
}

impl Default for PhoneApp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_reaches_complete() {
        let mut app = PhoneApp::new();
        assert_eq!(app.run_happy_path(), AppState::Complete);
        assert_eq!(app.progress(), 100);
    }

    #[test]
    fn cannot_start_before_accessory_attaches() {
        let mut app = PhoneApp::new();
        assert_eq!(app.handle(AppEvent::StartPressed), AppState::Disconnected);
    }

    #[test]
    fn detach_resets_from_any_state() {
        let mut app = PhoneApp::new();
        app.handle(AppEvent::AccessoryAttached);
        app.handle(AppEvent::StartPressed);
        app.handle(AppEvent::Progress(70));
        assert_eq!(
            app.handle(AppEvent::AccessoryDetached),
            AppState::Disconnected
        );
        assert_eq!(app.progress(), 0);
    }

    #[test]
    fn transport_error_fails_then_recovers_on_reattach() {
        let mut app = PhoneApp::new();
        app.handle(AppEvent::AccessoryAttached);
        app.handle(AppEvent::StartPressed);
        assert_eq!(app.handle(AppEvent::TransportError), AppState::Failed);
        assert_eq!(app.handle(AppEvent::AccessoryAttached), AppState::Ready);
    }

    #[test]
    fn out_of_order_events_are_ignored() {
        let mut app = PhoneApp::new();
        app.handle(AppEvent::AccessoryAttached);
        // Result before upload: ignored.
        assert_eq!(app.handle(AppEvent::ResultReceived), AppState::Ready);
        assert_eq!(app.handle(AppEvent::UploadDone), AppState::Ready);
    }

    #[test]
    fn progress_is_clamped_to_100() {
        let mut app = PhoneApp::new();
        app.handle(AppEvent::AccessoryAttached);
        app.handle(AppEvent::StartPressed);
        app.handle(AppEvent::Progress(250));
        assert_eq!(app.progress(), 100);
    }

    #[test]
    fn progress_ticks_only_count_while_testing() {
        let mut app = PhoneApp::new();
        app.handle(AppEvent::Progress(40));
        assert_eq!(app.progress(), 0);
    }
}
