//! From-scratch LZW compression — the stand-in for the prototype's zip stage.
//!
//! "To improve the network transfer efficiency, MedSen implements zip data
//! compression on the smartphone. This reduced the sample size [600 MB of
//! CSV] to 240 MB" (Sec. VII-B) — a 2.5× ratio. An LZW codec with 12-bit
//! codes and dictionary reset achieves a comparable ratio on the same kind of
//! numeric CSV text, with no external dependency.
//!
//! Wire format: a stream of 12-bit codes packed big-endian into bytes,
//! preceded by the 8-byte original length.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

const MAX_CODE_BITS: u32 = 12;
const MAX_DICT: usize = 1 << MAX_CODE_BITS; // 4096
const RESET_CODE: u16 = 256; // emitted when the dictionary resets
const FIRST_FREE: u16 = 257;

/// Compression statistics for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Uncompressed size in bytes.
    pub raw_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Raw / compressed (the paper's 600 MB / 240 MB = 2.5).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    n_bits: u32,
}

impl BitWriter {
    fn new() -> Self {
        Self {
            out: Vec::new(),
            acc: 0,
            n_bits: 0,
        }
    }

    fn push(&mut self, code: u16) {
        self.acc = (self.acc << MAX_CODE_BITS) | u64::from(code);
        self.n_bits += MAX_CODE_BITS;
        while self.n_bits >= 8 {
            self.n_bits -= 8;
            self.out.push((self.acc >> self.n_bits) as u8);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.n_bits > 0 {
            self.out.push((self.acc << (8 - self.n_bits)) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    n_bits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            n_bits: 0,
        }
    }

    fn next(&mut self) -> Option<u16> {
        while self.n_bits < MAX_CODE_BITS {
            if self.pos >= self.data.len() {
                return None;
            }
            self.acc = (self.acc << 8) | u64::from(self.data[self.pos]);
            self.pos += 1;
            self.n_bits += 8;
        }
        self.n_bits -= MAX_CODE_BITS;
        Some(((self.acc >> self.n_bits) & 0xFFF) as u16)
    }
}

/// Compresses a byte slice.
///
/// # Examples
///
/// ```
/// use medsen_phone::{compress, decompress};
///
/// let data = b"measurement,measurement,measurement".repeat(40);
/// let packed = compress(&data);
/// assert!(packed.len() < data.len() / 2);
/// assert_eq!(decompress(&packed).unwrap(), data);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u64).to_be_bytes());
    if data.is_empty() {
        return out;
    }

    let mut dict: HashMap<Vec<u8>, u16> = HashMap::with_capacity(MAX_DICT);
    let mut next_code = FIRST_FREE;
    let mut writer = BitWriter::new();
    let mut current: Vec<u8> = vec![data[0]];

    for &byte in &data[1..] {
        let mut candidate = current.clone();
        candidate.push(byte);
        if dict.contains_key(&candidate) {
            current = candidate;
        } else {
            writer.push(code_of(&dict, &current));
            if next_code as usize >= MAX_DICT {
                writer.push(RESET_CODE);
                dict.clear();
                next_code = FIRST_FREE;
            } else {
                dict.insert(candidate, next_code);
                next_code += 1;
            }
            current = vec![byte];
        }
    }
    writer.push(code_of(&dict, &current));
    out.extend_from_slice(&writer.finish());
    out
}

fn code_of(dict: &HashMap<Vec<u8>, u16>, seq: &[u8]) -> u16 {
    if seq.len() == 1 {
        u16::from(seq[0])
    } else {
        *dict
            .get(seq)
            .expect("sequence was inserted before being emitted")
    }
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// Missing or short header.
    Truncated,
    /// A code referenced an entry that does not exist.
    BadCode(u16),
    /// The decoded output did not match the declared length.
    LengthMismatch {
        /// Length declared in the header.
        declared: u64,
        /// Length actually decoded.
        decoded: u64,
    },
}

impl core::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadCode(c) => write!(f, "invalid LZW code {c}"),
            DecompressError::LengthMismatch { declared, decoded } => {
                write!(f, "declared {declared} bytes but decoded {decoded}")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns a [`DecompressError`] on malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if data.len() < 8 {
        return Err(DecompressError::Truncated);
    }
    let declared = u64::from_be_bytes(data[..8].try_into().expect("8 bytes"));
    let mut out: Vec<u8> = Vec::with_capacity(declared as usize);
    let mut reader = BitReader::new(&data[8..]);

    let mut dict: Vec<Vec<u8>> = Vec::with_capacity(MAX_DICT);
    let reset = |dict: &mut Vec<Vec<u8>>| {
        dict.clear();
        for b in 0..=255u8 {
            dict.push(vec![b]);
        }
        dict.push(Vec::new()); // RESET_CODE placeholder
    };
    reset(&mut dict);

    let mut prev: Option<Vec<u8>> = None;
    while (out.len() as u64) < declared {
        let code = reader.next().ok_or(DecompressError::Truncated)?;
        if code == RESET_CODE {
            reset(&mut dict);
            prev = None;
            continue;
        }
        let entry = if (code as usize) < dict.len() {
            dict[code as usize].clone()
        } else if code as usize == dict.len() {
            // The classic KwKwK case.
            let p = prev.clone().ok_or(DecompressError::BadCode(code))?;
            let mut e = p.clone();
            e.push(p[0]);
            e
        } else {
            return Err(DecompressError::BadCode(code));
        };
        out.extend_from_slice(&entry);
        if let Some(p) = prev {
            if dict.len() < MAX_DICT {
                let mut new_entry = p;
                new_entry.push(entry[0]);
                dict.push(new_entry);
            }
        }
        prev = Some(entry);
    }
    if out.len() as u64 != declared {
        return Err(DecompressError::LengthMismatch {
            declared,
            decoded: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> CompressionStats {
        let compressed = compress(data);
        let restored = decompress(&compressed).expect("valid stream");
        assert_eq!(restored, data, "round-trip mismatch");
        CompressionStats {
            raw_bytes: data.len(),
            compressed_bytes: compressed.len(),
        }
    }

    #[test]
    fn empty_input_round_trips() {
        let stats = roundtrip(b"");
        assert_eq!(stats.raw_bytes, 0);
    }

    #[test]
    fn short_inputs_round_trip() {
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaa");
        roundtrip(b"abcabcabc");
    }

    #[test]
    fn kwkwk_pattern_round_trips() {
        // The classic LZW edge case: code referencing the entry being built.
        roundtrip(b"abababababababab");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaa");
    }

    #[test]
    fn binary_data_round_trips() {
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn csv_like_text_compresses_well() {
        // Numeric CSV of the kind the prototype uploads.
        let mut csv = String::from("time,ch0,ch1,ch2\n");
        for i in 0..5_000 {
            let t = i as f64 / 450.0;
            csv.push_str(&format!(
                "{t:.6},{:.6},{:.6},{:.6}\n",
                1.0 + (i % 7) as f64 * 1e-6,
                1.0 + (i % 11) as f64 * 1e-6,
                1.0 + (i % 13) as f64 * 1e-6
            ));
        }
        let stats = roundtrip(csv.as_bytes());
        // The paper's zip achieved 2.5×; LZW on the same shape of data should
        // land in the same band.
        assert!(stats.ratio() > 2.0, "ratio {}", stats.ratio());
    }

    #[test]
    fn dictionary_reset_handles_long_inputs() {
        // Force multiple dictionary resets (>4096 entries of fresh material).
        let mut data = Vec::new();
        for i in 0..200_000u32 {
            data.extend_from_slice(&i.to_be_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn truncated_streams_are_rejected() {
        assert_eq!(
            decompress(&[1, 2, 3]).unwrap_err(),
            DecompressError::Truncated
        );
        let compressed = compress(b"hello world hello world");
        let err = decompress(&compressed[..compressed.len() - 2]).unwrap_err();
        assert!(matches!(
            err,
            DecompressError::Truncated | DecompressError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn ratio_reports_zero_for_empty_compressed() {
        let stats = CompressionStats {
            raw_bytes: 0,
            compressed_bytes: 0,
        };
        assert_eq!(stats.ratio(), 0.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn arbitrary_bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
                let compressed = compress(&data);
                let restored = decompress(&compressed).unwrap();
                prop_assert_eq!(restored, data);
            }

            #[test]
            fn repetitive_text_round_trips(word in "[a-z]{1,8}", reps in 1usize..500) {
                let data = word.repeat(reps);
                let compressed = compress(data.as_bytes());
                let restored = decompress(&compressed).unwrap();
                prop_assert_eq!(restored, data.as_bytes());
            }
        }
    }
}
