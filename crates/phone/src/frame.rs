//! Android Open Accessory-style message framing.
//!
//! "The Raspberry Pi runs a daemon listening for events on the USB port.
//! When the phone is connected, the daemon exchanges information with the
//! device using the Android Open Accessory Protocol" (Sec. VI-D). Frames are
//! length-prefixed with a Fletcher-16 checksum so the relay notices USB
//! corruption; the message-type byte carries the AOAP handshake plus the
//! MedSen data channel.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Message types on the accessory link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum MessageType {
    /// AOAP: protocol-version query.
    GetProtocol = 0x01,
    /// AOAP: identification string (manufacturer/model/version/URI).
    SendString = 0x02,
    /// AOAP: switch the device into accessory mode.
    StartAccessory = 0x03,
    /// MedSen: user pressed "start blood test".
    StartTest = 0x10,
    /// MedSen: a chunk of (compressed, encrypted) measurement data.
    DataChunk = 0x11,
    /// MedSen: test progression update for the UI.
    Progress = 0x12,
    /// MedSen: analysis outcome returning to the sensor for decryption.
    AnalysisResult = 0x13,
}

impl MessageType {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0x01 => Some(Self::GetProtocol),
            0x02 => Some(Self::SendString),
            0x03 => Some(Self::StartAccessory),
            0x10 => Some(Self::StartTest),
            0x11 => Some(Self::DataChunk),
            0x12 => Some(Self::Progress),
            0x13 => Some(Self::AnalysisResult),
            _ => None,
        }
    }
}

/// Framing/deframing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a minimal frame.
    Truncated,
    /// The length prefix disagrees with the available bytes.
    LengthMismatch {
        /// Declared payload length.
        declared: usize,
        /// Actually available payload bytes.
        available: usize,
    },
    /// Unknown message-type byte.
    UnknownType(u8),
    /// Checksum verification failed (corrupted frame).
    ChecksumMismatch,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame shorter than header"),
            FrameError::LengthMismatch {
                declared,
                available,
            } => write!(
                f,
                "declared {declared} payload bytes, {available} available"
            ),
            FrameError::UnknownType(t) => write!(f, "unknown message type 0x{t:02x}"),
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One framed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message type.
    pub msg_type: MessageType,
    /// Opaque payload.
    pub payload: Bytes,
}

/// Fletcher-16 checksum over type + payload.
fn fletcher16(msg_type: u8, payload: &[u8]) -> u16 {
    let mut a: u16 = 0;
    let mut b: u16 = 0;
    let mut step = |byte: u8| {
        a = (a + u16::from(byte)) % 255;
        b = (b + a) % 255;
    };
    step(msg_type);
    for &byte in payload {
        step(byte);
    }
    (b << 8) | a
}

impl Frame {
    /// Creates a frame.
    pub fn new(msg_type: MessageType, payload: impl Into<Bytes>) -> Self {
        Self {
            msg_type,
            payload: payload.into(),
        }
    }

    /// Wire layout: `[type: u8][len: u32 BE][payload][checksum: u16 BE]`.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + 4 + self.payload.len() + 2);
        buf.put_u8(self.msg_type as u8);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.put_u16(fletcher16(self.msg_type as u8, &self.payload));
        buf.freeze()
    }

    /// Decodes a frame from the front of `bytes`, returning it plus the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] on truncation, bad type, or checksum failure.
    pub fn decode(mut bytes: &[u8]) -> Result<(Self, usize), FrameError> {
        if bytes.len() < 7 {
            return Err(FrameError::Truncated);
        }
        let type_byte = bytes.get_u8();
        let msg_type = MessageType::from_u8(type_byte).ok_or(FrameError::UnknownType(type_byte))?;
        let declared = bytes.get_u32() as usize;
        if bytes.len() < declared + 2 {
            return Err(FrameError::LengthMismatch {
                declared,
                available: bytes.len().saturating_sub(2),
            });
        }
        let payload = Bytes::copy_from_slice(&bytes[..declared]);
        bytes.advance(declared);
        let checksum = bytes.get_u16();
        if checksum != fletcher16(type_byte, &payload) {
            return Err(FrameError::ChecksumMismatch);
        }
        Ok((Self { msg_type, payload }, 1 + 4 + declared + 2))
    }
}

/// Splits a data buffer into `DataChunk` frames of at most `chunk_size`
/// payload bytes (USB bulk transfers are size-limited).
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
pub fn chunk_data(data: &[u8], chunk_size: usize) -> Vec<Frame> {
    assert!(chunk_size > 0, "chunk size must be positive");
    data.chunks(chunk_size)
        .map(|c| Frame::new(MessageType::DataChunk, Bytes::copy_from_slice(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let frame = Frame::new(MessageType::StartTest, Bytes::from_static(b"go"));
        let wire = frame.encode();
        let (decoded, used) = Frame::decode(&wire).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn empty_payload_round_trip() {
        let frame = Frame::new(MessageType::GetProtocol, Bytes::new());
        let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded.payload.len(), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let frame = Frame::new(MessageType::DataChunk, Bytes::from_static(b"abcdef"));
        let mut wire = frame.encode().to_vec();
        wire[7] ^= 0x40; // flip a payload bit
        assert_eq!(
            Frame::decode(&wire).unwrap_err(),
            FrameError::ChecksumMismatch
        );
    }

    #[test]
    fn truncated_frames_are_rejected() {
        assert_eq!(
            Frame::decode(&[0x10, 0, 0]).unwrap_err(),
            FrameError::Truncated
        );
        let frame = Frame::new(MessageType::DataChunk, Bytes::from_static(b"abcdef"));
        let wire = frame.encode();
        let err = Frame::decode(&wire[..wire.len() - 4]).unwrap_err();
        assert!(matches!(err, FrameError::LengthMismatch { .. }));
    }

    #[test]
    fn unknown_type_is_rejected() {
        let mut wire = Frame::new(MessageType::Progress, Bytes::new())
            .encode()
            .to_vec();
        wire[0] = 0x7f;
        assert_eq!(
            Frame::decode(&wire).unwrap_err(),
            FrameError::UnknownType(0x7f)
        );
    }

    #[test]
    fn chunking_partitions_data_exactly() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let frames = chunk_data(&data, 256);
        assert_eq!(frames.len(), 4);
        let reassembled: Vec<u8> = frames.iter().flat_map(|f| f.payload.to_vec()).collect();
        assert_eq!(reassembled, data);
        assert_eq!(frames[3].payload.len(), 1000 - 3 * 256);
    }

    #[test]
    fn frames_decode_from_a_stream_sequentially() {
        let a = Frame::new(MessageType::Progress, Bytes::from_static(b"50%")).encode();
        let b = Frame::new(MessageType::Progress, Bytes::from_static(b"99%")).encode();
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let (first, used) = Frame::decode(&stream).unwrap();
        let (second, _) = Frame::decode(&stream[used..]).unwrap();
        assert_eq!(first.payload.as_ref(), b"50%");
        assert_eq!(second.payload.as_ref(), b"99%");
    }

    #[test]
    fn checksum_differs_across_types() {
        // Same payload, different type byte → different checksum.
        let a = fletcher16(MessageType::DataChunk as u8, b"xyz");
        let b = fletcher16(MessageType::Progress as u8, b"xyz");
        assert_ne!(a, b);
    }
}
