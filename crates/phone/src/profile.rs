//! The Fig. 14 device performance model.
//!
//! Figure 14 times the peak-analysis pipeline at three sample sizes on a
//! laptop-class machine (Intel i7-4710MQ, 16 GB) and the Nexus 5 (Snapdragon
//! 800, 2 GB). Both scale linearly in sample count, with the computer
//! roughly 3.5–4.5× faster — which is the paper's argument for cloud
//! offloading of large samples. [`DeviceProfile`] captures the affine model
//! fitted to the paper's published points.

use medsen_units::Seconds;
use serde::{Deserialize, Serialize};

use crate::network::NetworkLink;

/// The three sample sizes Fig. 14 reports.
pub const PAPER_FIG14_SAMPLE_SIZES: [usize; 3] = [240_607, 481_214, 962_428];

/// The paper's measured times (seconds) on the computer, by sample size.
pub const PAPER_FIG14_COMPUTER_S: [f64; 3] = [0.11, 0.215, 0.343];

/// The paper's measured times (seconds) on the Nexus 5, by sample size.
pub const PAPER_FIG14_PHONE_S: [f64; 3] = [0.452, 0.81, 1.554];

/// An affine processing-time model: `time = fixed + per_sample × n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Fixed overhead per analysis run.
    pub fixed: Seconds,
    /// Marginal cost per sample.
    pub per_sample: Seconds,
}

impl DeviceProfile {
    /// The Fig. 14 computer (Intel i7-4710MQ, 16 GB RAM), fitted to the
    /// published points.
    pub fn paper_computer() -> Self {
        Self::fitted("Intel i7-4710MQ (16GB RAM)", &PAPER_FIG14_COMPUTER_S)
    }

    /// The Fig. 14 smartphone (Nexus 5, Snapdragon 800, 2 GB RAM).
    pub fn paper_phone() -> Self {
        Self::fitted(
            "Nexus 5 - Qualcomm MSM8974 Snapdragon 800 (2GB RAM)",
            &PAPER_FIG14_PHONE_S,
        )
    }

    fn fitted(name: &str, times: &[f64; 3]) -> Self {
        // Least-squares affine fit through the three published points.
        let xs: Vec<f64> = PAPER_FIG14_SAMPLE_SIZES.iter().map(|&n| n as f64).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = times.iter().sum::<f64>() / n;
        let sxy: f64 = xs.iter().zip(times).map(|(x, y)| (x - mx) * (y - my)).sum();
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        Self {
            name: name.to_owned(),
            fixed: Seconds::new(intercept.max(0.0)),
            per_sample: Seconds::new(slope),
        }
    }

    /// Predicted analysis time for `n_samples`.
    pub fn predict(&self, n_samples: usize) -> Seconds {
        self.fixed + self.per_sample * n_samples as f64
    }

    /// Throughput in samples per second at large n.
    pub fn throughput(&self) -> f64 {
        1.0 / self.per_sample.value()
    }

    /// The offloading decision of Sec. VII-B: analysis goes to the cloud
    /// when phone-local processing would be slower than uploading the
    /// (compressed) data and processing it remotely.
    pub fn should_offload(
        &self,
        cloud: &DeviceProfile,
        link: &NetworkLink,
        n_samples: usize,
        upload_bytes: usize,
    ) -> bool {
        let local = self.predict(n_samples);
        let remote = cloud.predict(n_samples) + link.round_trip(upload_bytes, 1024);
        remote.value() < local.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_profiles_reproduce_fig14_points() {
        let computer = DeviceProfile::paper_computer();
        let phone = DeviceProfile::paper_phone();
        for (i, &n) in PAPER_FIG14_SAMPLE_SIZES.iter().enumerate() {
            let pc = computer.predict(n).value();
            let ph = phone.predict(n).value();
            assert!(
                (pc - PAPER_FIG14_COMPUTER_S[i]).abs() / PAPER_FIG14_COMPUTER_S[i] < 0.15,
                "computer at {n}: {pc}"
            );
            assert!(
                (ph - PAPER_FIG14_PHONE_S[i]).abs() / PAPER_FIG14_PHONE_S[i] < 0.15,
                "phone at {n}: {ph}"
            );
        }
    }

    #[test]
    fn computer_is_several_times_faster_than_phone() {
        let computer = DeviceProfile::paper_computer();
        let phone = DeviceProfile::paper_phone();
        let ratio = phone.per_sample.value() / computer.per_sample.value();
        assert!(
            (3.0..6.0).contains(&ratio),
            "marginal speed ratio {ratio} outside the paper's band"
        );
    }

    #[test]
    fn prediction_is_monotonic_in_sample_count() {
        let phone = DeviceProfile::paper_phone();
        assert!(phone.predict(1_000_000).value() > phone.predict(100_000).value());
    }

    #[test]
    fn large_samples_offload_small_ones_do_not() {
        let phone = DeviceProfile::paper_phone();
        let cloud = DeviceProfile::paper_computer();
        let link = NetworkLink::lte_uplink();
        // ~1 M samples with a 10 MB compressed upload: uploading costs ~8 s
        // against 1.55 s locally — stay local. A 3-hour acquisition
        // (50 M samples, ~30 MB compressed) takes ~76 s locally but only
        // ~40 s via the cloud — offload.
        assert!(!phone.should_offload(&cloud, &link, 962_428, 10_000_000));
        assert!(phone.should_offload(&cloud, &link, 50_000_000, 30_000_000));
    }

    #[test]
    fn throughput_matches_slope() {
        let computer = DeviceProfile::paper_computer();
        // ≈ 3.1 M samples/s marginal throughput from the Fig. 14 slope.
        let tp = computer.throughput();
        assert!((2.0e6..5.0e6).contains(&tp), "throughput {tp}");
    }
}
