//! CSV serialization of signal traces.
//!
//! The prototype captures measurements "in csv files" (Sec. VII-B) — a time
//! column followed by one column per carrier channel, which is also what made
//! a 3-hour acquisition weigh 600 MB before compression.

use medsen_impedance::trace::SignalComponent;
use medsen_impedance::{Channel, SignalTrace};
use medsen_units::Hertz;
use std::fmt::Write as _;

/// Serializes a trace to CSV (header row: `time,<carrier Hz>...`; quadrature
/// channels carry a `Q` suffix, e.g. `500000Q`).
pub fn trace_to_csv(trace: &SignalTrace) -> String {
    let mut csv = String::from("time");
    for ch in trace.channels() {
        match ch.component {
            SignalComponent::InPhase => {
                let _ = write!(csv, ",{}", ch.carrier.value());
            }
            SignalComponent::Quadrature => {
                let _ = write!(csv, ",{}Q", ch.carrier.value());
            }
        }
    }
    csv.push('\n');
    for i in 0..trace.len() {
        let _ = write!(csv, "{:.6}", trace.time_of(i).value());
        for ch in trace.channels() {
            let _ = write!(csv, ",{:.8}", ch.samples[i]);
        }
        csv.push('\n');
    }
    csv
}

/// CSV parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// The header did not start with `time`.
    BadHeader,
    /// A carrier column was not a number.
    BadCarrier(String),
    /// A data row had the wrong number of fields.
    BadRowWidth {
        /// 1-based row number.
        row: usize,
        /// Expected field count.
        expected: usize,
        /// Found field count.
        found: usize,
    },
    /// A sample could not be parsed.
    BadSample {
        /// 1-based row number.
        row: usize,
        /// The offending field.
        field: String,
    },
    /// Fewer than two rows: a sample rate cannot be inferred.
    TooShort,
}

impl core::fmt::Display for CsvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing CSV header"),
            CsvError::BadHeader => write!(f, "header must start with `time`"),
            CsvError::BadCarrier(s) => write!(f, "bad carrier column `{s}`"),
            CsvError::BadRowWidth {
                row,
                expected,
                found,
            } => write!(f, "row {row}: expected {expected} fields, found {found}"),
            CsvError::BadSample { row, field } => {
                write!(f, "row {row}: unparsable sample `{field}`")
            }
            CsvError::TooShort => write!(f, "need at least two data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a trace back from CSV produced by [`trace_to_csv`].
///
/// The sample rate is inferred from the timestamp column's full span.
///
/// # Errors
///
/// Returns a [`CsvError`] describing the first malformed element.
pub fn trace_from_csv(csv: &str) -> Result<SignalTrace, CsvError> {
    let mut lines = csv.lines();
    let header = lines.next().ok_or(CsvError::MissingHeader)?;
    let mut cols = header.split(',');
    if cols.next() != Some("time") {
        return Err(CsvError::BadHeader);
    }
    let carriers: Vec<(Hertz, SignalComponent)> = cols
        .map(|c| {
            let (num, component) = match c.strip_suffix('Q') {
                Some(num) => (num, SignalComponent::Quadrature),
                None => (c, SignalComponent::InPhase),
            };
            num.parse::<f64>()
                .map(|f| (Hertz::new(f), component))
                .map_err(|_| CsvError::BadCarrier(c.to_owned()))
        })
        .collect::<Result<_, _>>()?;

    let expected = carriers.len() + 1;
    let mut times: Vec<f64> = Vec::new();
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); carriers.len()];
    for (idx, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let row = idx + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected {
            return Err(CsvError::BadRowWidth {
                row,
                expected,
                found: fields.len(),
            });
        }
        let parse = |s: &str| {
            s.parse::<f64>().map_err(|_| CsvError::BadSample {
                row,
                field: s.to_owned(),
            })
        };
        times.push(parse(fields[0])?);
        for (ch, field) in samples.iter_mut().zip(&fields[1..]) {
            ch.push(parse(field)?);
        }
    }
    if times.len() < 2 {
        return Err(CsvError::TooShort);
    }
    // Infer the rate from the full span rather than one step: printed
    // timestamps are rounded to µs, and dividing the whole span by the row
    // count averages that quantization away.
    let span = times.last().expect("non-empty") - times[0];
    let sample_rate = Hertz::new((times.len() - 1) as f64 / span);
    let channels = carriers
        .into_iter()
        .zip(samples)
        .map(|((carrier, component), samples)| Channel {
            carrier,
            samples,
            component,
        })
        .collect();
    Ok(SignalTrace::new(sample_rate, channels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_impedance::{PulseSpec, TraceSynthesizer};
    use medsen_units::Seconds;

    fn sample_trace() -> SignalTrace {
        let mut synth = TraceSynthesizer::clean(1);
        synth.render(
            &[PulseSpec::unipolar(
                Seconds::new(0.5),
                Seconds::new(0.02),
                0.01,
            )],
            Seconds::new(1.0),
        )
    }

    #[test]
    fn csv_round_trip_preserves_structure() {
        let trace = sample_trace();
        let csv = trace_to_csv(&trace);
        let parsed = trace_from_csv(&csv).unwrap();
        assert_eq!(parsed.channels().len(), trace.channels().len());
        assert_eq!(parsed.len(), trace.len());
        assert!((parsed.sample_rate.value() - 450.0).abs() < 1.0);
        // Values survive to printed precision.
        let a = trace.channels()[0].samples[225];
        let b = parsed.channels()[0].samples[225];
        assert!((a - b).abs() < 1e-7);
    }

    #[test]
    fn csv_has_header_and_right_row_count() {
        let trace = sample_trace();
        let csv = trace_to_csv(&trace);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("time,500000"));
        assert_eq!(lines.count(), trace.len());
    }

    #[test]
    fn csv_size_matches_paper_scale() {
        // 3 h at 450 Hz × 8 channels ≈ 4.86 M rows; the paper measured
        // ~600 MB, i.e. ~120 bytes/row. Our row width should be comparable.
        let trace = sample_trace();
        let csv = trace_to_csv(&trace);
        let bytes_per_row = csv.len() as f64 / trace.len() as f64;
        assert!(
            (60.0..160.0).contains(&bytes_per_row),
            "bytes/row {bytes_per_row}"
        );
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert_eq!(trace_from_csv("").unwrap_err(), CsvError::MissingHeader);
        assert_eq!(
            trace_from_csv("tick,500000\n0,1\n0.1,1\n").unwrap_err(),
            CsvError::BadHeader
        );
        assert_eq!(
            trace_from_csv("time,abc\n0,1\n0.1,1\n").unwrap_err(),
            CsvError::BadCarrier("abc".into())
        );
        assert!(matches!(
            trace_from_csv("time,500000\n0,1,2\n").unwrap_err(),
            CsvError::BadRowWidth { row: 1, .. }
        ));
        assert!(matches!(
            trace_from_csv("time,500000\n0,xx\n").unwrap_err(),
            CsvError::BadSample { row: 1, .. }
        ));
        assert_eq!(
            trace_from_csv("time,500000\n0,1\n").unwrap_err(),
            CsvError::TooShort
        );
    }

    #[test]
    fn iq_traces_round_trip_with_component_labels() {
        use medsen_impedance::synth::MultiChannelPulse;
        let mut synth = TraceSynthesizer::clean(3).with_iq(true);
        let n = synth.excitation.carriers().len();
        let mc = MultiChannelPulse {
            spec: PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.01),
            channel_gains: vec![1.0; n],
            quadrature_gains: vec![0.4; n],
        };
        let trace = synth.render_multichannel(&[mc], Seconds::new(1.0));
        let csv = trace_to_csv(&trace);
        assert!(csv.lines().next().unwrap().contains("500000Q"));
        let parsed = trace_from_csv(&csv).unwrap();
        assert_eq!(parsed.channels().len(), trace.channels().len());
        let q = parsed
            .quadrature_at(medsen_units::Hertz::from_khz(500.0))
            .expect("quadrature channel survives");
        assert_eq!(q.component, SignalComponent::Quadrature);
    }

    #[test]
    fn empty_trailing_lines_are_ignored() {
        let csv = "time,500000\n0,1.0\n0.002222,1.0\n\n";
        let parsed = trace_from_csv(csv).unwrap();
        assert_eq!(parsed.len(), 2);
    }
}
