//! The trusted computing base audit (threat model, Sec. II).
//!
//! "MedSen's trusted computing base is its sensor. Aside from the sensor,
//! which physically manipulates the patient blood sample, and the combination
//! of a small controller and a multiplexer responsible for managing the
//! diagnostic experiment settings, no other component has access to the true
//! cytometry information. MedSen neither trusts the smartphone nor the remote
//! server ... assumed to follow a curious but honest adversarial model."

use serde::{Deserialize, Serialize};

/// Trust assigned to a system component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrustLevel {
    /// Inside the TCB: sees plaintext cytometry data and/or key material.
    Trusted,
    /// Outside the TCB: follows the protocol but may inspect everything it
    /// sees (honest-but-curious).
    CuriousButHonest,
}

/// One component and its trust classification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ComponentTrust {
    /// Component name.
    pub name: &'static str,
    /// Assigned trust.
    pub level: TrustLevel,
    /// What the component can observe.
    pub observes: &'static str,
}

/// The full system trust audit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TcbAudit {
    components: Vec<ComponentTrust>,
}

impl TcbAudit {
    /// MedSen's component trust assignment.
    pub fn medsen() -> Self {
        Self {
            components: vec![
                ComponentTrust {
                    name: "bio-sensor",
                    level: TrustLevel::Trusted,
                    observes: "raw analog cytometry signal, patient blood sample",
                },
                ComponentTrust {
                    name: "micro-controller",
                    level: TrustLevel::Trusted,
                    observes: "cipher keys, decrypted counts, diagnosis outcome",
                },
                ComponentTrust {
                    name: "multiplexer",
                    level: TrustLevel::Trusted,
                    observes: "electrode routing state (part of the key)",
                },
                ComponentTrust {
                    name: "smartphone",
                    level: TrustLevel::CuriousButHonest,
                    observes: "encrypted trace, progress UI events",
                },
                ComponentTrust {
                    name: "cloud server",
                    level: TrustLevel::CuriousButHonest,
                    observes: "encrypted trace, encrypted peak statistics",
                },
            ],
        }
    }

    /// All components.
    pub fn components(&self) -> &[ComponentTrust] {
        &self.components
    }

    /// The trusted subset — MedSen's TCB.
    pub fn tcb(&self) -> Vec<&ComponentTrust> {
        self.components
            .iter()
            .filter(|c| c.level == TrustLevel::Trusted)
            .collect()
    }

    /// Checks the headline claim: the TCB is small (at most `max` components)
    /// and excludes the phone and the cloud.
    pub fn is_minimal(&self, max: usize) -> bool {
        let tcb = self.tcb();
        tcb.len() <= max
            && !tcb
                .iter()
                .any(|c| c.name == "smartphone" || c.name == "cloud server")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medsen_tcb_is_sensor_controller_mux() {
        let audit = TcbAudit::medsen();
        let names: Vec<&str> = audit.tcb().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["bio-sensor", "micro-controller", "multiplexer"]);
    }

    #[test]
    fn phone_and_cloud_are_untrusted() {
        let audit = TcbAudit::medsen();
        for name in ["smartphone", "cloud server"] {
            let c = audit
                .components()
                .iter()
                .find(|c| c.name == name)
                .expect("component listed");
            assert_eq!(c.level, TrustLevel::CuriousButHonest);
        }
    }

    #[test]
    fn tcb_is_minimal() {
        assert!(TcbAudit::medsen().is_minimal(3));
        assert!(!TcbAudit::medsen().is_minimal(2));
    }
}
