//! Multi-electrode sensing-region designs (Fig. 5).
//!
//! Each sensing region has one common excitation rake and `n` independent
//! output electrodes interleaved with it. The *lead* electrode (the lower
//! left one) is complemented by a single input electrode, so it responds with
//! one voltage dip per passing cell; every other output electrode is flanked
//! by excitation electrodes on both sides and responds with the
//! characteristic *double* dip. The fabricated prototype exposes this
//! asymmetry as its "ninth electrode" quirk (Sec. VII-A, limitation 1).

use medsen_microfluidics::ChannelGeometry;
use medsen_units::Micrometers;
use serde::{Deserialize, Serialize};

/// A 1-based output-electrode identifier, as the paper numbers them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElectrodeId(pub u8);

impl core::fmt::Display for ElectrodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "electrode {}", self.0)
    }
}

/// One sensing region's electrode layout.
///
/// # Examples
///
/// ```
/// use medsen_sensor::{ElectrodeArray, ElectrodeId};
///
/// // The fabricated 9-output prototype: the lead electrode single-dips,
/// // so all nine electrodes yield the Fig. 11d seventeen-peak train.
/// let array = ElectrodeArray::paper_prototype();
/// let all: Vec<ElectrodeId> = array.electrodes().collect();
/// assert_eq!(array.peak_multiplicity(&all), 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElectrodeArray {
    n_outputs: u8,
    lead: ElectrodeId,
}

impl ElectrodeArray {
    /// The output-electrode counts fabricated in the paper (Fig. 5 shows
    /// 2/3/5/9; Sec. VI-B sizes the key for a 16-output device).
    pub const PAPER_DESIGNS: [u8; 5] = [2, 3, 5, 9, 16];

    /// Creates an array with `n_outputs` outputs whose lead electrode is the
    /// highest-numbered one, as in the Fig. 11 prototype ("the lead electrode
    /// (or electrode 9)").
    ///
    /// # Errors
    ///
    /// Fails for zero outputs or more than 16 (the MAX14661 mux limit).
    pub fn new(n_outputs: u8) -> Result<Self, String> {
        Self::with_lead(n_outputs, ElectrodeId(n_outputs))
    }

    /// Creates an array with an explicit lead electrode (the Fig. 8 device
    /// has its lead among electrodes 1–3).
    ///
    /// # Errors
    ///
    /// Fails for zero outputs, more than 16 outputs, or an out-of-range lead.
    pub fn with_lead(n_outputs: u8, lead: ElectrodeId) -> Result<Self, String> {
        if n_outputs == 0 {
            return Err("an electrode array needs at least one output".into());
        }
        if n_outputs > 16 {
            return Err("the 16:2 multiplexer supports at most 16 outputs".into());
        }
        if lead.0 == 0 || lead.0 > n_outputs {
            return Err(format!(
                "lead electrode {} out of range 1..={n_outputs}",
                lead.0
            ));
        }
        Ok(Self { n_outputs, lead })
    }

    /// The paper's 9-output prototype (lead = electrode 9).
    pub fn paper_prototype() -> Self {
        Self::new(9).expect("9 outputs is a valid design")
    }

    /// Number of output electrodes.
    pub fn n_outputs(&self) -> u8 {
        self.n_outputs
    }

    /// The lead electrode.
    pub fn lead(&self) -> ElectrodeId {
        self.lead
    }

    /// All electrode ids, 1-based.
    pub fn electrodes(&self) -> impl Iterator<Item = ElectrodeId> {
        (1..=self.n_outputs).map(ElectrodeId)
    }

    /// Dips one passing particle produces on electrode `e`: 1 on the lead,
    /// 2 elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn dips_per_particle(&self, e: ElectrodeId) -> usize {
        assert!(
            e.0 >= 1 && e.0 <= self.n_outputs,
            "electrode {e} out of range"
        );
        if e == self.lead {
            1
        } else {
            2
        }
    }

    /// Total dips per particle when the given electrodes are active — the
    /// cipher's *peak multiplication factor*. Fig. 11d: all nine outputs of
    /// the prototype yield 8 × 2 + 1 = 17 peaks per bead.
    pub fn peak_multiplicity(&self, active: &[ElectrodeId]) -> usize {
        active.iter().map(|&e| self.dips_per_particle(e)).sum()
    }

    /// Spacing between consecutive output electrodes' sensing regions, in
    /// electrode pitches. Fig. 5 spreads the sensing regions along the
    /// channel; generous spacing is also the hardening the paper suggests for
    /// its limitation 2 (adjacent regions blur one particle's dips together).
    pub const REGION_PITCH_SPACING: f64 = 8.0;

    /// Downstream position of electrode `e`'s sensing gap along the channel.
    /// Electrode 1 is the furthest downstream in the numbering of Fig. 11
    /// (the lead, highest-numbered, is hit first).
    pub fn position(&self, e: ElectrodeId, geometry: &ChannelGeometry) -> Micrometers {
        assert!(
            e.0 >= 1 && e.0 <= self.n_outputs,
            "electrode {e} out of range"
        );
        let slot = self.n_outputs - e.0; // lead (= n) at slot 0
        Micrometers::new(
            Self::REGION_PITCH_SPACING * geometry.electrode_pitch.value() * slot as f64,
        )
    }

    /// Full span from the first to the last sensing gap.
    pub fn span(&self, geometry: &ChannelGeometry) -> Micrometers {
        self.position(ElectrodeId(1), geometry) + geometry.sensing_span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_has_nine_outputs_lead_nine() {
        let a = ElectrodeArray::paper_prototype();
        assert_eq!(a.n_outputs(), 9);
        assert_eq!(a.lead(), ElectrodeId(9));
    }

    #[test]
    fn lead_gives_single_dip_others_double() {
        let a = ElectrodeArray::paper_prototype();
        assert_eq!(a.dips_per_particle(ElectrodeId(9)), 1);
        for e in 1..=8 {
            assert_eq!(a.dips_per_particle(ElectrodeId(e)), 2);
        }
    }

    #[test]
    fn all_nine_active_gives_seventeen_peaks() {
        // Fig. 11d: "a relatively flat periodic train of 17 peaks".
        let a = ElectrodeArray::paper_prototype();
        let all: Vec<ElectrodeId> = a.electrodes().collect();
        assert_eq!(a.peak_multiplicity(&all), 17);
    }

    #[test]
    fn fig11_subset_multiplicities() {
        let a = ElectrodeArray::paper_prototype();
        // Fig. 11a: one non-lead output → 2? No: Fig 11a selects a single
        // output; with the lead selected it is 1 dip, with any other it is 2.
        assert_eq!(a.peak_multiplicity(&[ElectrodeId(9)]), 1);
        // Fig. 11b: lead + electrode 1 → 3 dips.
        assert_eq!(a.peak_multiplicity(&[ElectrodeId(9), ElectrodeId(1)]), 3);
        // Fig. 11c: lead + electrodes 1, 2 → 5 dips.
        assert_eq!(
            a.peak_multiplicity(&[ElectrodeId(9), ElectrodeId(1), ElectrodeId(2)]),
            5
        );
    }

    #[test]
    fn fig8_device_with_low_lead_gives_five_peaks_for_three_electrodes() {
        // Fig. 8: "output electrodes 1-3 turned on ... results in five peaks".
        let a = ElectrodeArray::with_lead(9, ElectrodeId(1)).unwrap();
        let sel = [ElectrodeId(1), ElectrodeId(2), ElectrodeId(3)];
        assert_eq!(a.peak_multiplicity(&sel), 5);
    }

    #[test]
    fn rejects_invalid_designs() {
        assert!(ElectrodeArray::new(0).is_err());
        assert!(ElectrodeArray::new(17).is_err());
        assert!(ElectrodeArray::with_lead(4, ElectrodeId(5)).is_err());
        assert!(ElectrodeArray::with_lead(4, ElectrodeId(0)).is_err());
    }

    #[test]
    fn paper_designs_all_construct() {
        for n in ElectrodeArray::PAPER_DESIGNS {
            assert!(ElectrodeArray::new(n).is_ok(), "design {n}");
        }
    }

    #[test]
    fn positions_decrease_with_electrode_number() {
        let a = ElectrodeArray::paper_prototype();
        let g = ChannelGeometry::paper_default();
        // Lead (9) is hit first (position 0), electrode 1 last.
        assert_eq!(a.position(ElectrodeId(9), &g).value(), 0.0);
        let p1 = a.position(ElectrodeId(1), &g).value();
        assert_eq!(p1, ElectrodeArray::REGION_PITCH_SPACING * 25.0 * 8.0);
        assert!(a.span(&g).value() > p1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn position_of_unknown_electrode_panics() {
        let a = ElectrodeArray::paper_prototype();
        let _ = a.position(ElectrodeId(10), &ChannelGeometry::paper_default());
    }
}
