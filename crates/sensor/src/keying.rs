//! The cipher key `K(t) = (E(t), G(t), S(t))` and its accounting.
//!
//! Section IV-A: every peak's key is the tuple of (on/off electrode vector,
//! per-electrode output gains, channel flow speed). The ideal design keys
//! every cell independently — Eq. (2) sizes that key — while the deployed
//! design rotates the key periodically ("MedSen implements an alternative
//! scheme that periodically changes the encryption parameters every time
//! unit").
//!
//! Key material is deliberately **not** serializable: it must never leave the
//! controller. All types here implement only the traits needed inside the
//! trusted computing base.

use crate::array::{ElectrodeArray, ElectrodeId};
use medsen_units::Seconds;

/// The number of discrete gain levels (4-bit, Sec. VI-B).
pub const GAIN_LEVELS: u8 = 16;
/// The number of discrete flow-speed levels (4-bit, Sec. VI-B).
pub const FLOW_LEVELS: u8 = 16;

/// A 4-bit output-gain level for one electrode.
///
/// Levels map log-uniformly onto the gain range `[0.7, 2.8]` — a 4× span,
/// chosen because "the amplitude and width of a peak ... will typically be as
/// much as four times larger than the smallest peak observable", while
/// keeping even minimum-gain peaks above the server's detection threshold
/// (the server must still be able to *count* encrypted peaks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GainLevel(u8);

impl GainLevel {
    /// Creates a gain level.
    ///
    /// # Errors
    ///
    /// Fails when `level >= GAIN_LEVELS`.
    pub fn new(level: u8) -> Result<Self, String> {
        if level >= GAIN_LEVELS {
            return Err(format!("gain level {level} out of range 0..{GAIN_LEVELS}"));
        }
        Ok(Self(level))
    }

    /// The unit-gain level (multiplier closest to 1.0).
    pub fn unity() -> Self {
        Self(4)
    }

    /// The raw 4-bit level.
    pub fn level(self) -> u8 {
        self.0
    }

    /// The voltage multiplier this level applies.
    pub fn multiplier(self) -> f64 {
        0.7 * 4.0f64.powf(self.0 as f64 / (GAIN_LEVELS - 1) as f64)
    }
}

/// A 4-bit flow-speed level.
///
/// Levels map log-uniformly onto `[0.5×, 2×]` of the nominal pump rate —
/// a 4× span of peak widths ("the slow fluid speed results in peaks with
/// larger widths").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowLevel(u8);

impl FlowLevel {
    /// Creates a flow level.
    ///
    /// # Errors
    ///
    /// Fails when `level >= FLOW_LEVELS`.
    pub fn new(level: u8) -> Result<Self, String> {
        if level >= FLOW_LEVELS {
            return Err(format!("flow level {level} out of range 0..{FLOW_LEVELS}"));
        }
        Ok(Self(level))
    }

    /// The nominal-speed level (multiplier closest to 1.0).
    pub fn nominal() -> Self {
        Self(8)
    }

    /// The raw 4-bit level.
    pub fn level(self) -> u8 {
        self.0
    }

    /// The velocity multiplier this level applies to the nominal flow.
    pub fn multiplier(self) -> f64 {
        0.5 * 4.0f64.powf(self.0 as f64 / (FLOW_LEVELS - 1) as f64)
    }
}

/// A non-empty subset of output electrodes (the binary vector `E`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ElectrodeSelection {
    mask: u16,
    n_outputs: u8,
}

impl ElectrodeSelection {
    /// Builds a selection from explicit electrode ids.
    ///
    /// # Errors
    ///
    /// Fails when the list is empty, an id is out of range for the array, or
    /// an id repeats.
    pub fn new(array: &ElectrodeArray, ids: &[ElectrodeId]) -> Result<Self, String> {
        if ids.is_empty() {
            return Err("selection must activate at least one electrode".into());
        }
        let mut mask: u16 = 0;
        for &ElectrodeId(id) in ids {
            if id == 0 || id > array.n_outputs() {
                return Err(format!(
                    "electrode {id} out of range 1..={}",
                    array.n_outputs()
                ));
            }
            let bit = 1u16 << (id - 1);
            if mask & bit != 0 {
                return Err(format!("electrode {id} selected twice"));
            }
            mask |= bit;
        }
        Ok(Self {
            mask,
            n_outputs: array.n_outputs(),
        })
    }

    /// Selects every output electrode.
    pub fn all(array: &ElectrodeArray) -> Self {
        let ids: Vec<ElectrodeId> = array.electrodes().collect();
        Self::new(array, &ids).expect("all-electrodes selection is valid")
    }

    /// Whether electrode `e` is active.
    pub fn contains(&self, e: ElectrodeId) -> bool {
        e.0 >= 1 && e.0 <= self.n_outputs && self.mask & (1 << (e.0 - 1)) != 0
    }

    /// Active electrode ids, ascending.
    pub fn ids(&self) -> Vec<ElectrodeId> {
        (1..=self.n_outputs)
            .filter(|&i| self.mask & (1 << (i - 1)) != 0)
            .map(ElectrodeId)
            .collect()
    }

    /// Number of active electrodes.
    pub fn len(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Selections are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the selection contains two adjacent electrodes — the pattern
    /// Sec. VII-A flags as an information leak ("selecting an electrode key
    /// pattern that does not use successive electrodes").
    pub fn has_adjacent_pair(&self) -> bool {
        (self.mask & (self.mask >> 1)) != 0
    }
}

/// One complete cipher key `K = (E, G, S)` for one time unit (or one cell in
/// the ideal scheme).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CipherKey {
    /// The electrode on/off vector `E`.
    pub selection: ElectrodeSelection,
    /// Per-electrode gains `G`, indexed by electrode id − 1 (length = number
    /// of outputs; gains of unselected electrodes are ignored).
    pub gains: Vec<GainLevel>,
    /// The flow-speed setting `S`.
    pub flow: FlowLevel,
}

impl CipherKey {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Fails when the gain vector length differs from the array size implied
    /// by the selection.
    pub fn validate(&self) -> Result<(), String> {
        if self.gains.len() != usize::from(self.selection_outputs()) {
            return Err(format!(
                "gain vector has {} entries for {} outputs",
                self.gains.len(),
                self.selection_outputs()
            ));
        }
        Ok(())
    }

    fn selection_outputs(&self) -> u8 {
        self.selection.n_outputs
    }

    /// The gain multiplier for electrode `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn gain_of(&self, e: ElectrodeId) -> f64 {
        assert!(e.0 >= 1 && usize::from(e.0) <= self.gains.len());
        self.gains[usize::from(e.0) - 1].multiplier()
    }

    /// The peak multiplication factor of this key on `array`.
    pub fn multiplicity(&self, array: &ElectrodeArray) -> usize {
        array.peak_multiplicity(&self.selection.ids())
    }

    /// Bits of key material in this key per Eq. (2)'s per-cell accounting:
    /// `N_elec` selection bits, `N_elec/2 × R_gain` gain bits, `R_flow` flow
    /// bits.
    pub fn bits(&self) -> usize {
        let n_elec = usize::from(self.selection_outputs());
        n_elec + n_elec / 2 * 4 + 4
    }

    /// What an eavesdropper on the encrypted stream can actually extract
    /// from one cell keyed by this key: the peak multiplicity, the gain
    /// levels of the *selected* electrodes in arrival (id) order, and the
    /// flow level (from quantized peak widths). Electrode *identity* is
    /// not observable — two selections with the same multiplicity and
    /// gain sequence are indistinguishable on the wire — which is exactly
    /// why the observable entropy the audit measures sits far below the
    /// Eq. (2) key budget.
    pub fn observable_projection(&self, array: &ElectrodeArray) -> Vec<u8> {
        let ids = self.selection.ids();
        let mut observed = Vec::with_capacity(ids.len() + 2);
        observed.push(self.multiplicity(array) as u8);
        for id in &ids {
            observed.push(self.gains[usize::from(id.0) - 1].level());
        }
        observed.push(self.flow.level());
        observed
    }
}

/// Eq. (2): the total key length, in bits, of the ideal per-cell scheme.
///
/// `L = N_cells × (N_elec + N_elec/2 × R_gain + R_flow)`
///
/// # Examples
///
/// ```
/// use medsen_sensor::ideal_key_length_bits;
/// // Sec. VI-B: 20 K cells, 16 electrodes, 4-bit gains, 4-bit flow → ~1 Mbit.
/// let bits = ideal_key_length_bits(20_000, 16, 4, 4);
/// assert_eq!(bits, 1_040_000);
/// assert!((bits as f64 / 8.0 / 1.0e6 - 0.13).abs() < 0.011); // ≈ 0.12–0.13 MB
/// ```
pub fn ideal_key_length_bits(
    n_cells: u64,
    n_electrodes: u64,
    r_gain_bits: u64,
    r_flow_bits: u64,
) -> u64 {
    n_cells * (n_electrodes + n_electrodes / 2 * r_gain_bits + r_flow_bits)
}

/// A key schedule: which key encrypts which instant of the acquisition.
#[derive(Debug, Clone, PartialEq)]
pub enum KeySchedule {
    /// One key for the entire run (encryption effectively static — used with
    /// encryption "off" for the authentication path, or as a weak baseline).
    Static(CipherKey),
    /// The deployed scheme: a fresh key every `period` ("periodically changes
    /// the encryption parameters every time unit").
    Periodic {
        /// Key rotation period.
        period: Seconds,
        /// Keys for consecutive periods, cycled if the run outlasts them.
        keys: Vec<CipherKey>,
    },
}

impl KeySchedule {
    /// The key in force at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if a periodic schedule has no keys (prevented at generation).
    pub fn key_at(&self, t: Seconds) -> &CipherKey {
        match self {
            KeySchedule::Static(k) => k,
            KeySchedule::Periodic { period, keys } => {
                assert!(!keys.is_empty(), "periodic schedule without keys");
                let idx = (t.value() / period.value()).floor().max(0.0) as usize;
                &keys[idx % keys.len()]
            }
        }
    }

    /// Index of the key period containing time `t` (0 for static schedules).
    pub fn period_index(&self, t: Seconds) -> usize {
        match self {
            KeySchedule::Static(_) => 0,
            KeySchedule::Periodic { period, .. } => {
                (t.value() / period.value()).floor().max(0.0) as usize
            }
        }
    }

    /// Total distinct key material in bits.
    pub fn total_bits(&self) -> usize {
        match self {
            KeySchedule::Static(k) => k.bits(),
            KeySchedule::Periodic { keys, .. } => keys.iter().map(CipherKey::bits).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> ElectrodeArray {
        ElectrodeArray::paper_prototype()
    }

    #[test]
    fn paper_key_length_is_about_one_megabit() {
        // "20K ∗ (16 + 8 ∗ 4 + 4) = 1M-bits key (0.12MB)"
        let bits = ideal_key_length_bits(20_000, 16, 4, 4);
        assert_eq!(bits, 20_000 * 52);
        let mb = bits as f64 / 8.0 / 1e6;
        assert!(mb > 0.11 && mb < 0.14, "MB = {mb}");
    }

    #[test]
    fn key_length_is_linear_in_cell_count() {
        // "the key length varies linearly as function of the number of cells"
        let l1 = ideal_key_length_bits(1_000, 16, 4, 4);
        let l4 = ideal_key_length_bits(4_000, 16, 4, 4);
        assert_eq!(l4, 4 * l1);
    }

    #[test]
    fn gain_levels_span_a_4x_log_range() {
        let lo = GainLevel::new(0).unwrap().multiplier();
        let hi = GainLevel::new(15).unwrap().multiplier();
        assert!((hi / lo - 4.0).abs() < 1e-9);
        assert!((GainLevel::unity().multiplier() - 1.0).abs() < 0.1);
        assert!(GainLevel::new(16).is_err());
    }

    #[test]
    fn flow_levels_span_half_to_double() {
        let lo = FlowLevel::new(0).unwrap().multiplier();
        let hi = FlowLevel::new(15).unwrap().multiplier();
        assert!((lo - 0.5).abs() < 1e-9);
        assert!((hi - 2.0).abs() < 1e-9);
        assert!((FlowLevel::nominal().multiplier() - 1.0).abs() < 0.1);
        assert!(FlowLevel::new(16).is_err());
    }

    #[test]
    fn gain_multipliers_are_strictly_increasing() {
        let mults: Vec<f64> = (0..GAIN_LEVELS)
            .map(|l| GainLevel::new(l).unwrap().multiplier())
            .collect();
        assert!(mults.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn selection_round_trips_ids() {
        let a = array();
        let sel =
            ElectrodeSelection::new(&a, &[ElectrodeId(9), ElectrodeId(1), ElectrodeId(4)]).unwrap();
        assert_eq!(
            sel.ids(),
            vec![ElectrodeId(1), ElectrodeId(4), ElectrodeId(9)]
        );
        assert_eq!(sel.len(), 3);
        assert!(sel.contains(ElectrodeId(4)));
        assert!(!sel.contains(ElectrodeId(5)));
    }

    #[test]
    fn selection_rejects_bad_inputs() {
        let a = array();
        assert!(ElectrodeSelection::new(&a, &[]).is_err());
        assert!(ElectrodeSelection::new(&a, &[ElectrodeId(10)]).is_err());
        assert!(ElectrodeSelection::new(&a, &[ElectrodeId(0)]).is_err());
        assert!(
            ElectrodeSelection::new(&a, &[ElectrodeId(3), ElectrodeId(3)]).is_err(),
            "duplicate must be rejected"
        );
    }

    #[test]
    fn adjacency_detection() {
        let a = array();
        let adjacent = ElectrodeSelection::new(&a, &[ElectrodeId(3), ElectrodeId(4)]).unwrap();
        let spaced = ElectrodeSelection::new(&a, &[ElectrodeId(3), ElectrodeId(7)]).unwrap();
        assert!(adjacent.has_adjacent_pair());
        assert!(!spaced.has_adjacent_pair());
    }

    #[test]
    fn key_multiplicity_and_bits() {
        let a = array();
        let key = CipherKey {
            selection: ElectrodeSelection::new(&a, &[ElectrodeId(9), ElectrodeId(1)]).unwrap(),
            gains: vec![GainLevel::unity(); 9],
            flow: FlowLevel::nominal(),
        };
        key.validate().unwrap();
        assert_eq!(key.multiplicity(&a), 3);
        // 9 + 4·4 + 4 = 29 bits for a 9-output device.
        assert_eq!(key.bits(), 9 + 4 * 4 + 4);
    }

    #[test]
    fn observable_projection_hides_electrode_identity() {
        let a = array();
        let mut gains = vec![GainLevel::unity(); 9];
        gains[1] = GainLevel::new(3).unwrap();
        gains[6] = GainLevel::new(3).unwrap();
        let key_a = CipherKey {
            selection: ElectrodeSelection::new(&a, &[ElectrodeId(2)]).unwrap(),
            gains: gains.clone(),
            flow: FlowLevel::nominal(),
        };
        let key_b = CipherKey {
            selection: ElectrodeSelection::new(&a, &[ElectrodeId(7)]).unwrap(),
            gains,
            flow: FlowLevel::nominal(),
        };
        // Different keys (different electrodes), identical wire view.
        assert_ne!(key_a, key_b);
        assert_eq!(
            key_a.observable_projection(&a),
            key_b.observable_projection(&a)
        );
        // Layout: multiplicity, one gain per selected electrode, flow.
        let view = key_a.observable_projection(&a);
        assert_eq!(view.len(), 1 + key_a.selection.len() + 1);
        assert_eq!(view[1], 3);
        assert_eq!(*view.last().unwrap(), FlowLevel::nominal().level());
    }

    #[test]
    fn key_validation_rejects_wrong_gain_length() {
        let a = array();
        let key = CipherKey {
            selection: ElectrodeSelection::all(&a),
            gains: vec![GainLevel::unity(); 5],
            flow: FlowLevel::nominal(),
        };
        assert!(key.validate().is_err());
    }

    #[test]
    fn periodic_schedule_rotates_and_cycles() {
        let a = array();
        let mk = |e: u8| CipherKey {
            selection: ElectrodeSelection::new(&a, &[ElectrodeId(e)]).unwrap(),
            gains: vec![GainLevel::unity(); 9],
            flow: FlowLevel::nominal(),
        };
        let sched = KeySchedule::Periodic {
            period: Seconds::new(1.0),
            keys: vec![mk(1), mk(2), mk(3)],
        };
        assert_eq!(
            sched.key_at(Seconds::new(0.5)).selection.ids()[0],
            ElectrodeId(1)
        );
        assert_eq!(
            sched.key_at(Seconds::new(1.5)).selection.ids()[0],
            ElectrodeId(2)
        );
        assert_eq!(
            sched.key_at(Seconds::new(2.5)).selection.ids()[0],
            ElectrodeId(3)
        );
        // Cycles after the key list is exhausted.
        assert_eq!(
            sched.key_at(Seconds::new(3.5)).selection.ids()[0],
            ElectrodeId(1)
        );
        assert_eq!(sched.period_index(Seconds::new(3.5)), 3);
        assert_eq!(sched.total_bits(), 3 * (9 + 16 + 4));
    }

    #[test]
    fn static_schedule_is_time_invariant() {
        let a = array();
        let key = CipherKey {
            selection: ElectrodeSelection::all(&a),
            gains: vec![GainLevel::unity(); 9],
            flow: FlowLevel::nominal(),
        };
        let sched = KeySchedule::Static(key.clone());
        assert_eq!(sched.key_at(Seconds::new(0.0)), &key);
        assert_eq!(sched.key_at(Seconds::new(1e6)), &key);
        assert_eq!(sched.period_index(Seconds::new(1e6)), 0);
    }
}
