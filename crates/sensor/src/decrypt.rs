//! Decryption of cloud peak reports.
//!
//! The cloud can only count peaks; it cannot know how many dips one particle
//! produced. The controller, which holds the key schedule, divides the peak
//! count observed in each key period by that period's multiplication factor
//! to recover the true particle count: "by dividing the number of peaks
//! observed in a data set by the multiplication factor, the attacker would
//! recover the initial number of cell passing through the channel" — which is
//! exactly what the *legitimate* decryptor does, because only it knows the
//! factor.

use crate::array::ElectrodeArray;
use crate::keying::KeySchedule;
use medsen_units::Seconds;
use serde::{Deserialize, Serialize};

/// A peak as reported back by the analysis server. This is the only
/// information the untrusted side returns — deliberately free of key
/// material.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportedPeak {
    /// Peak timestamp (seconds from acquisition start).
    pub time_s: f64,
    /// Peak depth in normalized units.
    pub amplitude: f64,
    /// Peak width in seconds.
    pub width_s: f64,
}

/// The decrypted result for one acquisition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecryptedCount {
    /// Estimated true particle count (fractional before rounding).
    pub estimated: f64,
    /// Per-key-period detail: (period index, observed peaks, multiplicity).
    pub periods: Vec<(usize, usize, usize)>,
}

impl DecryptedCount {
    /// The estimate rounded to a whole particle count.
    pub fn rounded(&self) -> u64 {
        self.estimated.round().max(0.0) as u64
    }
}

/// The controller-side decryptor. Holds a borrow of the key schedule —
/// decryption can only happen where the key lives.
#[derive(Debug)]
pub struct Decryptor<'k> {
    array: ElectrodeArray,
    schedule: &'k KeySchedule,
    dip_delay: Seconds,
}

impl<'k> Decryptor<'k> {
    /// Creates a decryptor for an array/schedule pair.
    pub fn new(array: ElectrodeArray, schedule: &'k KeySchedule) -> Self {
        Self {
            array,
            schedule,
            dip_delay: Seconds::ZERO,
        }
    }

    /// Sets the mean dip delay used to re-centre peaks onto the key period
    /// of the particle's *arrival*. A particle arriving late in a key period
    /// produces dips well into the next period (the array spans hundreds of
    /// micrometres of travel); subtracting the expected half-span transit
    /// before period lookup largely removes that bias.
    pub fn with_dip_delay(mut self, delay: Seconds) -> Self {
        self.dip_delay = delay;
        self
    }

    /// Recovers the true particle count from the server's peak report.
    ///
    /// Peaks are grouped by key period; each group's count is divided by the
    /// multiplication factor of the key that was in force.
    pub fn decrypt(&self, peaks: &[ReportedPeak]) -> DecryptedCount {
        use std::collections::BTreeMap;
        let mut by_period: BTreeMap<usize, usize> = BTreeMap::new();
        for p in peaks {
            let t = (p.time_s - self.dip_delay.value()).max(0.0);
            let idx = self.schedule.period_index(Seconds::new(t));
            *by_period.entry(idx).or_insert(0) += 1;
        }
        let mut estimated = 0.0;
        let mut periods = Vec::with_capacity(by_period.len());
        for (idx, count) in by_period {
            let t = match self.schedule {
                KeySchedule::Static(_) => Seconds::ZERO,
                KeySchedule::Periodic { period, .. } => {
                    Seconds::new((idx as f64 + 0.5) * period.value())
                }
            };
            let multiplicity = self.schedule.key_at(t).multiplicity(&self.array).max(1);
            estimated += count as f64 / multiplicity as f64;
            periods.push((idx, count, multiplicity));
        }
        DecryptedCount { estimated, periods }
    }

    /// Decrypts a peak amplitude back to the un-gained value, given the
    /// electrode that produced it. (Light computation — "multiplications and
    /// divisions" — as the paper notes; usable on the resource-constrained
    /// controller.)
    pub fn decrypt_amplitude(
        &self,
        peak: &ReportedPeak,
        electrode: crate::array::ElectrodeId,
    ) -> f64 {
        let key = self.schedule.key_at(Seconds::new(peak.time_s));
        peak.amplitude / key.gain_of(electrode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ElectrodeId;
    use crate::keying::{CipherKey, ElectrodeSelection, FlowLevel, GainLevel};

    fn array() -> ElectrodeArray {
        ElectrodeArray::paper_prototype()
    }

    fn key(ids: &[u8], gain_level: u8) -> CipherKey {
        let a = array();
        CipherKey {
            selection: ElectrodeSelection::new(
                &a,
                &ids.iter().map(|&i| ElectrodeId(i)).collect::<Vec<_>>(),
            )
            .unwrap(),
            gains: vec![GainLevel::new(gain_level).unwrap(); 9],
            flow: FlowLevel::nominal(),
        }
    }

    fn peaks_at(times: &[f64]) -> Vec<ReportedPeak> {
        times
            .iter()
            .map(|&t| ReportedPeak {
                time_s: t,
                amplitude: 0.005,
                width_s: 0.01,
            })
            .collect()
    }

    #[test]
    fn static_schedule_divides_by_constant_multiplicity() {
        let sched = KeySchedule::Static(key(&[9, 1], 4)); // multiplicity 3
        let d = Decryptor::new(array(), &sched);
        let result = d.decrypt(&peaks_at(&[0.1, 0.2, 0.3, 1.1, 1.2, 1.3]));
        assert!((result.estimated - 2.0).abs() < 1e-9);
        assert_eq!(result.rounded(), 2);
    }

    #[test]
    fn periodic_schedule_uses_per_period_multiplicity() {
        let sched = KeySchedule::Periodic {
            period: Seconds::new(1.0),
            keys: vec![key(&[9], 4), key(&[9, 1], 4)], // multiplicities 1, 3
        };
        let d = Decryptor::new(array(), &sched);
        // 2 particles in period 0 (2 peaks), 2 particles in period 1 (6 peaks).
        let mut times = vec![0.2, 0.7];
        times.extend([1.1, 1.2, 1.4, 1.5, 1.7, 1.8]);
        let result = d.decrypt(&peaks_at(&times));
        assert!((result.estimated - 4.0).abs() < 1e-9);
        assert_eq!(result.periods.len(), 2);
        assert_eq!(result.periods[0], (0, 2, 1));
        assert_eq!(result.periods[1], (1, 6, 3));
    }

    #[test]
    fn empty_report_decrypts_to_zero() {
        let sched = KeySchedule::Static(key(&[9], 4));
        let d = Decryptor::new(array(), &sched);
        let result = d.decrypt(&[]);
        assert_eq!(result.estimated, 0.0);
        assert_eq!(result.rounded(), 0);
        assert!(result.periods.is_empty());
    }

    #[test]
    fn amplitude_decryption_removes_gain() {
        let sched = KeySchedule::Static(key(&[9], 15)); // max gain = 2.8
        let d = Decryptor::new(array(), &sched);
        let peak = ReportedPeak {
            time_s: 0.5,
            amplitude: 0.0070,
            width_s: 0.01,
        };
        let original = d.decrypt_amplitude(&peak, ElectrodeId(9));
        assert!((original - 0.0025).abs() < 1e-4);
    }

    #[test]
    fn rounding_clamps_negative_estimates() {
        let dc = DecryptedCount {
            estimated: -0.4,
            periods: vec![],
        };
        assert_eq!(dc.rounded(), 0);
    }

    #[test]
    fn fractional_estimates_round_to_nearest() {
        let sched = KeySchedule::Static(key(&[9, 1], 4)); // multiplicity 3
        let d = Decryptor::new(array(), &sched);
        // 7 peaks / 3 = 2.33 → 2 (one peak lost to noise/merging).
        let result = d.decrypt(&peaks_at(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]));
        assert_eq!(result.rounded(), 2);
    }
}
