//! The trusted micro-controller (the Raspberry Pi of the prototype).
//!
//! "We used a Raspberry Pi as a controller, which is in charge of generating
//! the key ... we used the controller's Linux operating system /dev/random
//! interface as the entropy source ... The encryption keys always remain on
//! the controller and never get sent out to the phone or cloud. This keeps
//! the controller as MedSen's minimal trusted computing base" (Sec. VI-B).
//!
//! Key custody is enforced structurally: [`CipherKey`]/[`KeySchedule`] do not
//! implement `Serialize`, the controller exposes the schedule only by
//! reference (it cannot be moved out), and [`Controller::wipe`] zeroizes the
//! material, which also happens on drop.

use crate::array::{ElectrodeArray, ElectrodeId};
use crate::decrypt::Decryptor;
use crate::keying::{
    CipherKey, ElectrodeSelection, FlowLevel, GainLevel, KeySchedule, FLOW_LEVELS, GAIN_LEVELS,
};
use medsen_units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Controller policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Key rotation period for periodic schedules (the paper rotates "every
    /// time unit"; 5 s keeps one particle's dip train, which spans up to
    /// ~1.4 s of channel transit, mostly inside a single key period so the
    /// decryptor's per-period division stays accurate).
    pub key_period: Seconds,
    /// Refuse selections containing adjacent electrodes — the hardening the
    /// paper proposes against its limitation 2 ("selecting an electrode key
    /// pattern that does not use successive electrodes").
    pub avoid_adjacent: bool,
    /// Randomize output gains (`G`). Disabling isolates the ablation where
    /// amplitudes leak electrode counts.
    pub randomize_gains: bool,
    /// Randomize flow speed (`S`). Disabling isolates the width-leak ablation.
    pub randomize_flow: bool,
    /// Probability that each output electrode is selected into `E(t)`.
    /// Lower values keep the multiplied dip trains sparse enough for the
    /// 450 Hz output rate to resolve; higher values maximize concealment.
    pub selection_probability: f64,
    /// Effective gain resolution in bits (1–4). The paper chooses 4-bit
    /// (16-level) gains and notes that "higher granularity would help to
    /// improve the homogeneity of the signals in the ciphertext and thus
    /// provide better protection at the cost of larger key size"; the
    /// granularity ablation sweeps this.
    pub gain_bits: u8,
}

impl ControllerConfig {
    /// The paper's deployed configuration.
    pub fn paper_default() -> Self {
        Self {
            key_period: Seconds::new(5.0),
            avoid_adjacent: false,
            randomize_gains: true,
            randomize_flow: true,
            selection_probability: 0.35,
            gain_bits: 4,
        }
    }

    /// The hardened configuration the paper recommends after its Sec. VII-A
    /// limitation analysis.
    pub fn hardened() -> Self {
        Self {
            avoid_adjacent: true,
            ..Self::paper_default()
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The trusted key-holding controller.
///
/// # Examples
///
/// ```
/// use medsen_sensor::{Controller, ControllerConfig, ElectrodeArray};
/// use medsen_units::Seconds;
///
/// let mut controller = Controller::new(
///     ElectrodeArray::paper_prototype(),
///     ControllerConfig::paper_default(),
///     42, // entropy seed (stands in for /dev/random)
/// );
/// controller.generate_schedule(Seconds::new(30.0));
/// assert!(controller.key_bits() > 0);
/// controller.wipe(); // zeroize before disposal (also happens on drop)
/// assert_eq!(controller.key_bits(), 0);
/// ```
#[derive(Debug)]
pub struct Controller {
    array: ElectrodeArray,
    config: ControllerConfig,
    rng: StdRng,
    schedule: Option<KeySchedule>,
}

impl Controller {
    /// Creates a controller. `entropy_seed` stands in for `/dev/random`;
    /// the keystream itself comes from the ChaCha-based `StdRng` CSPRNG.
    pub fn new(array: ElectrodeArray, config: ControllerConfig, entropy_seed: u64) -> Self {
        Self {
            array,
            config,
            rng: StdRng::seed_from_u64(entropy_seed),
            schedule: None,
        }
    }

    /// The electrode array this controller drives.
    pub fn array(&self) -> &ElectrodeArray {
        &self.array
    }

    /// The active configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Generates and installs a fresh periodic key schedule covering
    /// `duration`, returning a borrow of it. The schedule stays inside the
    /// controller.
    pub fn generate_schedule(&mut self, duration: Seconds) -> &KeySchedule {
        let n_periods = (duration.value() / self.config.key_period.value())
            .ceil()
            .max(1.0) as usize;
        let keys: Vec<CipherKey> = (0..n_periods).map(|_| self.random_key()).collect();
        self.schedule = Some(KeySchedule::Periodic {
            period: self.config.key_period,
            keys,
        });
        self.schedule.as_ref().expect("just installed")
    }

    /// Installs the plaintext (encryption-off) schedule used for the
    /// authentication path: lead electrode only, unity gain, nominal flow —
    /// one honest peak per particle "such that the server-side can recognize
    /// the actual number and types of the submitted beads" (Sec. V).
    pub fn plaintext_schedule(&mut self) -> &KeySchedule {
        let key = CipherKey {
            selection: ElectrodeSelection::new(&self.array, &[self.array.lead()])
                .expect("lead electrode is always valid"),
            gains: vec![GainLevel::unity(); usize::from(self.array.n_outputs())],
            flow: FlowLevel::nominal(),
        };
        self.schedule = Some(KeySchedule::Static(key));
        self.schedule.as_ref().expect("just installed")
    }

    /// The installed schedule, if any. Borrow-only: the key cannot leave.
    pub fn schedule(&self) -> Option<&KeySchedule> {
        self.schedule.as_ref()
    }

    /// A decryptor bound to the installed schedule.
    ///
    /// # Panics
    ///
    /// Panics if no schedule has been generated yet.
    pub fn decryptor(&self) -> Decryptor<'_> {
        Decryptor::new(
            self.array,
            self.schedule
                .as_ref()
                .expect("generate a schedule before decrypting"),
        )
    }

    /// A decryptor with dip-delay compensation (see
    /// [`Decryptor::with_dip_delay`]).
    ///
    /// # Panics
    ///
    /// Panics if no schedule has been generated yet.
    pub fn decryptor_with_delay(&self, delay: Seconds) -> Decryptor<'_> {
        self.decryptor().with_dip_delay(delay)
    }

    /// Total key material currently held, in bits.
    pub fn key_bits(&self) -> usize {
        self.schedule.as_ref().map_or(0, KeySchedule::total_bits)
    }

    /// Zeroizes and discards the key material.
    pub fn wipe(&mut self) {
        if let Some(schedule) = &mut self.schedule {
            match schedule {
                KeySchedule::Static(k) => wipe_key(k),
                KeySchedule::Periodic { keys, .. } => keys.iter_mut().for_each(wipe_key),
            }
        }
        self.schedule = None;
    }

    fn random_key(&mut self) -> CipherKey {
        let n = self.array.n_outputs();
        let p = self.config.selection_probability.clamp(0.05, 1.0);
        let selection = loop {
            let mut ids: Vec<u8> = (1..=n).filter(|_| self.rng.random::<f64>() < p).collect();
            if self.config.avoid_adjacent {
                // Greedy thinning instead of rejection sampling: rejection
                // would loop forever at high selection probabilities (an
                // all-electrode draw is always adjacent).
                let mut kept: Vec<u8> = Vec::with_capacity(ids.len());
                for id in ids {
                    if kept.last().is_none_or(|&last| id > last + 1) {
                        kept.push(id);
                    }
                }
                ids = kept;
            }
            if ids.is_empty() {
                continue;
            }
            let ids: Vec<ElectrodeId> = ids.into_iter().map(ElectrodeId).collect();
            break ElectrodeSelection::new(&self.array, &ids)
                .expect("generated ids are in range, unique, and non-empty");
        };
        let gain_bits = self.config.gain_bits.clamp(1, 4);
        let n_gain_choices = 1u8 << gain_bits;
        let gains = (0..n)
            .map(|_| {
                if self.config.randomize_gains {
                    // Spread the reduced choice set across the full 4-bit
                    // hardware range so coarse granularities still cover the
                    // whole gain span.
                    let idx = self.rng.random_range(0..n_gain_choices);
                    let level = (f64::from(idx) * f64::from(GAIN_LEVELS - 1)
                        / f64::from(n_gain_choices - 1))
                    .round() as u8;
                    GainLevel::new(level).expect("range-limited level")
                } else {
                    GainLevel::unity()
                }
            })
            .collect();
        let flow = if self.config.randomize_flow {
            FlowLevel::new(self.rng.random_range(0..FLOW_LEVELS)).expect("range-limited level")
        } else {
            FlowLevel::nominal()
        };
        CipherKey {
            selection,
            gains,
            flow,
        }
    }
}

fn wipe_key(key: &mut CipherKey) {
    key.gains.clear();
    key.gains.shrink_to_fit();
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.wipe();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(seed: u64) -> Controller {
        Controller::new(
            ElectrodeArray::paper_prototype(),
            ControllerConfig::paper_default(),
            seed,
        )
    }

    #[test]
    fn schedule_covers_duration_with_one_key_per_period() {
        let mut c = controller(1);
        let sched = c.generate_schedule(Seconds::new(25.0));
        match sched {
            KeySchedule::Periodic { period, keys } => {
                assert_eq!(period.value(), 5.0);
                assert_eq!(keys.len(), 5);
            }
            KeySchedule::Static(_) => panic!("expected periodic schedule"),
        }
    }

    #[test]
    fn generated_keys_vary_over_time() {
        let mut c = controller(2);
        let sched = c.generate_schedule(Seconds::new(50.0));
        if let KeySchedule::Periodic { keys, .. } = sched {
            let first = &keys[0];
            assert!(
                keys.iter().any(|k| k != first),
                "50 keys should not all be identical"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mut a = controller(3);
        let mut b = controller(4);
        assert_ne!(
            a.generate_schedule(Seconds::new(5.0)),
            b.generate_schedule(Seconds::new(5.0))
        );
    }

    #[test]
    fn same_seed_reproduces_schedule() {
        let mut a = controller(5);
        let mut b = controller(5);
        assert_eq!(
            a.generate_schedule(Seconds::new(5.0)),
            b.generate_schedule(Seconds::new(5.0))
        );
    }

    #[test]
    fn hardened_config_never_selects_adjacent_electrodes() {
        let mut c = Controller::new(
            ElectrodeArray::paper_prototype(),
            ControllerConfig::hardened(),
            6,
        );
        let sched = c.generate_schedule(Seconds::new(200.0));
        if let KeySchedule::Periodic { keys, .. } = sched {
            assert!(keys.iter().all(|k| !k.selection.has_adjacent_pair()));
        }
    }

    #[test]
    fn plaintext_schedule_is_lead_only_unity() {
        let mut c = controller(7);
        let array = *c.array();
        let sched = c.plaintext_schedule();
        if let KeySchedule::Static(k) = sched {
            assert_eq!(k.selection.ids(), vec![ElectrodeId(9)]);
            assert_eq!(k.multiplicity(&array), 1);
            assert!((k.gain_of(ElectrodeId(9)) - 1.0).abs() < 0.1);
        } else {
            panic!("expected static schedule");
        }
    }

    #[test]
    fn disabled_randomization_pins_gain_and_flow() {
        let mut c = Controller::new(
            ElectrodeArray::paper_prototype(),
            ControllerConfig {
                randomize_gains: false,
                randomize_flow: false,
                ..ControllerConfig::paper_default()
            },
            8,
        );
        let sched = c.generate_schedule(Seconds::new(20.0));
        if let KeySchedule::Periodic { keys, .. } = sched {
            assert!(keys.iter().all(|k| k.flow == FlowLevel::nominal()
                && k.gains.iter().all(|&g| g == GainLevel::unity())));
        }
    }

    #[test]
    fn wipe_clears_key_material() {
        let mut c = controller(9);
        c.generate_schedule(Seconds::new(30.0));
        assert!(c.key_bits() > 0);
        c.wipe();
        assert_eq!(c.key_bits(), 0);
        assert!(c.schedule().is_none());
    }

    #[test]
    fn coarse_gain_bits_restrict_the_level_set() {
        let mut c = Controller::new(
            ElectrodeArray::paper_prototype(),
            ControllerConfig {
                gain_bits: 1,
                ..ControllerConfig::paper_default()
            },
            12,
        );
        let sched = c.generate_schedule(Seconds::new(200.0));
        if let KeySchedule::Periodic { keys, .. } = sched {
            let mut levels: Vec<u8> = keys
                .iter()
                .flat_map(|k| k.gains.iter().map(|g| g.level()))
                .collect();
            levels.sort_unstable();
            levels.dedup();
            assert_eq!(levels, vec![0, 15], "1-bit gains use only the extremes");
        }
    }

    #[test]
    fn key_bits_match_eq2_per_period_accounting() {
        let mut c = controller(10);
        c.generate_schedule(Seconds::new(50.0));
        // 10 periods × (9 + 4·4 + 4) bits.
        assert_eq!(c.key_bits(), 10 * (9 + 16 + 4));
    }

    #[test]
    #[should_panic(expected = "generate a schedule")]
    fn decryptor_requires_schedule() {
        let c = controller(11);
        let _ = c.decryptor();
    }
}
