//! The MAX14661 16:2 analog switch matrix.
//!
//! "Maxim Integrated MAX14661 16:2 multiplexer provides a dual output channel
//! ... The encrypting algorithm will select a random sequence of output
//! electrodes and route it to the first output channel of the multiplexer.
//! The remaining unselected electrodes will be routed to the second output
//! channel, which is proceeding to ground port" (Sec. VII-A). Grounding the
//! idle electrodes prevents interference.

use crate::array::{ElectrodeArray, ElectrodeId};
use crate::keying::ElectrodeSelection;
use medsen_units::Seconds;
use serde::{Deserialize, Serialize};

/// Where the mux routed each electrode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Routing {
    /// Electrodes connected to output channel A (the lock-in input).
    pub to_output: Vec<ElectrodeId>,
    /// Electrodes connected to output channel B (ground).
    pub to_ground: Vec<ElectrodeId>,
}

/// The 16:2 switch matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Multiplexer {
    /// Physical channel capacity (16 for the MAX14661).
    pub capacity: u8,
    /// Switching settle time per reconfiguration.
    pub settle_time: Seconds,
}

impl Multiplexer {
    /// The MAX14661 used in the prototype (sub-millisecond settling).
    pub fn max14661() -> Self {
        Self {
            capacity: 16,
            settle_time: Seconds::from_millis(0.05),
        }
    }

    /// Routes a selection: selected → output A, the rest → ground B.
    ///
    /// # Errors
    ///
    /// Fails if the array exceeds the mux capacity.
    pub fn route(
        &self,
        array: &ElectrodeArray,
        selection: &ElectrodeSelection,
    ) -> Result<Routing, String> {
        if array.n_outputs() > self.capacity {
            return Err(format!(
                "array has {} outputs but the mux supports {}",
                array.n_outputs(),
                self.capacity
            ));
        }
        let mut to_output = Vec::new();
        let mut to_ground = Vec::new();
        for e in array.electrodes() {
            if selection.contains(e) {
                to_output.push(e);
            } else {
                to_ground.push(e);
            }
        }
        Ok(Routing {
            to_output,
            to_ground,
        })
    }
}

impl Default for Multiplexer {
    fn default() -> Self {
        Self::max14661()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_partitions_all_electrodes() {
        let array = ElectrodeArray::paper_prototype();
        let sel = ElectrodeSelection::new(&array, &[ElectrodeId(1), ElectrodeId(9)]).unwrap();
        let routing = Multiplexer::max14661().route(&array, &sel).unwrap();
        assert_eq!(routing.to_output, vec![ElectrodeId(1), ElectrodeId(9)]);
        assert_eq!(routing.to_ground.len(), 7);
        let total = routing.to_output.len() + routing.to_ground.len();
        assert_eq!(total, 9);
        // Disjoint.
        assert!(routing
            .to_output
            .iter()
            .all(|e| !routing.to_ground.contains(e)));
    }

    #[test]
    fn full_selection_grounds_nothing() {
        let array = ElectrodeArray::paper_prototype();
        let sel = ElectrodeSelection::all(&array);
        let routing = Multiplexer::max14661().route(&array, &sel).unwrap();
        assert!(routing.to_ground.is_empty());
        assert_eq!(routing.to_output.len(), 9);
    }

    #[test]
    fn rejects_oversized_array() {
        let array = ElectrodeArray::new(16).unwrap();
        let small_mux = Multiplexer {
            capacity: 8,
            settle_time: Seconds::from_millis(0.05),
        };
        let sel = ElectrodeSelection::all(&array);
        assert!(small_mux.route(&array, &sel).is_err());
    }

    #[test]
    fn sixteen_output_array_fits_max14661() {
        let array = ElectrodeArray::new(16).unwrap();
        let sel = ElectrodeSelection::all(&array);
        assert!(Multiplexer::max14661().route(&array, &sel).is_ok());
    }

    #[test]
    fn settle_time_is_negligible_vs_key_period() {
        // Reconfiguring every 1 s key period costs ≪ 1 % duty cycle.
        let mux = Multiplexer::max14661();
        assert!(mux.settle_time.value() / 1.0 < 0.001);
    }
}
