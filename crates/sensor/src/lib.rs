//! The MedSen bio-sensor device: multi-electrode array, multiplexer,
//! trusted micro-controller, and the in-sensor analog signal cipher.
//!
//! This crate is the paper's primary hardware contribution rendered in
//! software. The physical mechanism — a micro-controller that randomly
//! activates subsets of output electrodes, applies random output gains, and
//! modulates pump speed so that one passing cell produces a random number of
//! peaks with random amplitudes and widths — is modelled exactly:
//!
//! * [`ElectrodeArray`] — the Fig. 5 sensing-region designs (2/3/5/9/16
//!   outputs), lead-electrode single-dip vs double-dip semantics;
//! * [`Multiplexer`] — the MAX14661 16:2 switch matrix (selected outputs to
//!   channel A, everything else grounded);
//! * [`ElectrodeSelection`], [`CipherKey`], [`KeySchedule`] — the key
//!   `K(t) = (E(t), G(t), S(t))` of Sec. IV-A and the Eq. (2) key-length
//!   accounting;
//! * [`Controller`] — the trusted computing base: CSPRNG key generation,
//!   key custody (keys are deliberately *not* serializable and are zeroized
//!   on drop), and decryption of returned peak reports;
//! * [`EncryptedAcquisition`] — runs transit events through the cipher and
//!   the impedance synthesiser to produce the encrypted [`SignalTrace`]
//!   a curious-but-honest cloud will see.
//!
//! [`SignalTrace`]: medsen_impedance::SignalTrace

pub mod acquisition;
pub mod array;
pub mod controller;
pub mod decrypt;
pub mod keying;
pub mod mux;
pub mod tcb;

pub use acquisition::{AcquisitionOutput, EncryptedAcquisition};
pub use array::{ElectrodeArray, ElectrodeId};
pub use controller::{Controller, ControllerConfig};
pub use decrypt::{DecryptedCount, Decryptor, ReportedPeak};
pub use keying::{
    ideal_key_length_bits, CipherKey, ElectrodeSelection, FlowLevel, GainLevel, KeySchedule,
};
pub use mux::{Multiplexer, Routing};
pub use tcb::{ComponentTrust, TcbAudit, TrustLevel};
