//! The encrypted acquisition: where the cipher meets the physics.
//!
//! Running a sample through the sensor while the controller rotates
//! `K(t) = (E(t), G(t), S(t))` produces, for every particle transit, one dip
//! per active lead electrode and two dips per other active electrode, each
//! scaled by that electrode's gain and stretched by the flow setting. The
//! result is the encrypted multi-channel trace the phone uploads.

use crate::array::ElectrodeArray;
use crate::keying::KeySchedule;
use medsen_impedance::synth::MultiChannelPulse;
use medsen_impedance::{ElectrodeCircuit, PulseSpec, TraceSynthesizer};
use medsen_microfluidics::{ChannelGeometry, ParticleKind, TransitEvent};
use medsen_units::Seconds;
use std::collections::BTreeMap;

/// Normalized dip depth of the reference particle (a nominal 3.58 µm bead at
/// unit gain on the lowest carrier). Calibrated so 7.8 µm beads dip ~1.6 %
/// and blood cells ~0.8 % — the scale of the paper's Fig. 15 — while keeping
/// even a minimum-gain 3.58 µm bead dip above the detection threshold after
/// the 120 Hz output filter has attenuated the fastest-flow (narrowest)
/// pulses.
pub const REFERENCE_DIP: f64 = 4.0e-3;

/// Everything one acquisition run produces.
#[derive(Debug)]
pub struct AcquisitionOutput {
    /// The encrypted multi-channel trace (what leaves the TCB).
    pub trace: medsen_impedance::SignalTrace,
    /// Acquisition duration.
    pub duration: Seconds,
    /// Ground-truth particle counts (never leaves the TCB; used by tests and
    /// experiment harnesses to score accuracy).
    true_counts: BTreeMap<ParticleKind, usize>,
    /// Total dips the cipher scheduled (the ideal encrypted peak count).
    pub scheduled_dips: usize,
}

impl AcquisitionOutput {
    /// Ground-truth count of one species.
    pub fn true_count(&self, kind: ParticleKind) -> usize {
        self.true_counts.get(&kind).copied().unwrap_or(0)
    }

    /// Ground-truth total particle count.
    pub fn true_total(&self) -> usize {
        self.true_counts.values().sum()
    }

    /// Ground-truth counts per species.
    pub fn true_counts(&self) -> &BTreeMap<ParticleKind, usize> {
        &self.true_counts
    }
}

/// The in-sensor encryption engine.
#[derive(Debug)]
pub struct EncryptedAcquisition {
    array: ElectrodeArray,
    geometry: ChannelGeometry,
    circuit: ElectrodeCircuit,
    synth: TraceSynthesizer,
}

impl EncryptedAcquisition {
    /// Builds an acquisition engine.
    pub fn new(
        array: ElectrodeArray,
        geometry: ChannelGeometry,
        circuit: ElectrodeCircuit,
        synth: TraceSynthesizer,
    ) -> Self {
        Self {
            array,
            geometry,
            circuit,
            synth,
        }
    }

    /// An engine with the paper's prototype array, geometry and electronics.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(
            ElectrodeArray::paper_prototype(),
            ChannelGeometry::paper_default(),
            ElectrodeCircuit::paper_default(),
            TraceSynthesizer::paper_default(seed),
        )
    }

    /// A noiseless, drift-free engine for deterministic tests.
    pub fn clean(seed: u64) -> Self {
        Self::new(
            ElectrodeArray::paper_prototype(),
            ChannelGeometry::paper_default(),
            ElectrodeCircuit::paper_default(),
            TraceSynthesizer::clean(seed),
        )
    }

    /// The electrode array in use.
    pub fn array(&self) -> &ElectrodeArray {
        &self.array
    }

    /// The channel geometry in use.
    pub fn geometry(&self) -> &ChannelGeometry {
        &self.geometry
    }

    /// Mutable access to the synthesiser (to adjust noise/drift in tests).
    pub fn synth_mut(&mut self) -> &mut TraceSynthesizer {
        &mut self.synth
    }

    /// Runs the encrypted acquisition: renders every transit's cipher-shaped
    /// dips into a trace of the given `duration`.
    ///
    /// The schedule is the *key*; it never appears in the output. Peak
    /// geometry per event:
    ///
    /// * effective velocity = event velocity × flow multiplier `S(t)`;
    /// * electrode `e` fires at `t + position(e) / v`;
    /// * dip FWHM = 0.35 × sensing span / v;
    /// * double-dip separation = 2 × sensing span / v;
    /// * depth = `REFERENCE_DIP` × particle amplitude factor × gain `G_e(t)`;
    /// * per-carrier scaling = dispersion factor × circuit sensitivity.
    pub fn run(
        &mut self,
        events: &[TransitEvent],
        schedule: &KeySchedule,
        duration: Seconds,
    ) -> AcquisitionOutput {
        let carriers: Vec<_> = self.synth.excitation.carriers().to_vec();
        let mut pulses: Vec<MultiChannelPulse> = Vec::new();
        let mut true_counts: BTreeMap<ParticleKind, usize> = BTreeMap::new();
        let mut scheduled_dips = 0usize;

        for event in events {
            *true_counts.entry(event.particle.kind).or_insert(0) += 1;
            let key = schedule.key_at(event.time);
            let velocity = event.velocity * key.flow.multiplier();
            let span_s = self.geometry.sensing_span().value() / velocity;
            let fwhm = Seconds::new(0.35 * span_s);
            // The two gaps of a double-dip electrode sit two sensing spans
            // apart in the fabricated layout; the wide spacing keeps the two
            // dips resolvable at 450 Hz even after the 120 Hz output filter
            // smears the fastest-flow pulses.
            let separation = Seconds::new(2.0 * span_s);

            // Per-carrier scaling is a particle property, shared by all of
            // this event's pulses. In magnitude mode the dip scales with
            // |H(f)| = dispersion factor; in phase-sensitive (I/Q) mode the
            // in-phase dip is |H|·cos φ and the quadrature dip |H|·sin φ,
            // with φ the particle's dispersion phase.
            let iq = self.synth.is_iq();
            let kind = event.particle.kind;
            let channel_gains: Vec<f64> = carriers
                .iter()
                .map(|&f| {
                    let h = kind.dispersion_factor(f.value()) * self.circuit.sensitivity_at(f);
                    if iq {
                        h * kind.dispersion_phase(f.value()).cos()
                    } else {
                        h
                    }
                })
                .collect();
            let quadrature_gains: Vec<f64> = if iq {
                carriers
                    .iter()
                    .map(|&f| {
                        kind.dispersion_factor(f.value())
                            * self.circuit.sensitivity_at(f)
                            * kind.dispersion_phase(f.value()).sin()
                    })
                    .collect()
            } else {
                Vec::new()
            };

            for e in key.selection.ids() {
                let offset_s = self.array.position(e, &self.geometry).value() / velocity;
                let center = Seconds::new(event.time.value() + offset_s);
                if center.value() >= duration.value() {
                    continue; // particle exits the window before reaching e
                }
                let depth = REFERENCE_DIP * event.particle.amplitude_factor() * key.gain_of(e);
                let spec = if self.array.dips_per_particle(e) == 1 {
                    scheduled_dips += 1;
                    PulseSpec::unipolar(center, fwhm, depth)
                } else {
                    scheduled_dips += 2;
                    PulseSpec::double(center, fwhm, depth, separation)
                };
                pulses.push(MultiChannelPulse {
                    spec,
                    channel_gains: channel_gains.clone(),
                    quadrature_gains: quadrature_gains.clone(),
                });
            }
        }

        let trace = self.synth.render_multichannel(&pulses, duration);
        AcquisitionOutput {
            trace,
            duration,
            true_counts,
            scheduled_dips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ElectrodeId;
    use crate::keying::{CipherKey, ElectrodeSelection, FlowLevel, GainLevel};
    use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
    use medsen_dsp::peaks::ThresholdDetector;
    use medsen_microfluidics::Particle;
    use medsen_units::Hertz;

    fn event_at(t: f64, kind: ParticleKind) -> TransitEvent {
        TransitEvent {
            time: Seconds::new(t),
            particle: Particle::nominal(kind),
            velocity: 2250.0,
        }
    }

    fn static_key(ids: &[u8], gain: GainLevel, flow: FlowLevel) -> KeySchedule {
        let array = ElectrodeArray::paper_prototype();
        let ids: Vec<ElectrodeId> = ids.iter().map(|&i| ElectrodeId(i)).collect();
        KeySchedule::Static(CipherKey {
            selection: ElectrodeSelection::new(&array, &ids).unwrap(),
            gains: vec![gain; 9],
            flow,
        })
    }

    fn detect_counts(output: &AcquisitionOutput) -> usize {
        let ch = output
            .trace
            .channel_at(Hertz::from_khz(500.0))
            .expect("has channels");
        let depth = detrend_segmented(&ch.samples, &DetrendConfig::paper_default());
        ThresholdDetector::paper_default().count(&depth, 450.0)
    }

    #[test]
    fn lead_only_gives_one_peak_per_particle() {
        let mut acq = EncryptedAcquisition::clean(1);
        let sched = static_key(&[9], GainLevel::unity(), FlowLevel::nominal());
        let events = vec![
            event_at(0.5, ParticleKind::Bead78),
            event_at(1.5, ParticleKind::Bead78),
        ];
        let out = acq.run(&events, &sched, Seconds::new(3.0));
        assert_eq!(out.scheduled_dips, 2);
        assert_eq!(detect_counts(&out), 2);
        assert_eq!(out.true_total(), 2);
    }

    #[test]
    fn fig11_subset_peak_counts_for_one_bead() {
        // Reproduces Fig. 11's signatures for a single 7.8 µm bead.
        let cases: [(&[u8], usize); 4] = [
            (&[9], 1),                          // 11a: lead only
            (&[9, 1], 3),                       // 11b: lead + electrode 1
            (&[9, 1, 2], 5),                    // 11c: lead + electrodes 1, 2
            (&[1, 2, 3, 4, 5, 6, 7, 8, 9], 17), // 11d: all nine → 17 peaks
        ];
        for (ids, expected) in cases {
            let mut acq = EncryptedAcquisition::clean(2);
            let sched = static_key(ids, GainLevel::unity(), FlowLevel::nominal());
            let events = vec![event_at(0.5, ParticleKind::Bead78)];
            let out = acq.run(&events, &sched, Seconds::new(2.0));
            assert_eq!(out.scheduled_dips, expected, "ids {ids:?}");
            assert_eq!(detect_counts(&out), expected, "detected for ids {ids:?}");
        }
    }

    #[test]
    fn gain_scales_peak_amplitude() {
        let run = |gain: GainLevel| {
            let mut acq = EncryptedAcquisition::clean(3);
            let sched = static_key(&[9], gain, FlowLevel::nominal());
            let out = acq.run(
                &[event_at(0.5, ParticleKind::Bead78)],
                &sched,
                Seconds::new(1.5),
            );
            let ch = out.trace.channel_at(Hertz::from_khz(500.0)).unwrap();
            1.0 - ch.min().unwrap()
        };
        let low = run(GainLevel::new(0).unwrap());
        let high = run(GainLevel::new(15).unwrap());
        assert!(
            (high / low - 4.0).abs() < 0.2,
            "gain ratio {} (low {low}, high {high})",
            high / low
        );
    }

    #[test]
    fn slow_flow_widens_peaks() {
        let width_at = |flow: FlowLevel| {
            let mut acq = EncryptedAcquisition::clean(4);
            let sched = static_key(&[9], GainLevel::unity(), flow);
            let out = acq.run(
                &[event_at(0.5, ParticleKind::Bead78)],
                &sched,
                Seconds::new(2.0),
            );
            let ch = out.trace.channel_at(Hertz::from_khz(500.0)).unwrap();
            let depth = detrend_segmented(&ch.samples, &DetrendConfig::paper_default());
            let peaks = ThresholdDetector::paper_default().detect(&depth, 450.0);
            assert_eq!(peaks.len(), 1, "flow level {}", flow.level());
            peaks[0].width_s
        };
        let slow = width_at(FlowLevel::new(0).unwrap());
        let fast = width_at(FlowLevel::new(15).unwrap());
        assert!(slow > 2.0 * fast, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn cell_peaks_shrink_on_high_frequency_channels() {
        let mut acq = EncryptedAcquisition::clean(5);
        let sched = static_key(&[9], GainLevel::unity(), FlowLevel::nominal());
        let out = acq.run(
            &[event_at(0.5, ParticleKind::RedBloodCell)],
            &sched,
            Seconds::new(1.5),
        );
        let dip_at = |khz: f64| {
            let ch = out.trace.channel_at(Hertz::from_khz(khz)).unwrap();
            1.0 - ch.min().unwrap()
        };
        assert!(
            dip_at(4000.0) < 0.5 * dip_at(500.0),
            "4 MHz {} vs 500 kHz {}",
            dip_at(4000.0),
            dip_at(500.0)
        );
    }

    #[test]
    fn bead_peaks_do_not_shrink_with_frequency() {
        let mut acq = EncryptedAcquisition::clean(6);
        let sched = static_key(&[9], GainLevel::unity(), FlowLevel::nominal());
        let out = acq.run(
            &[event_at(0.5, ParticleKind::Bead78)],
            &sched,
            Seconds::new(1.5),
        );
        let dip_at = |khz: f64| {
            let ch = out.trace.channel_at(Hertz::from_khz(khz)).unwrap();
            1.0 - ch.min().unwrap()
        };
        assert!((dip_at(4000.0) / dip_at(500.0) - 1.0).abs() < 0.05);
    }

    #[test]
    fn particle_near_window_end_drops_unreachable_electrodes() {
        let mut acq = EncryptedAcquisition::clean(7);
        // Electrode 1 sits 400 µm downstream: at 2250 µm/s it fires ~0.18 s
        // after arrival. An arrival at 0.95 s in a 1.0 s window never gets
        // there.
        let sched = static_key(&[1], GainLevel::unity(), FlowLevel::nominal());
        let out = acq.run(
            &[event_at(0.95, ParticleKind::Bead78)],
            &sched,
            Seconds::new(1.0),
        );
        assert_eq!(out.scheduled_dips, 0);
        assert_eq!(out.true_total(), 1, "ground truth still records the cell");
    }

    #[test]
    fn iq_acquisition_separates_cells_from_beads_by_quadrature() {
        use medsen_impedance::TraceSynthesizer;
        use medsen_microfluidics::ChannelGeometry;
        let mk_acq = || {
            EncryptedAcquisition::new(
                ElectrodeArray::paper_prototype(),
                ChannelGeometry::paper_default(),
                medsen_impedance::ElectrodeCircuit::paper_default(),
                TraceSynthesizer::clean(5).with_iq(true),
            )
        };
        let sched = static_key(&[9], GainLevel::unity(), FlowLevel::nominal());
        let dip_q = |kind: ParticleKind| {
            let mut acq = mk_acq();
            let out = acq.run(&[event_at(0.5, kind)], &sched, Seconds::new(1.5));
            let q = out
                .trace
                .quadrature_at(Hertz::from_khz(2500.0))
                .expect("IQ trace has quadrature channels");
            1.0 - q.min().expect("non-empty channel")
        };
        let cell_q = dip_q(ParticleKind::RedBloodCell);
        let bead_q = dip_q(ParticleKind::Bead78);
        assert!(cell_q > 2.0e-3, "cell quadrature dip {cell_q}");
        assert!(bead_q < 2.0e-4, "bead quadrature dip {bead_q}");
    }

    #[test]
    fn periodic_schedule_changes_multiplicity_over_time() {
        let array = ElectrodeArray::paper_prototype();
        let mk = |ids: &[u8]| CipherKey {
            selection: ElectrodeSelection::new(
                &array,
                &ids.iter().map(|&i| ElectrodeId(i)).collect::<Vec<_>>(),
            )
            .unwrap(),
            gains: vec![GainLevel::unity(); 9],
            flow: FlowLevel::nominal(),
        };
        let sched = KeySchedule::Periodic {
            period: Seconds::new(1.0),
            keys: vec![mk(&[9]), mk(&[9, 1])],
        };
        let mut acq = EncryptedAcquisition::clean(8);
        let events = vec![
            event_at(0.5, ParticleKind::Bead78), // multiplicity 1
            event_at(1.5, ParticleKind::Bead78), // multiplicity 3
        ];
        let out = acq.run(&events, &sched, Seconds::new(3.0));
        assert_eq!(out.scheduled_dips, 4);
        assert_eq!(detect_counts(&out), 4);
    }
}
