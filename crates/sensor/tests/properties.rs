//! Property tests on the cipher's structural invariants.

use medsen_sensor::*;
use medsen_units::Seconds;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Selections round-trip through ids() for arbitrary non-empty masks.
    #[test]
    fn selection_roundtrip(ids in proptest::collection::btree_set(1u8..=9, 1..=9)) {
        let array = ElectrodeArray::paper_prototype();
        let id_vec: Vec<ElectrodeId> = ids.iter().copied().map(ElectrodeId).collect();
        let selection = ElectrodeSelection::new(&array, &id_vec).expect("valid ids");
        let back: Vec<u8> = selection.ids().iter().map(|e| e.0).collect();
        let expected: Vec<u8> = ids.into_iter().collect();
        prop_assert_eq!(back, expected);
        prop_assert_eq!(selection.len(), id_vec.len());
    }

    /// Multiplicity is always `2·|E| − [lead ∈ E]` on the prototype.
    #[test]
    fn multiplicity_formula(ids in proptest::collection::btree_set(1u8..=9, 1..=9)) {
        let array = ElectrodeArray::paper_prototype();
        let id_vec: Vec<ElectrodeId> = ids.iter().copied().map(ElectrodeId).collect();
        let m = array.peak_multiplicity(&id_vec);
        let expected = 2 * ids.len() - usize::from(ids.contains(&9));
        prop_assert_eq!(m, expected);
        prop_assert!((1..=17).contains(&m));
    }

    /// Eq. 2 is monotone in every argument.
    #[test]
    fn key_length_monotonicity(
        cells in 1u64..100_000,
        electrodes in 2u64..=16,
        gain in 1u64..=8,
        flow in 1u64..=8,
    ) {
        let base = ideal_key_length_bits(cells, electrodes, gain, flow);
        prop_assert!(ideal_key_length_bits(cells + 1, electrodes, gain, flow) > base);
        prop_assert!(ideal_key_length_bits(cells, electrodes + 2, gain, flow) > base);
        prop_assert!(ideal_key_length_bits(cells, electrodes, gain + 1, flow) >= base);
        prop_assert!(ideal_key_length_bits(cells, electrodes, gain, flow + 1) > base);
    }

    /// Gain and flow multipliers stay within their documented spans for all
    /// levels.
    #[test]
    fn level_multiplier_ranges(level in 0u8..16) {
        let g = GainLevel::new(level).expect("valid").multiplier();
        prop_assert!((0.7..=2.8 + 1e-9).contains(&g));
        let f = FlowLevel::new(level).expect("valid").multiplier();
        prop_assert!((0.5..=2.0 + 1e-9).contains(&f));
    }

    /// Decryption is exact whenever the report contains exactly
    /// multiplicity × n peaks inside one key period.
    #[test]
    fn division_is_exact_for_ideal_reports(
        n in 1usize..50,
        ids in proptest::collection::btree_set(1u8..=9, 1..=9),
    ) {
        let array = ElectrodeArray::paper_prototype();
        let id_vec: Vec<ElectrodeId> = ids.iter().copied().map(ElectrodeId).collect();
        let key = CipherKey {
            selection: ElectrodeSelection::new(&array, &id_vec).expect("valid"),
            gains: vec![GainLevel::unity(); 9],
            flow: FlowLevel::nominal(),
        };
        let m = key.multiplicity(&array);
        let schedule = KeySchedule::Static(key);
        let peaks: Vec<ReportedPeak> = (0..n * m)
            .map(|i| ReportedPeak {
                time_s: i as f64 * 0.01,
                amplitude: 0.004,
                width_s: 0.01,
            })
            .collect();
        let decoded = Decryptor::new(array, &schedule).decrypt(&peaks);
        prop_assert_eq!(decoded.rounded(), n as u64);
    }

    /// Controllers never generate empty selections or invalid gain vectors,
    /// for any seed and any policy knob combination.
    #[test]
    fn controller_schedules_always_valid(
        seed in 0u64..2000,
        avoid_adjacent in any::<bool>(),
        gains in any::<bool>(),
        flow in any::<bool>(),
        p in 0.05f64..1.0,
        gain_bits in 1u8..=4,
    ) {
        let mut controller = Controller::new(
            ElectrodeArray::paper_prototype(),
            ControllerConfig {
                avoid_adjacent,
                randomize_gains: gains,
                randomize_flow: flow,
                selection_probability: p,
                gain_bits,
                ..ControllerConfig::paper_default()
            },
            seed,
        );
        let schedule = controller.generate_schedule(Seconds::new(15.0));
        let KeySchedule::Periodic { keys, .. } = schedule else {
            return Err(TestCaseError::fail("expected periodic schedule"));
        };
        for key in keys {
            prop_assert!(key.validate().is_ok());
            prop_assert!(!key.selection.is_empty());
            if avoid_adjacent {
                prop_assert!(!key.selection.has_adjacent_pair());
            }
        }
    }
}
