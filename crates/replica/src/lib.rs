//! # medsen-replica — epoch-fenced per-shard WAL stream replication
//!
//! `medsen-store` already writes exactly a replication stream: an
//! ordered, CRC-framed, layout-stamped log per shard. This crate is the
//! state machine that ships that stream to a warm standby and hands the
//! standby the serving role when the primary dies — nothing more. Like
//! `medsen-store` and `medsen-telemetry` it is **std-only with zero
//! dependencies** (CI-enforced): failover correctness must not ride on
//! vendored stubs, and the crate must stay linkable from any layer.
//!
//! The crate is deliberately ignorant of what a frame *means*. Frames
//! are opaque `(kind: u8, payload)` pairs addressed by byte offsets into
//! the primary's current log generation (`Wal::appended_offset`), and
//! snapshots are opaque blobs; the typed codec and the actual shard
//! state live with their owners in `medsen-cloud`, wired in through the
//! [`ApplySink`] and [`ShipTransport`] traits.
//!
//! ## Protocol invariants
//!
//! - **Epoch fencing**: every shipped frame and snapshot carries the
//!   shipping node's epoch. A [`Standby`] rejects anything below its
//!   current epoch and adopts anything above it; [`Standby::promote`]
//!   bumps the epoch, so a resurrected old primary's ships are rejected
//!   ([`ReplicaError::StaleEpoch`]) and the old primary [`Shipper`]
//!   fences itself closed on the first rejection.
//! - **Contiguity**: frames apply only at the standby's acked offset.
//!   A gap ([`ReplicaError::OffsetGap`]) — a freshly attached standby,
//!   a missed frame, or a primary compaction resetting the stream —
//!   detaches the shard until a snapshot transfer re-bases it
//!   ([`Shipper::ship_snapshot`]), mirroring the store crate's
//!   tmp+rename snapshot catch-up.
//! - **Acks are offsets**: the standby acknowledges the byte offset it
//!   has applied through, so primary-side lag is `produced - acked`
//!   bytes per shard, observable without reaching into either node.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One WAL frame in flight from primary to standby.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameShip {
    /// Epoch of the node that shipped the frame.
    pub epoch: u64,
    /// Shard the frame belongs to.
    pub shard: u32,
    /// Byte offset in the shard's log generation where the frame starts.
    pub start_offset: u64,
    /// Offset just past the frame (`start_offset` + encoded length).
    pub end_offset: u64,
    /// Opaque entry kind, as appended to the primary WAL.
    pub kind: u8,
    /// Opaque entry payload, as appended to the primary WAL.
    pub payload: Vec<u8>,
}

/// A full-shard snapshot in flight, re-basing a lagging or freshly
/// attached standby.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotShip {
    /// Epoch of the node that shipped the snapshot.
    pub epoch: u64,
    /// Shard the snapshot covers.
    pub shard: u32,
    /// Stream offset the snapshot state covers through; the standby
    /// resumes applying frames from here.
    pub end_offset: u64,
    /// Opaque serialized shard state.
    pub blob: Vec<u8>,
}

/// Why a replication operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// The shipping node's epoch is behind the receiver's: the shipper
    /// was deposed and must fail closed.
    StaleEpoch {
        /// Epoch the shipper offered.
        offered: u64,
        /// Epoch the receiver is fenced at.
        current: u64,
    },
    /// A frame did not start at the receiver's acked offset; the shard
    /// needs a snapshot transfer before frames can resume.
    OffsetGap {
        /// Shard the gap was observed on.
        shard: u32,
        /// Offset the receiver expected the next frame at.
        expected: u64,
        /// Offset the frame actually started at.
        got: u64,
    },
    /// The standby's sink failed to apply a frame or snapshot.
    Apply {
        /// Shard the failure occurred on.
        shard: u32,
        /// Sink-provided failure description.
        detail: String,
    },
    /// The shard is detached (transport down or un-based); frames are
    /// not being shipped until a snapshot transfer reattaches it.
    Detached {
        /// The detached shard.
        shard: u32,
    },
    /// The transport could not deliver at all.
    LinkDown,
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::StaleEpoch { offered, current } => {
                write!(f, "stale epoch {offered} fenced at {current}")
            }
            ReplicaError::OffsetGap {
                shard,
                expected,
                got,
            } => write!(
                f,
                "shard {shard} offset gap: expected frame at {expected}, got {got}"
            ),
            ReplicaError::Apply { shard, detail } => {
                write!(f, "shard {shard} apply failed: {detail}")
            }
            ReplicaError::Detached { shard } => write!(f, "shard {shard} detached"),
            ReplicaError::LinkDown => write!(f, "replication link down"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Standby-side application of replicated state. Implemented in
/// `medsen-cloud` over a warm `CloudService`; implemented over plain
/// vectors in this crate's tests.
pub trait ApplySink: Send + Sync {
    /// Applies one WAL frame to `shard`'s state (durably first, then in
    /// memory — the same write-ahead discipline the primary uses).
    fn apply_frame(&self, shard: u32, kind: u8, payload: &[u8]) -> Result<(), String>;
    /// Replaces `shard`'s state wholesale from a snapshot blob.
    fn install_snapshot(&self, shard: u32, blob: &[u8]) -> Result<(), String>;
}

/// How the primary's frames reach the standby. The in-process
/// [`DirectLink`] calls the standby directly; `medsen-cloud` wraps it
/// with the simulated `NetworkLink` to model the wire.
pub trait ShipTransport: Send + Sync {
    /// Delivers one frame; returns the offset the standby acked through.
    fn ship_frame(&self, frame: &FrameShip) -> Result<u64, ReplicaError>;
    /// Delivers one snapshot; returns the offset the standby acked.
    fn ship_snapshot(&self, snap: &SnapshotShip) -> Result<u64, ReplicaError>;
}

// A shared transport ships like the transport it shares — callers keep a
// handle for out-of-band control (partitioning, accounting) while the
// shipper owns its own.
impl<T: ShipTransport + ?Sized> ShipTransport for std::sync::Arc<T> {
    fn ship_frame(&self, frame: &FrameShip) -> Result<u64, ReplicaError> {
        (**self).ship_frame(frame)
    }

    fn ship_snapshot(&self, snap: &SnapshotShip) -> Result<u64, ReplicaError> {
        (**self).ship_snapshot(snap)
    }
}

#[derive(Debug, Default)]
struct StandbyCells {
    applied_frames: AtomicU64,
    applied_bytes: AtomicU64,
    snapshots_installed: AtomicU64,
    stale_rejected: AtomicU64,
    promotions: AtomicU64,
}

/// Point-in-time standby-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandbyStats {
    /// Epoch the standby is fenced at.
    pub epoch: u64,
    /// Frames applied since attach.
    pub applied_frames: u64,
    /// Frame bytes applied since attach.
    pub applied_bytes: u64,
    /// Snapshot transfers installed (catch-ups).
    pub snapshots_installed: u64,
    /// Ships rejected for carrying a stale epoch.
    pub stale_rejected: u64,
    /// Times this node was promoted to primary.
    pub promotions: u64,
}

/// The warm-standby state machine: an epoch fence plus one acked-offset
/// cursor per shard, in front of an [`ApplySink`].
pub struct Standby<S: ApplySink> {
    sink: S,
    epoch: AtomicU64,
    cursors: Vec<Mutex<u64>>,
    stats: StandbyCells,
}

impl<S: ApplySink> Standby<S> {
    /// A standby for `shard_count` shards, fenced at `epoch`, with every
    /// cursor at offset zero (un-based until a snapshot or a stream that
    /// genuinely starts at zero arrives).
    pub fn new(sink: S, shard_count: u32, epoch: u64) -> Self {
        assert!(shard_count > 0, "a standby needs at least one shard");
        Self {
            sink,
            epoch: AtomicU64::new(epoch),
            cursors: (0..shard_count).map(|_| Mutex::new(0)).collect(),
            stats: StandbyCells::default(),
        }
    }

    /// The epoch this standby is fenced at.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of shards the standby tracks.
    pub fn shard_count(&self) -> u32 {
        self.cursors.len() as u32
    }

    /// The stream offset `shard` has applied (and thus acked) through.
    pub fn acked_offset(&self, shard: u32) -> u64 {
        *self.cursors[shard as usize].lock().unwrap()
    }

    /// Checks the epoch fence: stale ships are rejected and counted,
    /// newer epochs are adopted (a newly promoted peer is legitimate).
    fn fence(&self, offered: u64) -> Result<(), ReplicaError> {
        let current = self.epoch.fetch_max(offered, Ordering::SeqCst).max(offered);
        if offered < current {
            self.stats.stale_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ReplicaError::StaleEpoch { offered, current });
        }
        Ok(())
    }

    /// Applies one frame at the shard's acked offset; returns the new
    /// acked offset. Fails closed on a stale epoch and refuses frames
    /// that do not start exactly at the cursor.
    pub fn apply(&self, frame: &FrameShip) -> Result<u64, ReplicaError> {
        self.fence(frame.epoch)?;
        let mut cursor = self.cursors[frame.shard as usize].lock().unwrap();
        if frame.start_offset != *cursor {
            return Err(ReplicaError::OffsetGap {
                shard: frame.shard,
                expected: *cursor,
                got: frame.start_offset,
            });
        }
        self.sink
            .apply_frame(frame.shard, frame.kind, &frame.payload)
            .map_err(|detail| ReplicaError::Apply {
                shard: frame.shard,
                detail,
            })?;
        *cursor = frame.end_offset;
        self.stats.applied_frames.fetch_add(1, Ordering::Relaxed);
        self.stats.applied_bytes.fetch_add(
            frame.end_offset.saturating_sub(frame.start_offset),
            Ordering::Relaxed,
        );
        Ok(*cursor)
    }

    /// Installs a snapshot transfer, re-basing the shard's cursor at the
    /// snapshot's end offset; returns the new acked offset.
    pub fn install(&self, snap: &SnapshotShip) -> Result<u64, ReplicaError> {
        self.fence(snap.epoch)?;
        let mut cursor = self.cursors[snap.shard as usize].lock().unwrap();
        self.sink
            .install_snapshot(snap.shard, &snap.blob)
            .map_err(|detail| ReplicaError::Apply {
                shard: snap.shard,
                detail,
            })?;
        *cursor = snap.end_offset;
        self.stats
            .snapshots_installed
            .fetch_add(1, Ordering::Relaxed);
        Ok(*cursor)
    }

    /// Promotes this node: bumps the epoch past everything it has seen
    /// and returns the new epoch. Ships from the deposed primary now
    /// fail the fence, so a resurrected old primary fails closed.
    pub fn promote(&self) -> u64 {
        self.stats.promotions.fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StandbyStats {
        StandbyStats {
            epoch: self.epoch(),
            applied_frames: self.stats.applied_frames.load(Ordering::Relaxed),
            applied_bytes: self.stats.applied_bytes.load(Ordering::Relaxed),
            snapshots_installed: self.stats.snapshots_installed.load(Ordering::Relaxed),
            stale_rejected: self.stats.stale_rejected.load(Ordering::Relaxed),
            promotions: self.stats.promotions.load(Ordering::Relaxed),
        }
    }
}

impl<S: ApplySink> std::fmt::Debug for Standby<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Standby")
            .field("epoch", &self.epoch())
            .field("shards", &self.cursors.len())
            .finish()
    }
}

/// The trivial in-process transport: ship straight into a [`Standby`].
pub struct DirectLink<S: ApplySink>(pub std::sync::Arc<Standby<S>>);

impl<S: ApplySink> ShipTransport for DirectLink<S> {
    fn ship_frame(&self, frame: &FrameShip) -> Result<u64, ReplicaError> {
        self.0.apply(frame)
    }

    fn ship_snapshot(&self, snap: &SnapshotShip) -> Result<u64, ReplicaError> {
        self.0.install(snap)
    }
}

struct ShipCursor {
    /// Offset the primary's log has produced through (advances on every
    /// local append, shipped or not).
    produced: u64,
    /// Offset the standby has acked through.
    acked: u64,
    /// Whether the stream is live. Detached shards skip shipping until a
    /// snapshot transfer re-bases them.
    attached: bool,
}

#[derive(Debug, Default)]
struct ShipperCells {
    shipped_frames: AtomicU64,
    shipped_bytes: AtomicU64,
    acked_bytes: AtomicU64,
    snapshots_shipped: AtomicU64,
    ship_failures: AtomicU64,
}

/// Point-in-time primary-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipperStats {
    /// Epoch this shipper ships under.
    pub epoch: u64,
    /// Whether the shipper has been fenced by a higher epoch (deposed).
    pub fenced: bool,
    /// Frames successfully shipped and acked.
    pub shipped_frames: u64,
    /// Frame bytes successfully shipped.
    pub shipped_bytes: u64,
    /// Bytes the standby has acked across all shards.
    pub acked_bytes: u64,
    /// Bytes produced but not yet acked, summed across shards.
    pub lag_bytes: u64,
    /// Snapshot transfers shipped (catch-ups).
    pub snapshots_shipped: u64,
    /// Ship attempts that failed and detached their shard.
    pub ship_failures: u64,
}

/// The primary-side shipper: per-shard produced/acked cursors in front
/// of a [`ShipTransport`], fencing itself closed when deposed.
///
/// Shards start **detached**: a fresh pair must be based by an initial
/// snapshot transfer ([`Shipper::ship_snapshot`]), which also covers the
/// freshly-attached-standby and post-compaction catch-up cases — there
/// is deliberately exactly one way to (re)base a stream.
pub struct Shipper<T: ShipTransport> {
    transport: T,
    epoch: AtomicU64,
    fenced_at: AtomicU64,
    fenced: AtomicBool,
    cursors: Vec<Mutex<ShipCursor>>,
    stats: ShipperCells,
}

impl<T: ShipTransport> Shipper<T> {
    /// A shipper for `shard_count` shards, shipping under `epoch`, every
    /// shard detached until based by a snapshot transfer.
    pub fn new(transport: T, shard_count: u32, epoch: u64) -> Self {
        assert!(shard_count > 0, "a shipper needs at least one shard");
        Self {
            transport,
            epoch: AtomicU64::new(epoch),
            fenced_at: AtomicU64::new(0),
            fenced: AtomicBool::new(false),
            cursors: (0..shard_count)
                .map(|_| {
                    Mutex::new(ShipCursor {
                        produced: 0,
                        acked: 0,
                        attached: false,
                    })
                })
                .collect(),
            stats: ShipperCells::default(),
        }
    }

    /// The epoch this shipper ships under.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether a higher epoch has deposed this shipper. Once true, every
    /// ship fails with [`ReplicaError::StaleEpoch`] — the owning node
    /// must stop serving.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Number of shards the shipper tracks.
    pub fn shard_count(&self) -> u32 {
        self.cursors.len() as u32
    }

    /// `(produced, acked)` stream offsets for `shard`.
    pub fn offsets(&self, shard: u32) -> (u64, u64) {
        let cur = self.cursors[shard as usize].lock().unwrap();
        (cur.produced, cur.acked)
    }

    /// Whether `shard`'s stream is live (attached and not fenced).
    pub fn is_attached(&self, shard: u32) -> bool {
        !self.is_fenced() && self.cursors[shard as usize].lock().unwrap().attached
    }

    /// Shards currently needing a snapshot transfer before frames flow.
    pub fn detached_shards(&self) -> Vec<u32> {
        (0..self.shard_count())
            .filter(|&s| !self.cursors[s as usize].lock().unwrap().attached)
            .collect()
    }

    fn note_fenced(&self, err: &ReplicaError) {
        if let ReplicaError::StaleEpoch { current, .. } = err {
            self.fenced_at.fetch_max(*current, Ordering::SeqCst);
            self.fenced.store(true, Ordering::SeqCst);
        }
    }

    fn stale_error(&self) -> ReplicaError {
        ReplicaError::StaleEpoch {
            offered: self.epoch(),
            current: self.fenced_at.load(Ordering::SeqCst),
        }
    }

    /// Ships one just-appended frame spanning `start_offset..end_offset`
    /// of `shard`'s log generation. The caller must invoke this in
    /// append order per shard (the cloud tier serializes append + ship
    /// under one lock).
    ///
    /// The produced cursor advances whether or not the ship succeeds, so
    /// lag accounts for every byte the standby is missing. A transport
    /// or apply failure detaches the shard (warm-standby availability:
    /// the primary keeps serving, lag grows until catch-up); a stale
    /// epoch fences the whole shipper closed.
    pub fn ship(
        &self,
        shard: u32,
        kind: u8,
        payload: &[u8],
        start_offset: u64,
        end_offset: u64,
    ) -> Result<u64, ReplicaError> {
        let mut cur = self.cursors[shard as usize].lock().unwrap();
        let bytes = end_offset.saturating_sub(start_offset);
        cur.produced = end_offset;
        if self.is_fenced() {
            return Err(self.stale_error());
        }
        if !cur.attached {
            return Err(ReplicaError::Detached { shard });
        }
        if start_offset != cur.acked {
            // Only reachable if the caller broke append-order shipping;
            // detach defensively rather than corrupt the standby.
            cur.attached = false;
            self.stats.ship_failures.fetch_add(1, Ordering::Relaxed);
            return Err(ReplicaError::OffsetGap {
                shard,
                expected: cur.acked,
                got: start_offset,
            });
        }
        let frame = FrameShip {
            epoch: self.epoch(),
            shard,
            start_offset,
            end_offset,
            kind,
            payload: payload.to_vec(),
        };
        match self.transport.ship_frame(&frame) {
            Ok(acked) => {
                cur.acked = acked;
                self.stats.shipped_frames.fetch_add(1, Ordering::Relaxed);
                self.stats.shipped_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.stats.acked_bytes.fetch_add(bytes, Ordering::Relaxed);
                Ok(acked)
            }
            Err(err) => {
                self.note_fenced(&err);
                if !matches!(err, ReplicaError::StaleEpoch { .. }) {
                    cur.attached = false;
                    self.stats.ship_failures.fetch_add(1, Ordering::Relaxed);
                }
                Err(err)
            }
        }
    }

    /// Ships a full-shard snapshot covering the stream through
    /// `end_offset`, (re)attaching the shard on success. This is the
    /// single catch-up path: initial base of a fresh pair, a lagging or
    /// freshly attached standby, and a primary compaction that reset
    /// the stream all land here.
    pub fn ship_snapshot(
        &self,
        shard: u32,
        blob: &[u8],
        end_offset: u64,
    ) -> Result<u64, ReplicaError> {
        let mut cur = self.cursors[shard as usize].lock().unwrap();
        cur.produced = end_offset;
        if self.is_fenced() {
            return Err(self.stale_error());
        }
        let snap = SnapshotShip {
            epoch: self.epoch(),
            shard,
            end_offset,
            blob: blob.to_vec(),
        };
        match self.transport.ship_snapshot(&snap) {
            Ok(acked) => {
                cur.acked = acked;
                cur.attached = true;
                self.stats.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
                Ok(acked)
            }
            Err(err) => {
                self.note_fenced(&err);
                if !matches!(err, ReplicaError::StaleEpoch { .. }) {
                    cur.attached = false;
                    self.stats.ship_failures.fetch_add(1, Ordering::Relaxed);
                }
                Err(err)
            }
        }
    }

    /// Point-in-time counters. Lag is summed over per-shard cursors, so
    /// it reflects detached shards' unshipped bytes too.
    pub fn stats(&self) -> ShipperStats {
        let mut lag = 0u64;
        for cursor in &self.cursors {
            let cur = cursor.lock().unwrap();
            lag += cur.produced.saturating_sub(cur.acked);
        }
        ShipperStats {
            epoch: self.epoch(),
            fenced: self.is_fenced(),
            shipped_frames: self.stats.shipped_frames.load(Ordering::Relaxed),
            shipped_bytes: self.stats.shipped_bytes.load(Ordering::Relaxed),
            acked_bytes: self.stats.acked_bytes.load(Ordering::Relaxed),
            lag_bytes: lag,
            snapshots_shipped: self.stats.snapshots_shipped.load(Ordering::Relaxed),
            ship_failures: self.stats.ship_failures.load(Ordering::Relaxed),
        }
    }
}

impl<T: ShipTransport> std::fmt::Debug for Shipper<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shipper")
            .field("epoch", &self.epoch())
            .field("fenced", &self.is_fenced())
            .field("shards", &self.cursors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Test sink: remembers applied frames and installed snapshots per
    /// shard, with an optional failure switch.
    #[derive(Default)]
    struct VecSink {
        frames: StdMutex<Vec<(u32, u8, Vec<u8>)>>,
        snapshots: StdMutex<Vec<(u32, Vec<u8>)>>,
        fail: AtomicBool,
    }

    impl ApplySink for VecSink {
        fn apply_frame(&self, shard: u32, kind: u8, payload: &[u8]) -> Result<(), String> {
            if self.fail.load(Ordering::SeqCst) {
                return Err("sink offline".into());
            }
            self.frames
                .lock()
                .unwrap()
                .push((shard, kind, payload.to_vec()));
            Ok(())
        }

        fn install_snapshot(&self, shard: u32, blob: &[u8]) -> Result<(), String> {
            if self.fail.load(Ordering::SeqCst) {
                return Err("sink offline".into());
            }
            self.snapshots.lock().unwrap().push((shard, blob.to_vec()));
            Ok(())
        }
    }

    type TestStandby = Arc<Standby<Arc<VecSink>>>;
    type TestShipper = Shipper<DirectLink<Arc<VecSink>>>;

    fn pair(shards: u32) -> (TestStandby, TestShipper) {
        let sink = Arc::new(VecSink::default());
        let standby = Arc::new(Standby::new(sink, shards, 1));
        let shipper = Shipper::new(DirectLink(Arc::clone(&standby)), shards, 1);
        (standby, shipper)
    }

    impl ApplySink for Arc<VecSink> {
        fn apply_frame(&self, shard: u32, kind: u8, payload: &[u8]) -> Result<(), String> {
            self.as_ref().apply_frame(shard, kind, payload)
        }

        fn install_snapshot(&self, shard: u32, blob: &[u8]) -> Result<(), String> {
            self.as_ref().install_snapshot(shard, blob)
        }
    }

    #[test]
    fn frames_flow_after_an_initial_base_snapshot() {
        let (standby, shipper) = pair(2);
        assert_eq!(
            shipper.ship(0, 1, b"lost", 0, 4).unwrap_err(),
            ReplicaError::Detached { shard: 0 },
            "fresh pairs must be based before frames flow"
        );
        shipper.ship_snapshot(0, b"", 4).expect("base");
        assert_eq!(shipper.ship(0, 1, b"a", 4, 9).expect("ship"), 9);
        assert_eq!(shipper.ship(0, 2, b"bc", 9, 15).expect("ship"), 15);
        assert_eq!(standby.acked_offset(0), 15);
        assert_eq!(shipper.offsets(0), (15, 15));
        let stats = shipper.stats();
        assert_eq!(stats.shipped_frames, 2);
        assert_eq!(stats.shipped_bytes, 11);
        assert_eq!(
            stats.lag_bytes, 0,
            "the base snapshot covered the pre-base frame"
        );
        assert_eq!(standby.stats().applied_frames, 2);
    }

    #[test]
    fn offset_gap_at_the_standby_is_rejected() {
        let (standby, _) = pair(1);
        standby
            .install(&SnapshotShip {
                epoch: 1,
                shard: 0,
                end_offset: 10,
                blob: vec![],
            })
            .expect("base");
        let gap = standby
            .apply(&FrameShip {
                epoch: 1,
                shard: 0,
                start_offset: 99,
                end_offset: 120,
                kind: 1,
                payload: vec![],
            })
            .unwrap_err();
        assert_eq!(
            gap,
            ReplicaError::OffsetGap {
                shard: 0,
                expected: 10,
                got: 99
            }
        );
        assert_eq!(
            standby.acked_offset(0),
            10,
            "a rejected frame moves nothing"
        );
    }

    #[test]
    fn promotion_fences_the_old_primary_closed() {
        let (standby, shipper) = pair(1);
        shipper.ship_snapshot(0, b"state", 0).expect("base");
        shipper.ship(0, 1, b"acked", 0, 7).expect("ship");
        let new_epoch = standby.promote();
        assert_eq!(new_epoch, 2);
        let err = shipper.ship(0, 1, b"after", 7, 14).unwrap_err();
        assert_eq!(
            err,
            ReplicaError::StaleEpoch {
                offered: 1,
                current: 2
            }
        );
        assert!(shipper.is_fenced(), "first rejection fences the shipper");
        // Every later ship fails closed without touching the standby.
        assert!(matches!(
            shipper.ship(0, 1, b"again", 14, 21),
            Err(ReplicaError::StaleEpoch { .. })
        ));
        assert!(matches!(
            shipper.ship_snapshot(0, b"resurrect", 21),
            Err(ReplicaError::StaleEpoch { .. })
        ));
        assert_eq!(standby.stats().stale_rejected, 1);
        assert_eq!(standby.stats().promotions, 1);
        assert_eq!(standby.acked_offset(0), 7, "acked history survives intact");
    }

    #[test]
    fn newer_epochs_are_adopted_not_rejected() {
        let (standby, _) = pair(1);
        standby
            .install(&SnapshotShip {
                epoch: 5,
                shard: 0,
                end_offset: 0,
                blob: vec![],
            })
            .expect("a newly promoted peer may ship");
        assert_eq!(standby.epoch(), 5, "the higher epoch is adopted");
    }

    #[test]
    fn sink_failure_detaches_and_snapshot_reattaches() {
        let sink = Arc::new(VecSink::default());
        let standby = Arc::new(Standby::new(Arc::clone(&sink), 1, 1));
        let shipper = Shipper::new(DirectLink(Arc::clone(&standby)), 1, 1);
        shipper.ship_snapshot(0, b"", 0).expect("base");
        shipper.ship(0, 1, b"ok", 0, 6).expect("ship");

        sink.fail.store(true, Ordering::SeqCst);
        assert!(matches!(
            shipper.ship(0, 1, b"boom", 6, 12),
            Err(ReplicaError::Apply { .. })
        ));
        assert!(!shipper.is_attached(0));
        // The primary kept serving while detached; lag grows.
        assert!(matches!(
            shipper.ship(0, 1, b"while-down", 12, 22),
            Err(ReplicaError::Detached { .. })
        ));
        assert_eq!(shipper.stats().lag_bytes, 16);
        assert_eq!(shipper.stats().ship_failures, 1);

        // Catch-up: one snapshot re-bases the stream at the current tip.
        sink.fail.store(false, Ordering::SeqCst);
        shipper
            .ship_snapshot(0, b"caught-up", 22)
            .expect("catch up");
        assert!(shipper.is_attached(0));
        assert_eq!(shipper.stats().lag_bytes, 0);
        assert_eq!(standby.acked_offset(0), 22);
        shipper.ship(0, 1, b"resumed", 22, 33).expect("resume");
        assert_eq!(standby.acked_offset(0), 33);
    }

    #[test]
    fn out_of_order_ship_detaches_defensively() {
        let (_, shipper) = pair(1);
        shipper.ship_snapshot(0, b"", 0).expect("base");
        shipper.ship(0, 1, b"a", 0, 5).expect("ship");
        let err = shipper.ship(0, 1, b"skipped-ahead", 9, 20).unwrap_err();
        assert_eq!(
            err,
            ReplicaError::OffsetGap {
                shard: 0,
                expected: 5,
                got: 9
            }
        );
        assert_eq!(shipper.detached_shards(), vec![0]);
    }

    #[test]
    fn per_shard_cursors_are_independent() {
        let (standby, shipper) = pair(4);
        for shard in 0..4 {
            shipper.ship_snapshot(shard, b"", 0).expect("base");
        }
        shipper.ship(2, 1, b"two", 0, 7).expect("ship");
        shipper.ship(3, 1, b"three", 0, 9).expect("ship");
        assert_eq!(standby.acked_offset(2), 7);
        assert_eq!(standby.acked_offset(3), 9);
        assert_eq!(standby.acked_offset(0), 0);
        assert_eq!(shipper.offsets(2), (7, 7));
        assert_eq!(shipper.offsets(0), (0, 0));
    }

    #[test]
    fn stats_report_epoch_and_fencing() {
        let (standby, shipper) = pair(1);
        shipper.ship_snapshot(0, b"", 0).expect("base");
        assert_eq!(shipper.stats().epoch, 1);
        assert!(!shipper.stats().fenced);
        standby.promote();
        let _ = shipper.ship(0, 1, b"x", 0, 4);
        let stats = shipper.stats();
        assert!(stats.fenced);
        assert_eq!(stats.snapshots_shipped, 1);
        assert_eq!(standby.stats().epoch, 2);
    }
}
