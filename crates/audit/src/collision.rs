//! Keyspace collision sweeps for the identity-hash routing tier.
//!
//! Every enrollment is routed by the stable 64-bit FNV-1a hash of its
//! identifier (`medsen_cloud::identity_hash`), and record ids encode the
//! resulting shard — so hash behaviour is part of the persistence
//! contract. Two distinct failure modes matter at million-credential
//! scale:
//!
//! * **hash collisions** — two identifiers with the same 64-bit hash are
//!   fine for correctness (shards key the full string) but measure the
//!   hash's health: observed collisions should track the birthday bound
//!   `n(n−1)/2^65`, and FNV-1a over structured identifiers is exactly the
//!   kind of non-cryptographic hash that could silently do worse;
//! * **route imbalance** — a skewed `hash % shards` histogram turns the
//!   sharded write path back into the single-lock path it replaced.
//!
//! The sweep takes a plain hash iterator so the audit crate never links
//! the crate under test; `tests/security_audit.rs` pins this module's
//! modulo routing bit-equal to `medsen_cloud::shard_index`.

/// The expected number of colliding pairs when `n` values are drawn
/// uniformly from a `2^space_bits` space (birthday bound, first-order).
pub fn expected_birthday_collisions(n: u64, space_bits: u32) -> f64 {
    let n = n as f64;
    n * (n - 1.0) / 2.0 / 2f64.powi(space_bits as i32)
}

/// What one sweep over a hash stream found.
#[derive(Debug, Clone, PartialEq)]
pub struct CollisionReport {
    /// Hashes examined.
    pub n: u64,
    /// Colliding pairs observed (a k-way collision counts k·(k−1)/2).
    pub colliding_pairs: u64,
    /// Birthday-bound expectation for `n` draws from 2^64.
    pub expected_pairs: f64,
    /// Shard count the routing histogram was taken over.
    pub shard_count: usize,
    /// Heaviest shard's identifier count.
    pub max_shard_load: u64,
    /// Lightest shard's identifier count.
    pub min_shard_load: u64,
    /// `max_shard_load / (n / shards)` — 1.0 is perfect balance.
    pub imbalance: f64,
}

impl CollisionReport {
    /// Collision health: observed colliding pairs within `slack` pairs of
    /// the birthday expectation (for 2^64 and n ≤ millions the
    /// expectation is ≪ 1, so any slack ≥ 1 means "essentially zero
    /// observed").
    pub fn collisions_ok(&self, slack: u64) -> bool {
        self.colliding_pairs as f64 <= self.expected_pairs + slack as f64
    }
}

/// Sweeps a hash stream: counts 64-bit collisions and the `hash % shards`
/// routing histogram.
///
/// # Panics
///
/// Panics if `shard_count` is zero.
pub fn collision_sweep(
    hashes: impl IntoIterator<Item = u64>,
    shard_count: usize,
) -> CollisionReport {
    assert!(shard_count > 0, "need at least one shard");
    let mut loads = vec![0u64; shard_count];
    let mut all: Vec<u64> = Vec::new();
    for hash in hashes {
        loads[(hash % shard_count as u64) as usize] += 1;
        all.push(hash);
    }
    all.sort_unstable();
    let mut colliding_pairs = 0u64;
    let mut run = 1u64;
    for window in all.windows(2) {
        if window[0] == window[1] {
            run += 1;
        } else {
            colliding_pairs += run * (run - 1) / 2;
            run = 1;
        }
    }
    colliding_pairs += run * (run - 1) / 2;
    let n = all.len() as u64;
    let max_shard_load = loads.iter().copied().max().unwrap_or(0);
    let min_shard_load = loads.iter().copied().min().unwrap_or(0);
    let ideal = n as f64 / shard_count as f64;
    CollisionReport {
        n,
        colliding_pairs,
        expected_pairs: expected_birthday_collisions(n, 64),
        shard_count,
        max_shard_load,
        min_shard_load,
        imbalance: if ideal > 0.0 {
            max_shard_load as f64 / ideal
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::AuditRng;

    #[test]
    fn uniform_hashes_have_no_collisions_and_balance() {
        let mut rng = AuditRng::new(1);
        let report = collision_sweep((0..100_000).map(|_| rng.next_u64()), 64);
        assert_eq!(report.colliding_pairs, 0);
        assert!(report.collisions_ok(0));
        assert!(report.imbalance < 1.15, "imbalance {}", report.imbalance);
        assert!(report.min_shard_load > 0);
    }

    #[test]
    fn planted_collisions_are_counted_as_pairs() {
        // 5 distinct values, one repeated 3 times and one twice:
        // C(3,2) + C(2,2) = 3 + 1 pairs.
        let stream = [7u64, 1, 7, 2, 9, 9, 7];
        let report = collision_sweep(stream, 4);
        assert_eq!(report.n, 7);
        assert_eq!(report.colliding_pairs, 4);
        assert!(!report.collisions_ok(3));
        assert!(report.collisions_ok(4));
    }

    #[test]
    fn birthday_expectation_orders_of_magnitude() {
        // A million draws from 2^64: ~2.7e-8 expected pairs.
        let e = expected_birthday_collisions(1_000_000, 64);
        assert!(e > 1e-9 && e < 1e-7, "e = {e}");
        // A million draws from 2^32: ~116 expected pairs.
        let e32 = expected_birthday_collisions(1_000_000, 32);
        assert!((e32 - 116.4).abs() < 1.0, "e32 = {e32}");
    }

    #[test]
    fn truncated_hashes_show_birthday_scaling() {
        // Truncate uniform hashes to 24 bits: expect ≈ n²/2^25 pairs.
        let mut rng = AuditRng::new(2);
        let n = 50_000u64;
        let report = collision_sweep((0..n).map(|_| rng.next_u64() & 0xFF_FFFF), 8);
        let expected = expected_birthday_collisions(n, 24);
        let ratio = report.colliding_pairs as f64 / expected;
        assert!(
            (0.5..2.0).contains(&ratio),
            "observed {} vs expected {expected}",
            report.colliding_pairs
        );
    }

    #[test]
    fn empty_stream_is_well_defined() {
        let report = collision_sweep(std::iter::empty(), 4);
        assert_eq!(report.n, 0);
        assert_eq!(report.colliding_pairs, 0);
        assert_eq!(report.imbalance, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = collision_sweep([1u64], 0);
    }
}
