//! The scorecard: four measured sections, one verdict.
//!
//! The scorecard is the audit's product. Each section owns its pass
//! bound, the bound is printed next to the measurement it judges, and
//! `Scorecard::pass` is the conjunction — `medsen audit` renders this
//! structure and `tests/security_audit.rs` asserts on it, so the CLI and
//! CI can never drift apart on what "passing" means.
//!
//! Determinism contract: for a fixed seed every line of [`Scorecard`]'s
//! `Display` output is bit-identical across runs *except* lines prefixed
//! `wall-clock:`, which carry nanosecond statistics from the live timing
//! harness. Consumers that diff scorecards (the determinism test, log
//! scrapers) filter on that prefix. The timing *verdict* is deliberately
//! excluded from the nondeterministic lines: it comes from operation
//! counting, not wall-clock, so it is as reproducible as the other three
//! sections.

use crate::collision::CollisionReport;
use crate::timing::TimingVerdict;
use std::fmt;

/// One swept configuration in the entropy section: an Eq. 2 parameter
/// point and the observable entropy measured at it.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyRow {
    /// N_cells: sensing cells in the array.
    pub n_cells: u32,
    /// N_elec: electrode outputs per cell.
    pub n_electrodes: u32,
    /// R_gain: bits of gain resolution.
    pub r_gain_bits: u32,
    /// R_flow: bits of flow resolution.
    pub r_flow_bits: u32,
    /// Eq. 2 key material for this configuration, bits.
    pub eq2_bits: f64,
    /// Measured observable entropy (component-wise upper bound), bits.
    pub observable_bits: f64,
    /// Keys sampled for the measurement.
    pub samples: u64,
}

impl EntropyRow {
    /// Key-material margin over the observable channel, in bits.
    pub fn margin_bits(&self) -> f64 {
        self.eq2_bits - self.observable_bits
    }
}

/// Section 1: empirical entropy of the keying stream vs the Eq. 2 budget.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropySection {
    /// One row per swept (N_cells, N_elec, R_gain, R_flow) point.
    pub rows: Vec<EntropyRow>,
}

impl EntropySection {
    /// Passes when every configuration keeps a positive margin: the
    /// observable projection never carries as many bits as Eq. 2 grants
    /// the key, and the stream is not degenerate (observable > 0).
    pub fn pass(&self) -> bool {
        !self.rows.is_empty()
            && self
                .rows
                .iter()
                .all(|r| r.observable_bits > 0.0 && r.observable_bits < r.eq2_bits)
    }
}

/// One distinguishing-attack trial between a pair of credentials.
#[derive(Debug, Clone, PartialEq)]
pub struct DistinguisherTrial {
    /// Human-readable pair description (printed verbatim).
    pub label: String,
    /// L1 distance between the two credentials' level vectors; 0 means
    /// the control trial (same credential on both sides).
    pub distance: u32,
    /// Sessions per credential until separation, `None` if the budget
    /// ran out first.
    pub sessions_to_distinguish: Option<u64>,
    /// The session budget the trial ran under.
    pub max_sessions: u64,
}

/// Section 2: how many observed sessions a curious cloud needs to tell
/// two bead-mixture credentials apart.
#[derive(Debug, Clone, PartialEq)]
pub struct DistinguisherSection {
    /// z-score the sequential test had to reach.
    pub z_threshold: f64,
    /// Control + distinct-pair trials.
    pub trials: Vec<DistinguisherTrial>,
}

impl DistinguisherSection {
    /// Passes when the statistics behave: every control trial (distance
    /// 0) stays at chance for its whole budget, and every distinct pair
    /// is eventually distinguished — confirming the harness has power,
    /// so the control's silence means something.
    pub fn pass(&self) -> bool {
        let controls = self.trials.iter().filter(|t| t.distance == 0);
        let distinct = self.trials.iter().filter(|t| t.distance > 0);
        self.trials.iter().any(|t| t.distance == 0)
            && self.trials.iter().any(|t| t.distance > 0)
            && controls
                .clone()
                .all(|t| t.sessions_to_distinguish.is_none())
            && distinct
                .clone()
                .all(|t| t.sessions_to_distinguish.is_some())
    }

    /// The fewest sessions that separated any distinct pair — the
    /// headline exposure number.
    pub fn fastest_separation(&self) -> Option<u64> {
        self.trials
            .iter()
            .filter(|t| t.distance > 0)
            .filter_map(|t| t.sessions_to_distinguish)
            .min()
    }
}

/// Section 3: the auth compare path's input-(in)dependence.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSection {
    /// Bead-kind comparisons executed for a mismatch at the first kind.
    pub ops_first_mismatch: u64,
    /// Bead-kind comparisons executed for a mismatch at the last kind.
    pub ops_last_mismatch: u64,
    /// Wall-clock verdict from the paired harness (nondeterministic;
    /// rendered only on `wall-clock:` lines).
    pub wall_clock: TimingVerdict,
}

impl TimingSection {
    /// Passes when the operation count is independent of mismatch
    /// position — the deterministic statement of "constant-time". The
    /// wall-clock verdict is corroborating evidence, not the gate: ns
    /// medians on a shared CI runner are not reproducible, op counts
    /// are.
    pub fn pass(&self) -> bool {
        self.ops_first_mismatch == self.ops_last_mismatch && self.ops_first_mismatch > 0
    }
}

/// Section 4: million-credential keyspace sweep through the identity
/// hash and shard router.
#[derive(Debug, Clone, PartialEq)]
pub struct CollisionSection {
    /// The full-stream hash/routing sweep.
    pub report: CollisionReport,
    /// Credentials actually enrolled into a live `ShardedAuth` tier
    /// (a subset of `report.n`, to bound memory).
    pub enrolled: u64,
    /// Whether every enrolled credential authenticated through the tier
    /// and the tier's integrity check passed.
    pub enrolled_verified: bool,
    /// Routing-imbalance ceiling the sweep is judged against.
    pub imbalance_limit: f64,
}

impl CollisionSection {
    /// Passes when observed collisions sit at the birthday bound (within
    /// one pair of slack), routing stays balanced, and the live tier
    /// verified every enrolled credential.
    pub fn pass(&self) -> bool {
        self.report.collisions_ok(1)
            && self.report.imbalance < self.imbalance_limit
            && self.enrolled > 0
            && self.enrolled_verified
    }
}

/// The complete audit scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// Seed the whole battery ran under.
    pub seed: u64,
    /// Section 1: entropy vs Eq. 2.
    pub entropy: EntropySection,
    /// Section 2: distinguishing attack.
    pub distinguisher: DistinguisherSection,
    /// Section 3: auth-compare timing.
    pub timing: TimingSection,
    /// Section 4: keyspace collisions.
    pub collision: CollisionSection,
}

impl Scorecard {
    /// True when all four sections pass.
    pub fn pass(&self) -> bool {
        self.entropy.pass()
            && self.distinguisher.pass()
            && self.timing.pass()
            && self.collision.pass()
    }
}

fn verdict(pass: bool) -> &'static str {
    if pass {
        "PASS"
    } else {
        "FAIL"
    }
}

impl fmt::Display for Scorecard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "medsen security audit — seed {}", self.seed)?;
        writeln!(f)?;

        writeln!(f, "[1/4] keying entropy vs Eq. 2")?;
        for r in &self.entropy.rows {
            writeln!(
                f,
                "  cells={} elec={} gain={}b flow={}b : Eq.2 {:.1} bits, observable <= {:.2} bits (margin {:.2}) [{} keys]",
                r.n_cells,
                r.n_electrodes,
                r.r_gain_bits,
                r.r_flow_bits,
                r.eq2_bits,
                r.observable_bits,
                r.margin_bits(),
                r.samples,
            )?;
        }
        writeln!(
            f,
            "  verdict: {} (observable channel stays below the key budget)",
            verdict(self.entropy.pass())
        )?;
        writeln!(f)?;

        writeln!(
            f,
            "[2/4] distinguishing attack (sequential Welch test, z >= {:.1})",
            self.distinguisher.z_threshold
        )?;
        for t in &self.distinguisher.trials {
            match t.sessions_to_distinguish {
                Some(n) => writeln!(
                    f,
                    "  {} (distance {}) : distinguished after {} sessions",
                    t.label, t.distance, n
                )?,
                None => writeln!(
                    f,
                    "  {} (distance {}) : at chance through {} sessions",
                    t.label, t.distance, t.max_sessions
                )?,
            }
        }
        match self.distinguisher.fastest_separation() {
            Some(n) => writeln!(
                f,
                "  fastest separation of distinct credentials: {n} sessions"
            )?,
            None => writeln!(
                f,
                "  fastest separation of distinct credentials: none observed"
            )?,
        }
        writeln!(
            f,
            "  verdict: {} (controls silent, distinct pairs eventually separate)",
            verdict(self.distinguisher.pass())
        )?;
        writeln!(f)?;

        writeln!(f, "[3/4] auth compare timing")?;
        writeln!(
            f,
            "  op count, mismatch at first bead kind : {}",
            self.timing.ops_first_mismatch
        )?;
        writeln!(
            f,
            "  op count, mismatch at last bead kind  : {}",
            self.timing.ops_last_mismatch
        )?;
        let w = &self.timing.wall_clock;
        writeln!(
            f,
            "  wall-clock: medians {:.0} ns vs {:.0} ns, pooled MAD {:.0} ns, effect {:.2}, {} ({} samples/class)",
            w.median_a_ns,
            w.median_b_ns,
            w.pooled_mad_ns,
            w.effect,
            if w.leak { "LEAK" } else { "no leak" },
            w.samples,
        )?;
        writeln!(
            f,
            "  verdict: {} (compare executes a position-independent op count)",
            verdict(self.timing.pass())
        )?;
        writeln!(f)?;

        writeln!(
            f,
            "[4/4] keyspace collisions (identity hash + shard routing)"
        )?;
        let c = &self.collision;
        writeln!(
            f,
            "  {} identifiers : {} colliding pairs (birthday bound {:.2e})",
            c.report.n, c.report.colliding_pairs, c.report.expected_pairs
        )?;
        writeln!(
            f,
            "  {} shards : loads {}..{}, imbalance {:.3} (limit {:.3})",
            c.report.shard_count,
            c.report.min_shard_load,
            c.report.max_shard_load,
            c.report.imbalance,
            c.imbalance_limit,
        )?;
        writeln!(
            f,
            "  live tier : {} enrolled, round-trip {}",
            c.enrolled,
            if c.enrolled_verified {
                "verified"
            } else {
                "FAILED"
            }
        )?;
        writeln!(
            f,
            "  verdict: {} (collisions at birthday bound, routing balanced)",
            verdict(c.pass())
        )?;
        writeln!(f)?;

        writeln!(f, "overall: {}", verdict(self.pass()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::collision_sweep;
    use crate::rng::AuditRng;

    fn sample_card(pass: bool) -> Scorecard {
        let mut rng = AuditRng::new(1);
        let report = collision_sweep((0..10_000).map(|_| rng.next_u64()), 16);
        Scorecard {
            seed: 42,
            entropy: EntropySection {
                rows: vec![EntropyRow {
                    n_cells: 1,
                    n_electrodes: 9,
                    r_gain_bits: 4,
                    r_flow_bits: 4,
                    eq2_bits: 85.0,
                    observable_bits: if pass { 14.2 } else { 90.0 },
                    samples: 20_000,
                }],
            },
            distinguisher: DistinguisherSection {
                z_threshold: 5.0,
                trials: vec![
                    DistinguisherTrial {
                        label: "identical credentials".into(),
                        distance: 0,
                        sessions_to_distinguish: None,
                        max_sessions: 512,
                    },
                    DistinguisherTrial {
                        label: "adjacent pair".into(),
                        distance: 1,
                        sessions_to_distinguish: Some(37),
                        max_sessions: 4096,
                    },
                ],
            },
            timing: TimingSection {
                ops_first_mismatch: 2,
                ops_last_mismatch: 2,
                wall_clock: TimingVerdict {
                    median_a_ns: 120.0,
                    median_b_ns: 121.0,
                    pooled_mad_ns: 9.0,
                    effect: 0.11,
                    samples: 401,
                    leak: false,
                },
            },
            collision: CollisionSection {
                report,
                enrolled: 4096,
                enrolled_verified: true,
                imbalance_limit: 1.15,
            },
        }
    }

    #[test]
    fn passing_card_passes_and_prints_all_sections() {
        let card = sample_card(true);
        assert!(card.pass());
        let text = card.to_string();
        for needle in [
            "[1/4] keying entropy vs Eq. 2",
            "[2/4] distinguishing attack",
            "[3/4] auth compare timing",
            "[4/4] keyspace collisions",
            "overall: PASS",
            "seed 42",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn failing_section_fails_the_card() {
        let card = sample_card(false);
        assert!(!card.entropy.pass());
        assert!(!card.pass());
        assert!(card.to_string().contains("overall: FAIL"));
    }

    #[test]
    fn nondeterministic_stats_live_only_on_wall_clock_lines() {
        let mut a = sample_card(true);
        let mut b = sample_card(true);
        a.timing.wall_clock.median_a_ns = 500.0;
        b.timing.wall_clock.median_a_ns = 900.0;
        let strip = |card: &Scorecard| {
            card.to_string()
                .lines()
                .filter(|l| !l.trim_start().starts_with("wall-clock:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a), strip(&b));
        assert_ne!(a.to_string(), b.to_string());
    }

    #[test]
    fn distinguisher_requires_controls_and_power() {
        let mut card = sample_card(true);
        // A control that separated is a broken harness.
        card.distinguisher.trials[0].sessions_to_distinguish = Some(3);
        assert!(!card.distinguisher.pass());
        // A distinct pair that never separated means no power.
        card.distinguisher.trials[0].sessions_to_distinguish = None;
        card.distinguisher.trials[1].sessions_to_distinguish = None;
        assert!(!card.distinguisher.pass());
    }

    #[test]
    fn timing_gate_is_the_op_count_not_wall_clock() {
        let mut card = sample_card(true);
        card.timing.wall_clock.leak = true;
        assert!(card.timing.pass(), "wall-clock must not gate the verdict");
        card.timing.ops_last_mismatch += 1;
        assert!(!card.timing.pass());
    }
}
