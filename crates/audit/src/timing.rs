//! Paired-class timing-leak measurement, and the compare that passes it.
//!
//! A remote adversary cannot read the enrollment database, but it can
//! time the server's answers. If the auth compare path exits early on the
//! first mismatching symbol, response time encodes *where* a guess went
//! wrong — the classic password-oracle leak. This module measures that
//! channel the way dudect-style tools do, scaled down to CI realities:
//!
//! * two input classes (e.g. "mismatch at the first symbol" vs "mismatch
//!   at the last") are executed in a seeded-random interleaving, so slow
//!   drift (thermal, scheduler) decorrelates from class;
//! * per-class distributions are summarized by median and MAD — outliers
//!   from preemption land in the tails both statistics ignore;
//! * the verdict is a robust effect size: a leak requires the median gap
//!   to clear both an absolute floor (timer quantization) and a multiple
//!   of the pooled MAD (machine noise).
//!
//! Wall-clock on shared runners is inherently jittery, so the *CI-stable*
//! regression pin for the auth path is operation-count instrumentation
//! (`BeadSignature::matches_counted` in `medsen-cloud`); the wall-clock
//! harness here is the measurement that backs it and the self-test that
//! proves the harness can still see a planted leak.

use crate::rng::AuditRng;
use std::time::Instant;

/// Constant-time byte-slice equality: the execution trace depends only on
/// the lengths, never on the contents or the position of a mismatch.
/// (Length itself is public context everywhere this is used: credential
/// encodings of one alphabet are fixed-width.)
#[inline]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

/// The harness's verdict on one paired-class measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingVerdict {
    /// Median duration of class A, nanoseconds.
    pub median_a_ns: f64,
    /// Median duration of class B, nanoseconds.
    pub median_b_ns: f64,
    /// Pooled median absolute deviation, nanoseconds.
    pub pooled_mad_ns: f64,
    /// |median gap| / max(pooled MAD, 1 ns) — the robust effect size.
    pub effect: f64,
    /// Samples per class.
    pub samples: usize,
    /// True when the gap clears both the absolute floor and the noise
    /// multiple: the classes are timing-distinguishable.
    pub leak: bool,
}

/// Gap floor below which a difference is timer quantization, not signal.
const ABS_FLOOR_NS: f64 = 75.0;
/// Noise multiple the gap must clear.
const EFFECT_THRESHOLD: f64 = 4.0;

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

fn median_abs_deviation(samples: &[f64], center: f64) -> f64 {
    let mut devs: Vec<f64> = samples.iter().map(|&x| (x - center).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    median(&devs)
}

/// Computes the robust verdict over two classes of duration samples
/// (nanoseconds).
///
/// # Panics
///
/// Panics if either class is empty.
pub fn paired_verdict(class_a: &[u64], class_b: &[u64]) -> TimingVerdict {
    assert!(
        !class_a.is_empty() && !class_b.is_empty(),
        "timing verdict needs samples in both classes"
    );
    let mut a: Vec<f64> = class_a.iter().map(|&x| x as f64).collect();
    let mut b: Vec<f64> = class_b.iter().map(|&x| x as f64).collect();
    a.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let median_a = median(&a);
    let median_b = median(&b);
    let mad_a = median_abs_deviation(&a, median_a);
    let mad_b = median_abs_deviation(&b, median_b);
    let pooled = ((mad_a * mad_a + mad_b * mad_b) / 2.0).sqrt();
    let gap = (median_a - median_b).abs();
    let effect = gap / pooled.max(1.0);
    TimingVerdict {
        median_a_ns: median_a,
        median_b_ns: median_b,
        pooled_mad_ns: pooled,
        effect,
        samples: class_a.len().min(class_b.len()),
        leak: gap > ABS_FLOOR_NS && effect > EFFECT_THRESHOLD,
    }
}

/// Runs `operation` on the two classes in a seeded-random interleaving
/// and returns the robust verdict. `operation` receives `true` for class
/// A and `false` for class B; use [`std::hint::black_box`] inside it to
/// keep the compiler from hoisting the work.
pub fn measure_paired(
    rng: &mut AuditRng,
    samples_per_class: usize,
    mut operation: impl FnMut(bool),
) -> TimingVerdict {
    assert!(samples_per_class > 0, "need at least one sample per class");
    // Interleave: a shuffled deck with exactly `samples_per_class` of
    // each class, preceded by a warmup that never gets recorded.
    let mut deck: Vec<bool> = (0..samples_per_class * 2).map(|i| i % 2 == 0).collect();
    rng.shuffle(&mut deck);
    for _ in 0..(samples_per_class / 4).clamp(8, 256) {
        operation(true);
        operation(false);
    }
    let mut class_a = Vec::with_capacity(samples_per_class);
    let mut class_b = Vec::with_capacity(samples_per_class);
    for &is_a in &deck {
        let started = Instant::now();
        operation(is_a);
        let elapsed = started.elapsed().as_nanos() as u64;
        if is_a {
            class_a.push(elapsed);
        } else {
            class_b.push(elapsed);
        }
    }
    paired_verdict(&class_a, &class_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hint::black_box;

    #[test]
    fn ct_eq_agrees_with_slice_equality() {
        let mut rng = AuditRng::new(1);
        for len in [0usize, 1, 7, 64, 1000] {
            let a: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            let mut b = a.clone();
            assert!(ct_eq(&a, &b));
            if len > 0 {
                let at = rng.below(len as u64) as usize;
                b[at] ^= 0x40;
                assert!(!ct_eq(&a, &b));
                assert!(!ct_eq(&a, &a[..len - 1]));
            }
        }
    }

    #[test]
    fn planted_early_exit_leak_is_detected() {
        // A deliberately leaky compare over 64 KiB: mismatch at byte 0
        // (class A) exits immediately, mismatch at the last byte (class
        // B) scans everything. The harness must see it.
        let base = vec![0xABu8; 64 * 1024];
        let mut first = base.clone();
        first[0] ^= 1;
        let mut last = base.clone();
        *last.last_mut().unwrap() ^= 1;
        let leaky_eq = |a: &[u8], b: &[u8]| a.iter().zip(b).all(|(x, y)| x == y);
        let mut rng = AuditRng::new(2);
        let verdict = measure_paired(&mut rng, 401, |is_a| {
            let probe = if is_a { &first } else { &last };
            black_box(leaky_eq(black_box(&base), black_box(probe)));
        });
        assert!(verdict.leak, "planted leak missed: {verdict:?}");
    }

    #[test]
    fn constant_time_compare_shows_no_leak() {
        let base = vec![0xABu8; 64 * 1024];
        let mut first = base.clone();
        first[0] ^= 1;
        let mut last = base.clone();
        *last.last_mut().unwrap() ^= 1;
        let mut rng = AuditRng::new(3);
        let verdict = measure_paired(&mut rng, 401, |is_a| {
            let probe = if is_a { &first } else { &last };
            black_box(ct_eq(black_box(&base), black_box(probe)));
        });
        assert!(!verdict.leak, "false positive on ct_eq: {verdict:?}");
    }

    #[test]
    fn verdict_statistics_are_robust_to_outliers() {
        // Two identical distributions, one polluted with huge outliers:
        // medians/MADs must shrug them off.
        let a: Vec<u64> = (0..101).map(|i| 1000 + (i % 7)).collect();
        let mut b = a.clone();
        b[7] = 1_000_000;
        b[63] = 2_000_000;
        let verdict = paired_verdict(&a, &b);
        assert!(!verdict.leak, "{verdict:?}");
        assert!(verdict.effect < 1.0);
    }

    #[test]
    fn clearly_shifted_classes_are_flagged() {
        let a: Vec<u64> = (0..101).map(|i| 1000 + (i % 9)).collect();
        let b: Vec<u64> = (0..101).map(|i| 2000 + (i % 9)).collect();
        let verdict = paired_verdict(&a, &b);
        assert!(verdict.leak, "{verdict:?}");
        assert!(verdict.effect > EFFECT_THRESHOLD);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn empty_class_panics() {
        let _ = paired_verdict(&[], &[1]);
    }
}
