//! The curious-cloud distinguishing harness.
//!
//! The paper's privacy story for the auth path is that a bead signature
//! is "just counts" — but counts are exactly what a curious cloud can
//! accumulate across sessions. The operational question is not *whether*
//! two credentials are distinguishable (any two distinct concentration
//! vectors eventually are) but *how many observed sessions* it takes.
//! This module measures that: a sequential two-sample test that watches
//! per-session observation vectors from two credentials and reports the
//! first sample count at which they separate above chance.
//!
//! The statistic is the largest per-dimension Welch z-score — the same
//! test an unsophisticated but diligent adversary would run with a
//! spreadsheet. Using a deliberately simple adversary keeps the measured
//! sample count an *upper bound on safety*: a Bayesian adversary needs
//! fewer samples, never more.

/// Per-dimension running mean/variance (Welford) for one class.
#[derive(Debug, Clone)]
struct ClassStats {
    n: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl ClassStats {
    fn new(dims: usize) -> Self {
        Self {
            n: 0,
            mean: vec![0.0; dims],
            m2: vec![0.0; dims],
        }
    }

    fn observe(&mut self, sample: &[f64]) {
        self.n += 1;
        let n = self.n as f64;
        for (d, &x) in sample.iter().enumerate() {
            let delta = x - self.mean[d];
            self.mean[d] += delta / n;
            self.m2[d] += delta * (x - self.mean[d]);
        }
    }

    fn variance(&self, d: usize) -> f64 {
        if self.n < 2 {
            return f64::NAN;
        }
        self.m2[d] / (self.n - 1) as f64
    }
}

/// A sequential two-sample distinguisher over fixed-dimension
/// observation vectors.
#[derive(Debug, Clone)]
pub struct SequentialDistinguisher {
    dims: usize,
    a: ClassStats,
    b: ClassStats,
}

impl SequentialDistinguisher {
    /// A distinguisher over `dims`-dimensional observations.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "observations need at least one dimension");
        Self {
            dims,
            a: ClassStats::new(dims),
            b: ClassStats::new(dims),
        }
    }

    /// Feeds one observation of credential A.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn observe_a(&mut self, sample: &[f64]) {
        assert_eq!(sample.len(), self.dims, "dimension mismatch");
        self.a.observe(sample);
    }

    /// Feeds one observation of credential B.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn observe_b(&mut self, sample: &[f64]) {
        assert_eq!(sample.len(), self.dims, "dimension mismatch");
        self.b.observe(sample);
    }

    /// Observations seen per class `(n_a, n_b)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.a.n, self.b.n)
    }

    /// The largest per-dimension Welch z-score between the two classes.
    /// `NaN` until both classes hold at least two observations. A
    /// dimension with zero variance in both classes scores 0 when the
    /// means agree and `INFINITY` when they differ (a constant separator
    /// is a perfect distinguisher).
    pub fn z_score(&self) -> f64 {
        if self.a.n < 2 || self.b.n < 2 {
            return f64::NAN;
        }
        let mut best = 0.0f64;
        for d in 0..self.dims {
            let gap = (self.a.mean[d] - self.b.mean[d]).abs();
            let se = (self.a.variance(d) / self.a.n as f64 + self.b.variance(d) / self.b.n as f64)
                .sqrt();
            let z = if se > 0.0 {
                gap / se
            } else if gap > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            best = best.max(z);
        }
        best
    }
}

/// Draws paired observations from the two generators until the
/// distinguisher's z-score reaches `z_threshold`, returning the number of
/// samples *per credential* that sufficed — or `None` if `max_samples`
/// pairs never separated the classes (the desired outcome for identical
/// credentials).
///
/// `z_threshold` must absorb the multiple looks a sequential test takes:
/// 5.0 keeps the false-positive rate negligible over thousands of peeks
/// while costing a distinguishable pair at most a few extra samples.
pub fn samples_to_distinguish(
    mut draw_a: impl FnMut() -> Vec<f64>,
    mut draw_b: impl FnMut() -> Vec<f64>,
    z_threshold: f64,
    max_samples: u64,
) -> Option<u64> {
    let first = draw_a();
    let mut dist = SequentialDistinguisher::new(first.len());
    dist.observe_a(&first);
    dist.observe_b(&draw_b());
    for n in 2..=max_samples {
        dist.observe_a(&draw_a());
        dist.observe_b(&draw_b());
        if dist.z_score() >= z_threshold {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::AuditRng;

    fn poisson_pair(rng: &mut AuditRng, l0: f64, l1: f64) -> Vec<f64> {
        vec![rng.poisson(l0) as f64, rng.poisson(l1) as f64]
    }

    #[test]
    fn identical_credentials_stay_at_chance() {
        let rng = std::cell::RefCell::new(AuditRng::new(5));
        let n = samples_to_distinguish(
            || poisson_pair(&mut rng.borrow_mut(), 120.0, 240.0),
            || poisson_pair(&mut rng.borrow_mut(), 120.0, 240.0),
            5.0,
            512,
        );
        assert_eq!(n, None, "identical credentials must not separate");
    }

    #[test]
    fn distant_credentials_separate_fast() {
        let rng = std::cell::RefCell::new(AuditRng::new(6));
        let n = samples_to_distinguish(
            || poisson_pair(&mut rng.borrow_mut(), 40.0, 40.0),
            || poisson_pair(&mut rng.borrow_mut(), 320.0, 320.0),
            5.0,
            512,
        )
        .expect("8x concentration gap must separate");
        assert!(n <= 8, "took {n} samples");
    }

    #[test]
    fn adjacent_credentials_take_more_samples_than_distant() {
        let rng = std::cell::RefCell::new(AuditRng::new(7));
        let adjacent = samples_to_distinguish(
            || poisson_pair(&mut rng.borrow_mut(), 120.0, 240.0),
            || poisson_pair(&mut rng.borrow_mut(), 128.0, 240.0),
            5.0,
            4096,
        )
        .expect("adjacent levels separate eventually");
        let distant = samples_to_distinguish(
            || poisson_pair(&mut rng.borrow_mut(), 40.0, 40.0),
            || poisson_pair(&mut rng.borrow_mut(), 320.0, 320.0),
            5.0,
            4096,
        )
        .expect("distant levels separate");
        assert!(
            adjacent > distant,
            "adjacent {adjacent} vs distant {distant}"
        );
    }

    #[test]
    fn zero_variance_separator_is_infinite() {
        let mut d = SequentialDistinguisher::new(1);
        for _ in 0..3 {
            d.observe_a(&[1.0]);
            d.observe_b(&[2.0]);
        }
        assert_eq!(d.z_score(), f64::INFINITY);
    }

    #[test]
    fn z_is_nan_until_two_per_class() {
        let mut d = SequentialDistinguisher::new(2);
        d.observe_a(&[1.0, 2.0]);
        d.observe_b(&[1.0, 2.0]);
        assert!(d.z_score().is_nan());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut d = SequentialDistinguisher::new(2);
        d.observe_a(&[1.0]);
    }
}
