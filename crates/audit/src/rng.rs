//! The one seeded generator every audit battery draws from.
//!
//! Reproducibility is the audit's first obligation: a scorecard that
//! cannot be regenerated from its `--seed` is an anecdote, not a
//! measurement. This module is the single source of pseudo-randomness for
//! every battery in the crate *and* for the workspace's deterministic test
//! harnesses (kill-point sampling, shuffled arrival orders), which used to
//! carry their own ad-hoc xorshift copies.
//!
//! The algorithm is xorshift64* seeded through a SplitMix64 finalizer —
//! deliberately the same generator `medsen-fountain` pins as its wire
//! contract in `crates/fountain/src/prng.rs`. The two crates cannot share
//! code (both must stay dependency-free for the vendor-hygiene CI check,
//! and the fountain copy is a frozen codec contract), so
//! `tests/security_audit.rs` pins their streams bit-equal instead: any
//! drift between the copies fails CI.

/// SplitMix64 finalizer: a bijective avalanche over one 64-bit word.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// xorshift64* with SplitMix64 seeding: 3 shifts, 1 multiply, full
/// 2^64−1 period, uncorrelated streams from adjacent seeds.
#[derive(Debug, Clone)]
pub struct AuditRng {
    state: u64,
}

impl AuditRng {
    /// A generator fully determined by `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        let mut state = mix64(seed);
        if state == 0 {
            // xorshift fixes the all-zero state; mix64(x) == 0 only for
            // one input, which this constant displaces.
            state = 0x9E37_79B9_7F4A_7C15;
        }
        Self { state }
    }

    /// A named sub-stream of `seed`: batteries derive one generator per
    /// section (`derive(seed, b"entropy")`, `derive(seed, b"timing")`,
    /// ...) so adding draws to one section never perturbs another.
    pub fn derive(seed: u64, label: &[u8]) -> Self {
        let mut tag = 0xF0E1_D2C3_B4A5_9687u64;
        for &byte in label {
            tag = mix64(tag ^ u64::from(byte));
        }
        Self::new(mix64(seed) ^ tag)
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero. Plain modulo: for the
    /// ranges the batteries draw (well under 2^32) the bias is below
    /// 2^-32, far under every scorecard tolerance.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// A biased coin: true with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A Poisson draw with mean `lambda` — the arrival noise on bead
    /// counts. Knuth's product method below λ = 30 (exact), with a
    /// normal approximation above (the batteries' λ of dozens-to-hundreds
    /// is insensitive to the tail shape).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "negative poisson mean");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut product = self.next_f64();
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= self.next_f64();
            }
            count
        } else {
            // Box–Muller normal, clamped at zero.
            let u1 = self.next_f64().max(f64::MIN_POSITIVE);
            let u2 = self.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
            (lambda + lambda.sqrt() * z).round().max(0.0) as u64
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = AuditRng::new(42);
        let mut b = AuditRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_seeds_do_not_correlate() {
        let mut a = AuditRng::new(1);
        let mut b = AuditRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_differ_per_label_but_not_per_call() {
        let mut e1 = AuditRng::derive(7, b"entropy");
        let mut e2 = AuditRng::derive(7, b"entropy");
        let mut t = AuditRng::derive(7, b"timing");
        assert_eq!(e1.next_u64(), e2.next_u64());
        assert_ne!(e1.next_u64(), t.next_u64());
    }

    #[test]
    fn f64_and_below_stay_in_range() {
        let mut rng = AuditRng::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = AuditRng::new(11);
        for &lambda in &[2.0f64, 12.0, 80.0] {
            let n = 4000u64;
            let total: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 4.0 * (lambda / n as f64).sqrt() + 0.5,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_is_zero() {
        assert_eq!(AuditRng::new(1).poisson(0.0), 0);
    }

    #[test]
    fn shuffle_permutes_without_losing_elements() {
        let mut rng = AuditRng::new(13);
        let mut items: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut items);
        assert_ne!(
            items,
            (0..64).collect::<Vec<u32>>(),
            "shuffle moved nothing"
        );
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = AuditRng::new(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
