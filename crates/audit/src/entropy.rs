//! Empirical entropy estimators for encrypted peak streams.
//!
//! Eq. (2) counts *key material*: `N_elec` selection bits, `N_elec/2 ×
//! R_gain` gain bits, `R_flow` flow bits per cell. What an eavesdropper
//! actually faces is the *observable* projection of that key — peak
//! multiplicities, quantized amplitudes, quantized widths — whose entropy
//! is strictly smaller (selection bits are biased coins, only *selected*
//! electrodes contribute a gain, and the observable collapses electrode
//! identity). These estimators turn sampled observables into measured
//! bits-per-cell so the scorecard can report the gap as a number instead
//! of an analogy.
//!
//! Estimation is plug-in (maximum-likelihood) Shannon entropy over symbol
//! histograms. The plug-in estimator is biased *low* by roughly
//! `(distinct − 1) / (2N ln 2)` bits (Miller–Madow), which is the
//! conservative direction for a security claim: we never over-credit the
//! cipher. [`EntropyEstimate`] carries the correction term so callers can
//! see how far from the asymptote they are sampling.

use std::collections::BTreeMap;

/// A histogram over arbitrary `u64` symbols.
#[derive(Debug, Clone, Default)]
pub struct SymbolHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl SymbolHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `symbol`.
    pub fn record(&mut self, symbol: u64) {
        *self.counts.entry(symbol).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct symbols seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The plug-in entropy estimate over this histogram.
    pub fn estimate(&self) -> EntropyEstimate {
        let shannon = shannon_bits(self.counts.values().copied(), self.total);
        let min_entropy = self
            .counts
            .values()
            .copied()
            .max()
            .filter(|_| self.total > 0)
            .map_or(0.0, |max| -((max as f64 / self.total as f64).log2()));
        EntropyEstimate {
            shannon_bits: shannon,
            min_entropy_bits: min_entropy,
            samples: self.total,
            distinct: self.counts.len(),
        }
    }
}

/// Plug-in Shannon entropy, in bits per symbol, of a count distribution.
pub fn shannon_bits(counts: impl IntoIterator<Item = u64>, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .into_iter()
        .filter(|&c| c > 0)
        .map(|c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// A measured entropy figure with its sampling context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyEstimate {
    /// Plug-in Shannon entropy, bits per symbol.
    pub shannon_bits: f64,
    /// Min-entropy (−log2 of the modal probability), bits per symbol —
    /// the figure that matters against an optimal guessing adversary.
    pub min_entropy_bits: f64,
    /// Observations the estimate rests on.
    pub samples: u64,
    /// Distinct symbols seen.
    pub distinct: usize,
}

impl EntropyEstimate {
    /// The Miller–Madow bias correction term, in bits: the plug-in
    /// estimate undercounts by about this much at this sample size.
    pub fn miller_madow_bits(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        (self.distinct.saturating_sub(1)) as f64
            / (2.0 * self.samples as f64 * core::f64::consts::LN_2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::AuditRng;

    #[test]
    fn uniform_symbols_approach_log2_n() {
        let mut hist = SymbolHistogram::new();
        let mut rng = AuditRng::new(1);
        for _ in 0..200_000 {
            hist.record(rng.below(16));
        }
        let est = hist.estimate();
        assert!(
            (est.shannon_bits - 4.0).abs() < 0.01,
            "H = {}",
            est.shannon_bits
        );
        assert!((est.min_entropy_bits - 4.0).abs() < 0.1);
        assert_eq!(est.distinct, 16);
    }

    #[test]
    fn constant_symbol_has_zero_entropy() {
        let mut hist = SymbolHistogram::new();
        for _ in 0..1000 {
            hist.record(7);
        }
        let est = hist.estimate();
        assert_eq!(est.shannon_bits, 0.0);
        assert_eq!(est.min_entropy_bits, -0.0f64.max(0.0));
    }

    #[test]
    fn empty_histogram_is_zero_not_nan() {
        let est = SymbolHistogram::new().estimate();
        assert_eq!(est.shannon_bits, 0.0);
        assert_eq!(est.min_entropy_bits, 0.0);
        assert_eq!(est.miller_madow_bits(), 0.0);
    }

    #[test]
    fn biased_coin_entropy_matches_closed_form() {
        // H(0.25) = 0.25·log2(4) + 0.75·log2(4/3) ≈ 0.8113.
        let h = shannon_bits([250u64, 750], 1000);
        assert!((h - 0.8113).abs() < 1e-3, "H = {h}");
    }

    #[test]
    fn min_entropy_never_exceeds_shannon() {
        let mut rng = AuditRng::new(3);
        let mut hist = SymbolHistogram::new();
        for _ in 0..10_000 {
            // A skewed distribution.
            let draw = if rng.chance(0.5) { 0 } else { rng.below(64) };
            hist.record(draw);
        }
        let est = hist.estimate();
        assert!(est.min_entropy_bits <= est.shannon_bits + 1e-12);
        assert!(est.min_entropy_bits > 0.0);
    }

    #[test]
    fn miller_madow_shrinks_with_samples() {
        let mut small = SymbolHistogram::new();
        let mut large = SymbolHistogram::new();
        let mut rng = AuditRng::new(4);
        for i in 0..50_000u64 {
            let s = rng.below(256);
            if i < 1000 {
                small.record(s);
            }
            large.record(s);
        }
        assert!(small.estimate().miller_madow_bits() > large.estimate().miller_madow_bits());
    }
}
