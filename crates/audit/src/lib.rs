//! # medsen-audit — the system audits itself
//!
//! The paper's central security claim — that the bead-mixture "cyto-coded
//! password" behaves like a one-time pad with key length
//! `L = N_cells × (N_elec + N_elec/2 × R_gain + R_flow)` (Eq. 2) — is
//! *asserted*, not measured. This crate supplies the measurement
//! instruments, built in the paranoid posture of treating the system's own
//! author as the adversary: every estimator is implemented from scratch,
//! std-only, with zero dependencies on the crates it audits, so a bug in
//! the system under test cannot silently vouch for itself.
//!
//! Four instruments, one scorecard:
//!
//! * [`entropy`] — bit-level empirical entropy estimators for encrypted
//!   peak streams, compared against the Eq. 2 key-length accounting;
//! * [`distinguish`] — a sequential distinguishing harness measuring how
//!   many observed samples a curious cloud needs to tell two bead-mixture
//!   credentials apart above chance;
//! * [`timing`] — a paired-class timing-leak harness with outlier-robust
//!   statistics, plus the branchless byte compare the auth path should use;
//! * [`collision`] — keyspace collision sweeps (observed collisions vs the
//!   birthday bound, shard-route balance).
//!
//! [`rng`] is the one shared seeded generator every battery draws from, so
//! a whole audit run is reproducible from a single `--seed`.
//!
//! The glue that points these instruments at real keys, signatures, and
//! shards lives in the facade crate (`medsen::selfaudit`) and the `audit`
//! CLI subcommand; the assertions live in `tests/security_audit.rs`.

pub mod collision;
pub mod distinguish;
pub mod entropy;
pub mod rng;
pub mod scorecard;
pub mod timing;

pub use collision::{collision_sweep, expected_birthday_collisions, CollisionReport};
pub use distinguish::{samples_to_distinguish, SequentialDistinguisher};
pub use entropy::{shannon_bits, EntropyEstimate, SymbolHistogram};
pub use rng::{mix64, AuditRng};
pub use scorecard::{
    CollisionSection, DistinguisherSection, DistinguisherTrial, EntropyRow, EntropySection,
    Scorecard, TimingSection,
};
pub use timing::{ct_eq, paired_verdict, TimingVerdict};
