//! # medsen-store — durable per-shard write-ahead logging
//!
//! The cloud tier's shards ([`medsen-cloud`]'s `ShardedAuth` +
//! `RecordStore`) are fast because they are memory-resident; this crate
//! makes them durable without giving that up. Each shard owns an
//! append-only log of CRC32-framed entries plus an optional compaction
//! snapshot, and a [`FlushPolicy`] trades latency for fsync amortization
//! (group commit).
//!
//! Like `medsen-runtime`, this crate is **std-only**: durability is
//! exactly the code that should not ride on vendored dependency stubs.
//! Entries are opaque `(kind: u8, payload: bytes)` pairs — the typed
//! enroll/store/tamper codec lives with the types it serializes, in
//! `medsen-cloud`'s `persist` module.
//!
//! ## Recovery invariants
//!
//! - **Write-ahead**: callers append before mutating in-memory state, so
//!   the log is always a superset of what any reader observed.
//! - **Torn tails truncate**: a crash mid-append leaves a final frame
//!   that fails its length or CRC check; open truncates it and reports
//!   the discarded bytes. Everything before it replays intact.
//! - **Layout stamps fail closed**: log and snapshot headers record the
//!   shard index and shard count they were written under. Opening under
//!   a different count is a [`WalError::LayoutMismatch`], never a silent
//!   re-scatter of identities across the wrong shards.
//! - **Compaction is crash-safe**: snapshots land via write-temp →
//!   fsync → rename before the log is reset, and replaying a stale
//!   snapshot plus an un-reset log is idempotent by construction of the
//!   entry types.

mod frame;
mod set;
mod wal;

pub use frame::{
    crc32, decode_log, encode_frame, DecodedLog, Frame, Torn, FRAME_OVERHEAD, MAX_FRAME_BYTES,
};
pub use set::{AppendedFrame, Wal, WalStats};
pub use wal::{ShardRecovery, WalError};

use std::str::FromStr;
use std::time::Duration;

/// When a shard's appended frames are made durable with `fsync`.
///
/// Appends always reach the file immediately (so a *graceful* shutdown
/// loses nothing under any policy); the policy only governs how much
/// recent history a *crash* may lose in exchange for batching fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Fsync on every append. Zero loss window, lowest throughput.
    EveryWrite,
    /// Fsync once `n` appends have accumulated on a shard (group
    /// commit). Crash loss window: up to `n - 1` entries per shard.
    EveryN(u64),
    /// Fsync all shards on a fixed cadence from a background thread
    /// parked on the runtime timer wheel. Crash loss window: one
    /// interval of writes.
    EveryInterval(Duration),
}

impl Default for FlushPolicy {
    /// Defaults to the safest policy; opting into a loss window is
    /// explicit.
    fn default() -> Self {
        FlushPolicy::EveryWrite
    }
}

impl std::fmt::Display for FlushPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlushPolicy::EveryWrite => write!(f, "write"),
            FlushPolicy::EveryN(n) => write!(f, "every:{n}"),
            FlushPolicy::EveryInterval(d) => write!(f, "interval:{}", d.as_millis()),
        }
    }
}

/// Error parsing a [`FlushPolicy`] from its CLI spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl std::fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid flush policy '{}': expected 'write', 'every:N', or 'interval:MS'",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for FlushPolicy {
    type Err = ParsePolicyError;

    /// Parses the CLI spelling: `write`, `every:N` (N ≥ 1 appends), or
    /// `interval:MS` (MS ≥ 1 milliseconds).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePolicyError(s.to_string());
        match s {
            "write" => Ok(FlushPolicy::EveryWrite),
            _ => {
                if let Some(n) = s.strip_prefix("every:") {
                    let n: u64 = n.parse().map_err(|_| err())?;
                    if n == 0 {
                        return Err(err());
                    }
                    Ok(FlushPolicy::EveryN(n))
                } else if let Some(ms) = s.strip_prefix("interval:") {
                    let ms: u64 = ms.parse().map_err(|_| err())?;
                    if ms == 0 {
                        return Err(err());
                    }
                    Ok(FlushPolicy::EveryInterval(Duration::from_millis(ms)))
                } else {
                    Err(err())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_policy_parses_and_displays_round_trip() {
        for (text, policy) in [
            ("write", FlushPolicy::EveryWrite),
            ("every:8", FlushPolicy::EveryN(8)),
            (
                "interval:250",
                FlushPolicy::EveryInterval(Duration::from_millis(250)),
            ),
        ] {
            assert_eq!(text.parse::<FlushPolicy>().expect(text), policy);
            assert_eq!(policy.to_string(), text);
        }
    }

    #[test]
    fn flush_policy_rejects_nonsense() {
        for bad in [
            "",
            "WRITE",
            "every:",
            "every:0",
            "every:x",
            "interval:0",
            "interval:-5",
            "sometimes",
        ] {
            assert!(bad.parse::<FlushPolicy>().is_err(), "{bad:?} should fail");
        }
    }
}
