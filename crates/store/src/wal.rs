//! One shard's durable state: an append-only log file plus an optional
//! snapshot file, both layout-stamped.
//!
//! ## Log file (`wal-NNN.log`)
//!
//! ```text
//! ┌──────────────────┬──────────────┬──────────────┬────────────┬────────────┐
//! │ magic "MSWAL01\n"│ shard: u32LE │ count: u32LE │ crc: u32LE │ frames ... │
//! └──────────────────┴──────────────┴──────────────┴────────────┴────────────┘
//! ```
//!
//! The header CRC covers the shard/count words. A log whose `count` does
//! not match the opening layout is refused outright ([`WalError::
//! LayoutMismatch`]): shard routing is a pure function of the shard
//! count, so replaying shard 3's log under a different layout would
//! scatter identities across the wrong locks and mint [`RecordId`]s that
//! fail their own layout check.
//!
//! ## Snapshot file (`snap-NNN.bin`)
//!
//! ```text
//! ┌──────────────────┬───────┬───────┬─────────────┬────────────┬─────────┐
//! │ magic "MSSNAP1\n"│ shard │ count │ len: u64LE  │ crc: u32LE │ payload │
//! └──────────────────┴───────┴───────┴─────────────┴────────────┴─────────┘
//! ```
//!
//! Snapshots are written to a temp file, fsynced, then renamed over the
//! final name, so a crash mid-snapshot leaves the previous snapshot (or
//! none) intact. The log is only truncated *after* the rename lands;
//! a crash in the gap replays snapshot + full log, which is harmless
//! because replay is idempotent (records restore by explicit id,
//! enrollments are last-wins).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::frame::{self, DecodedLog, Frame};

const LOG_MAGIC: &[u8; 8] = b"MSWAL01\n";
const SNAP_MAGIC: &[u8; 8] = b"MSSNAP1\n";
/// Magic + shard + count + crc.
const LOG_HEADER_LEN: u64 = 20;
/// Magic + shard + count + payload len + crc.
const SNAP_HEADER_LEN: usize = 28;

/// Errors surfaced while opening or writing durable shard state.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A log or snapshot file exists but its header is unreadable.
    CorruptHeader { path: PathBuf, detail: String },
    /// A log or snapshot was written under a different shard layout and
    /// must not be replayed into this one.
    LayoutMismatch {
        path: PathBuf,
        expected: u32,
        found: u32,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(err) => write!(f, "wal io error: {err}"),
            WalError::CorruptHeader { path, detail } => {
                write!(f, "corrupt header in {}: {detail}", path.display())
            }
            WalError::LayoutMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} was written under a {found}-shard layout; refusing to replay it into \
                 a {expected}-shard service",
                path.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(err: io::Error) -> Self {
        WalError::Io(err)
    }
}

/// What one shard's files yielded at open time, in replay order:
/// apply `snapshot` first, then every frame.
#[derive(Debug)]
pub struct ShardRecovery {
    /// Shard index the files were stamped with.
    pub shard: u32,
    /// The latest compaction snapshot, if one was ever written.
    pub snapshot: Option<Vec<u8>>,
    /// Intact log frames appended after that snapshot.
    pub frames: Vec<Frame>,
    /// Bytes of torn tail discarded from the log file.
    pub truncated_bytes: u64,
}

/// Outcome of a single append, fed into the stats counters by the set.
pub(crate) struct AppendOutcome {
    pub bytes: u64,
    pub synced: bool,
    /// Wall time the `sync_data` took when `synced`, else zero — lets the
    /// caller attribute the group-commit fsync separately from the write.
    pub sync_ns: u64,
    /// Offset past the header the frame ends at in this log generation
    /// (the frame spans `end_offset - bytes .. end_offset`).
    pub end_offset: u64,
}

struct ShardFile {
    file: File,
    /// Appends not yet covered by an fsync.
    pending: u64,
    /// Bytes appended past the header in the current log generation.
    appended: u64,
    /// Prefix of `appended` covered by an fsync (the durable offset).
    durable: u64,
}

/// One shard's log file handle. All file access funnels through the
/// inner mutex, so appends, flushes (including the background interval
/// flusher), and snapshot installs never interleave mid-operation.
///
/// The handle also tracks two byte offsets past the header into the
/// *current log generation*: how far appends have reached and how much
/// of that prefix an fsync has covered. Replication keys its shipped /
/// acked cursors off these offsets; a snapshot install starts a new
/// generation and resets both to zero.
pub(crate) struct ShardWal {
    shard: u32,
    shard_count: u32,
    log_path: PathBuf,
    snap_path: PathBuf,
    inner: Mutex<ShardFile>,
}

impl ShardWal {
    /// Opens (creating if absent) this shard's log, replays its snapshot
    /// and intact frames, and truncates any torn tail in place.
    pub(crate) fn open(
        dir: &Path,
        shard: u32,
        shard_count: u32,
    ) -> Result<(Self, ShardRecovery), WalError> {
        let log_path = dir.join(format!("wal-{shard:03}.log"));
        let snap_path = dir.join(format!("snap-{shard:03}.bin"));

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        let len = file.metadata()?.len();

        let mut truncated = 0u64;
        let mut recovered = 0u64;
        let frames = if len < LOG_HEADER_LEN {
            // Brand new (or hopelessly short) file: stamp a fresh header.
            // A file shorter than the header can only be a crash during
            // the very first header write — nothing decodable is lost.
            truncated = len;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&log_header(shard, shard_count))?;
            file.sync_data()?;
            Vec::new()
        } else {
            let mut bytes = Vec::with_capacity(len as usize);
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut bytes)?;
            check_log_header(&log_path, &bytes, shard, shard_count)?;
            let DecodedLog {
                frames, clean_len, ..
            } = frame::decode_log(&bytes[LOG_HEADER_LEN as usize..]);
            let clean_end = LOG_HEADER_LEN + clean_len as u64;
            if clean_end < len {
                truncated = len - clean_end;
                file.set_len(clean_end)?;
                file.sync_data()?;
            }
            file.seek(SeekFrom::Start(clean_end))?;
            recovered = clean_end - LOG_HEADER_LEN;
            frames
        };

        let snapshot = read_snapshot(&snap_path, shard, shard_count)?;

        let recovery = ShardRecovery {
            shard,
            snapshot,
            frames,
            truncated_bytes: truncated,
        };
        Ok((
            Self {
                shard,
                shard_count,
                log_path,
                snap_path,
                inner: Mutex::new(ShardFile {
                    file,
                    pending: 0,
                    // Whatever survived on disk is durable by definition.
                    appended: recovered,
                    durable: recovered,
                }),
            },
            recovery,
        ))
    }

    /// Appends one frame, fsyncing if this write brings the unsynced
    /// count up to `sync_threshold` (`None` leaves syncing to the
    /// interval flusher).
    pub(crate) fn append(
        &self,
        kind: u8,
        payload: &[u8],
        sync_threshold: Option<u64>,
    ) -> io::Result<AppendOutcome> {
        let mut buf = Vec::with_capacity(frame::FRAME_OVERHEAD + payload.len());
        frame::encode_frame(kind, payload, &mut buf);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.file.write_all(&buf)?;
        inner.pending += 1;
        inner.appended += buf.len() as u64;
        let (synced, sync_ns) = match sync_threshold {
            Some(n) if inner.pending >= n.max(1) => {
                let sync_started = std::time::Instant::now();
                inner.file.sync_data()?;
                inner.pending = 0;
                inner.durable = inner.appended;
                let elapsed = sync_started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                (true, elapsed)
            }
            _ => (false, 0),
        };
        Ok(AppendOutcome {
            bytes: buf.len() as u64,
            synced,
            sync_ns,
            end_offset: inner.appended,
        })
    }

    /// Fsyncs any unsynced appends. Returns whether an fsync was issued.
    pub(crate) fn flush(&self) -> io::Result<bool> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.pending == 0 {
            return Ok(false);
        }
        inner.file.sync_data()?;
        inner.pending = 0;
        inner.durable = inner.appended;
        Ok(true)
    }

    /// Atomically replaces this shard's snapshot with `payload` and
    /// resets the log to an empty (header-only) file.
    ///
    /// The caller must guarantee no concurrent appends to this shard —
    /// in the cloud tier the compactor holds the shard's auth and record
    /// write locks across this call.
    pub(crate) fn install_snapshot(&self, payload: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());

        let tmp_path = self.snap_path.with_extension("tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&snap_header(self.shard, self.shard_count, payload))?;
        tmp.write_all(payload)?;
        tmp.sync_data()?;
        drop(tmp);
        fs::rename(&tmp_path, &self.snap_path)?;

        // Only now that the snapshot is durable under its final name may
        // the log be emptied. A crash before this point replays the old
        // snapshot plus the full log; replay idempotence makes that safe.
        inner.file.set_len(LOG_HEADER_LEN)?;
        inner.file.seek(SeekFrom::Start(LOG_HEADER_LEN))?;
        inner.file.sync_data()?;
        inner.pending = 0;
        inner.appended = 0;
        inner.durable = 0;
        Ok(())
    }

    /// `(appended, durable)` byte offsets past the header in the current
    /// log generation. `durable ≤ appended` always; both reset to zero
    /// when a snapshot install starts a new generation.
    pub(crate) fn offsets(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.appended, inner.durable)
    }

    /// Current log file length in bytes (header included). Test hook for
    /// the fault-injection battery's surgical corruption.
    pub(crate) fn log_len(&self) -> io::Result<u64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(inner.file.metadata()?.len())
    }

    pub(crate) fn log_path(&self) -> &Path {
        &self.log_path
    }
}

fn log_header(shard: u32, shard_count: u32) -> [u8; LOG_HEADER_LEN as usize] {
    let mut header = [0u8; LOG_HEADER_LEN as usize];
    header[0..8].copy_from_slice(LOG_MAGIC);
    header[8..12].copy_from_slice(&shard.to_le_bytes());
    header[12..16].copy_from_slice(&shard_count.to_le_bytes());
    let crc = frame::crc32(&header[8..16]);
    header[16..20].copy_from_slice(&crc.to_le_bytes());
    header
}

fn check_log_header(
    path: &Path,
    bytes: &[u8],
    shard: u32,
    shard_count: u32,
) -> Result<(), WalError> {
    debug_assert!(bytes.len() >= LOG_HEADER_LEN as usize);
    if &bytes[0..8] != LOG_MAGIC {
        return Err(WalError::CorruptHeader {
            path: path.to_path_buf(),
            detail: "bad log magic".into(),
        });
    }
    let file_shard = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let file_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if frame::crc32(&bytes[8..16]) != crc {
        return Err(WalError::CorruptHeader {
            path: path.to_path_buf(),
            detail: "log header checksum mismatch".into(),
        });
    }
    if file_count != shard_count {
        return Err(WalError::LayoutMismatch {
            path: path.to_path_buf(),
            expected: shard_count,
            found: file_count,
        });
    }
    if file_shard != shard {
        return Err(WalError::CorruptHeader {
            path: path.to_path_buf(),
            detail: format!("log stamped for shard {file_shard}, expected {shard}"),
        });
    }
    Ok(())
}

fn snap_header(shard: u32, shard_count: u32, payload: &[u8]) -> [u8; SNAP_HEADER_LEN] {
    let mut header = [0u8; SNAP_HEADER_LEN];
    header[0..8].copy_from_slice(SNAP_MAGIC);
    header[8..12].copy_from_slice(&shard.to_le_bytes());
    header[12..16].copy_from_slice(&shard_count.to_le_bytes());
    header[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = frame::crc32(payload);
    header[24..28].copy_from_slice(&crc.to_le_bytes());
    header
}

/// Reads and validates a snapshot file. A snapshot that fails any check
/// is an error, not a silent skip: unlike a torn log tail (an expected
/// crash artifact), the snapshot was renamed into place atomically, so
/// damage to it means the base state is gone and replaying the post-
/// snapshot log alone would silently resurrect a partial history.
fn read_snapshot(path: &Path, shard: u32, shard_count: u32) -> Result<Option<Vec<u8>>, WalError> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err.into()),
    };
    if bytes.len() < SNAP_HEADER_LEN || &bytes[0..8] != SNAP_MAGIC {
        return Err(WalError::CorruptHeader {
            path: path.to_path_buf(),
            detail: "bad snapshot magic".into(),
        });
    }
    let file_shard = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let file_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    if file_count != shard_count {
        return Err(WalError::LayoutMismatch {
            path: path.to_path_buf(),
            expected: shard_count,
            found: file_count,
        });
    }
    if file_shard != shard {
        return Err(WalError::CorruptHeader {
            path: path.to_path_buf(),
            detail: format!("snapshot stamped for shard {file_shard}, expected {shard}"),
        });
    }
    if bytes.len() != SNAP_HEADER_LEN + payload_len {
        return Err(WalError::CorruptHeader {
            path: path.to_path_buf(),
            detail: format!(
                "snapshot length {} does not match header ({})",
                bytes.len(),
                SNAP_HEADER_LEN + payload_len
            ),
        });
    }
    let payload = bytes[SNAP_HEADER_LEN..].to_vec();
    if frame::crc32(&payload) != crc {
        return Err(WalError::CorruptHeader {
            path: path.to_path_buf(),
            detail: "snapshot checksum mismatch".into(),
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "medsen-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn append_and_reopen_replays_in_order() {
        let dir = temp_dir("roundtrip");
        {
            let (wal, rec) = ShardWal::open(&dir, 0, 4).expect("open");
            assert!(rec.frames.is_empty());
            assert!(rec.snapshot.is_none());
            wal.append(1, b"first", Some(1)).expect("append");
            wal.append(2, b"second", Some(1)).expect("append");
        }
        let (_, rec) = ShardWal::open(&dir, 0, 4).expect("reopen");
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(rec.frames[0].payload, b"first");
        assert_eq!(rec.frames[1].kind, 2);
        assert_eq!(rec.truncated_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let log_path;
        {
            let (wal, _) = ShardWal::open(&dir, 0, 1).expect("open");
            wal.append(1, b"kept", Some(1)).expect("append");
            log_path = wal.log_path().to_path_buf();
        }
        let clean_len = fs::metadata(&log_path).expect("meta").len();
        let mut file = OpenOptions::new()
            .append(true)
            .open(&log_path)
            .expect("open for garbage");
        file.write_all(&[0xAB; 13]).expect("write garbage");
        drop(file);

        let (_, rec) = ShardWal::open(&dir, 0, 1).expect("reopen");
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.truncated_bytes, 13);
        assert_eq!(fs::metadata(&log_path).expect("meta").len(), clean_len);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn layout_mismatch_is_refused() {
        let dir = temp_dir("layout");
        {
            let (wal, _) = ShardWal::open(&dir, 0, 4).expect("open");
            wal.append(1, b"entry", Some(1)).expect("append");
        }
        match ShardWal::open(&dir, 0, 2) {
            Err(WalError::LayoutMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 2);
                assert_eq!(found, 4);
            }
            Err(other) => panic!("expected layout mismatch, got {other:?}"),
            Ok(_) => panic!("expected layout mismatch, got success"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_install_compacts_the_log() {
        let dir = temp_dir("snap");
        {
            let (wal, _) = ShardWal::open(&dir, 3, 8).expect("open");
            wal.append(1, b"pre-snapshot", Some(1)).expect("append");
            wal.install_snapshot(b"snapshot-state").expect("snapshot");
            wal.append(2, b"post-snapshot", Some(1)).expect("append");
        }
        let (_, rec) = ShardWal::open(&dir, 3, 8).expect("reopen");
        assert_eq!(rec.snapshot.as_deref(), Some(&b"snapshot-state"[..]));
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].payload, b"post-snapshot");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn offsets_track_appends_syncs_and_snapshot_resets() {
        let dir = temp_dir("offsets");
        let all;
        {
            let (wal, _) = ShardWal::open(&dir, 0, 1).expect("open");
            assert_eq!(wal.offsets(), (0, 0));
            let a = wal.append(1, b"abc", Some(2)).expect("append");
            assert!(!a.synced);
            assert_eq!(
                wal.offsets(),
                (a.bytes, 0),
                "unsynced appends are not durable"
            );
            let b = wal.append(1, b"defg", Some(2)).expect("append");
            assert!(b.synced);
            assert_eq!(wal.offsets(), (a.bytes + b.bytes, a.bytes + b.bytes));
            let c = wal.append(1, b"hi", None).expect("append");
            assert_eq!(wal.offsets().1, a.bytes + b.bytes);
            wal.flush().expect("flush");
            all = a.bytes + b.bytes + c.bytes;
            assert_eq!(
                wal.offsets(),
                (all, all),
                "flush promotes the durable offset"
            );
        }
        let (wal, _) = ShardWal::open(&dir, 0, 1).expect("reopen");
        assert_eq!(
            wal.offsets(),
            (all, all),
            "what survived on disk is durable"
        );
        wal.install_snapshot(b"snap").expect("snapshot");
        assert_eq!(wal.offsets(), (0, 0), "snapshot starts a new generation");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pending_appends_only_sync_at_threshold() {
        let dir = temp_dir("threshold");
        let (wal, _) = ShardWal::open(&dir, 0, 1).expect("open");
        let first = wal.append(1, b"a", Some(3)).expect("append");
        assert!(!first.synced);
        let second = wal.append(1, b"b", Some(3)).expect("append");
        assert!(!second.synced);
        let third = wal.append(1, b"c", Some(3)).expect("append");
        assert!(third.synced);
        assert!(!wal.flush().expect("flush"), "nothing pending after sync");
        let fourth = wal.append(1, b"d", None).expect("append");
        assert!(!fourth.synced);
        assert!(wal.flush().expect("flush"), "interval-style flush syncs");
        let _ = fs::remove_dir_all(&dir);
    }
}
