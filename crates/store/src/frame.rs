//! The on-disk WAL frame codec.
//!
//! A log is a flat byte stream of length-prefixed, CRC32-guarded frames:
//!
//! ```text
//! ┌────────────┬────────────┬──────────┬─────────────────────┐
//! │ len: u32LE │ crc: u32LE │ kind: u8 │ payload: len-1 bytes│
//! └────────────┴────────────┴──────────┴─────────────────────┘
//! ```
//!
//! `len` counts the body (`kind` + payload, so `len >= 1`) and `crc` is
//! the CRC-32 (IEEE, reflected) of that body. The codec is deliberately
//! self-synchronization-free: a frame that fails its length or checksum
//! invariant ends the decodable region, and everything from its first
//! byte onward is a *torn tail* the recovery path truncates. That is the
//! right failure model for an append-only log — the only writer ever
//! in-flight is the last one, so a bad frame can only be the final
//! (possibly partially written or bit-flipped) append.

/// Bytes of framing overhead per entry (`len` + `crc` + `kind`).
pub const FRAME_OVERHEAD: usize = 9;

/// Hard cap on one frame's body, so a corrupted length prefix cannot make
/// the decoder treat the rest of a multi-gigabyte file as one frame.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// One decoded log entry: a caller-defined kind tag plus opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Caller-defined entry discriminant (e.g. enroll / store / tamper).
    pub kind: u8,
    /// Opaque entry bytes.
    pub payload: Vec<u8>,
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
///
/// Re-exported from `medsen-wire`, the workspace's single CRC-32: the
/// checksum is part of the persistence contract and must never drift
/// with a dependency — and must stay bit-equal to the one the wire
/// frames use, since replication ships WAL frames over that codec.
pub use medsen_wire::crc32;

/// Appends one encoded frame to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_BYTES`] minus the kind byte —
/// such a frame could never be decoded again.
pub fn encode_frame(kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    let body_len = payload.len() + 1;
    assert!(
        body_len <= MAX_FRAME_BYTES,
        "frame body of {body_len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
    );
    out.reserve(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let crc_at = out.len();
    out.extend_from_slice(&[0; 4]);
    out.push(kind);
    out.extend_from_slice(payload);
    let crc = crc32(&out[crc_at + 4..]);
    out[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
}

/// Why decoding stopped before the end of the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Torn {
    /// Fewer than [`FRAME_OVERHEAD`] header bytes remained.
    TruncatedHeader,
    /// The length prefix was zero or above [`MAX_FRAME_BYTES`].
    BadLength,
    /// The length prefix pointed past the end of the input.
    TruncatedBody,
    /// The body's CRC-32 did not match the header (bit rot or a torn
    /// write that happened to leave the length intact).
    BadChecksum,
}

impl std::fmt::Display for Torn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Torn::TruncatedHeader => write!(f, "truncated frame header"),
            Torn::BadLength => write!(f, "implausible frame length"),
            Torn::TruncatedBody => write!(f, "truncated frame body"),
            Torn::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

/// The result of decoding a log byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedLog {
    /// Every intact frame, in append order.
    pub frames: Vec<Frame>,
    /// Byte length of the intact prefix. Recovery truncates the file to
    /// this offset (plus any header the caller wrote before the frames).
    pub clean_len: usize,
    /// Why decoding stopped early, if it did. `None` means the whole
    /// input decoded cleanly.
    pub torn: Option<Torn>,
}

/// Decodes a frame stream, stopping (never panicking) at the first frame
/// that is incomplete or fails its checksum.
pub fn decode_log(bytes: &[u8]) -> DecodedLog {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    let mut torn = None;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_OVERHEAD {
            torn = Some(Torn::TruncatedHeader);
            break;
        }
        let body_len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        if body_len == 0 || body_len > MAX_FRAME_BYTES {
            torn = Some(Torn::BadLength);
            break;
        }
        if rest.len() < 8 + body_len {
            torn = Some(Torn::TruncatedBody);
            break;
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let body = &rest[8..8 + body_len];
        if crc32(body) != crc {
            torn = Some(Torn::BadChecksum);
            break;
        }
        frames.push(Frame {
            kind: body[0],
            payload: body[1..].to_vec(),
        });
        offset += 8 + body_len;
    }
    DecodedLog {
        frames,
        clean_len: offset,
        torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_round_trip_in_order() {
        let mut log = Vec::new();
        encode_frame(1, b"alpha", &mut log);
        encode_frame(2, b"", &mut log);
        encode_frame(3, &[0u8; 300], &mut log);
        let decoded = decode_log(&log);
        assert_eq!(decoded.torn, None);
        assert_eq!(decoded.clean_len, log.len());
        assert_eq!(decoded.frames.len(), 3);
        assert_eq!(decoded.frames[0].kind, 1);
        assert_eq!(decoded.frames[0].payload, b"alpha");
        assert!(decoded.frames[1].payload.is_empty());
        assert_eq!(decoded.frames[2].payload.len(), 300);
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let mut log = Vec::new();
        encode_frame(1, b"kept", &mut log);
        let intact = log.len();
        encode_frame(2, b"torn away", &mut log);
        for cut in intact + 1..log.len() {
            let decoded = decode_log(&log[..cut]);
            assert_eq!(decoded.frames.len(), 1, "cut at {cut}");
            assert_eq!(decoded.clean_len, intact, "cut at {cut}");
            assert!(decoded.torn.is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_fails_the_checksum() {
        let mut log = Vec::new();
        encode_frame(1, b"kept", &mut log);
        let intact = log.len();
        encode_frame(7, b"payload under test", &mut log);
        // Flip one payload byte of the second frame.
        let victim = intact + FRAME_OVERHEAD + 3;
        log[victim] ^= 0x40;
        let decoded = decode_log(&log);
        assert_eq!(decoded.frames.len(), 1);
        assert_eq!(decoded.clean_len, intact);
        assert_eq!(decoded.torn, Some(Torn::BadChecksum));
    }

    #[test]
    fn zero_and_oversized_lengths_stop_decoding() {
        let mut log = Vec::new();
        encode_frame(1, b"ok", &mut log);
        let intact = log.len();
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(&[0; 5]);
        let decoded = decode_log(&log);
        assert_eq!(decoded.clean_len, intact);
        assert_eq!(decoded.torn, Some(Torn::BadLength));

        let mut log2 = Vec::new();
        log2.extend_from_slice(&(u32::MAX).to_le_bytes());
        log2.extend_from_slice(&[0; 64]);
        let decoded2 = decode_log(&log2);
        assert!(decoded2.frames.is_empty());
        assert_eq!(decoded2.torn, Some(Torn::BadLength));
    }

    #[test]
    fn empty_input_is_a_clean_empty_log() {
        let decoded = decode_log(&[]);
        assert!(decoded.frames.is_empty());
        assert_eq!(decoded.clean_len, 0);
        assert_eq!(decoded.torn, None);
    }
}
