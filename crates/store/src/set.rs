//! The per-layout WAL set: one [`ShardWal`] per shard, a shared stats
//! block, and the group-commit machinery.
//!
//! "Group commit" here is fsync batching: appends to one shard are
//! already serialized by the cloud tier's shard locks, so the expensive
//! operation to amortize is the `fsync`, not the `write`. The
//! [`FlushPolicy`] decides when a shard's accumulated appends are made
//! durable: on every write, once `N` appends have accumulated, or on a
//! fixed cadence driven by a background thread parked on the runtime's
//! timer wheel.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::wal::{ShardRecovery, ShardWal, WalError};
use crate::FlushPolicy;

#[derive(Debug, Default)]
struct StatsCells {
    appends: AtomicU64,
    fsyncs: AtomicU64,
    bytes_written: AtomicU64,
    snapshots_written: AtomicU64,
    recovered_entries: AtomicU64,
    recovered_snapshots: AtomicU64,
    recovered_truncated_bytes: AtomicU64,
}

/// Point-in-time counters for the WAL set, cumulative since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Frames appended across all shards.
    pub appends: u64,
    /// `fsync` calls issued (group commit batches many appends into one).
    pub fsyncs: u64,
    /// Frame bytes written to log files (headers and snapshots excluded).
    pub bytes_written: u64,
    /// Compaction snapshots installed.
    pub snapshots_written: u64,
    /// Log frames replayed at open time.
    pub recovered_entries: u64,
    /// Snapshot files replayed at open time.
    pub recovered_snapshots: u64,
    /// Torn-tail bytes discarded at open time.
    pub recovered_truncated_bytes: u64,
    /// Bytes appended past the header, summed over every shard's current
    /// log generation (snapshot installs reset a shard's contribution).
    pub appended_bytes: u64,
    /// Prefix of `appended_bytes` covered by an fsync. The gap between
    /// the two is the in-memory loss window a crash would cost; replicas
    /// measure their lag against these same offsets.
    pub durable_bytes: u64,
}

/// Where one appended frame landed in its shard's current log
/// generation. Replication ships the frame against exactly these
/// offsets; a snapshot install resets the generation (and the offsets)
/// to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendedFrame {
    /// Byte offset past the header where the frame starts.
    pub start_offset: u64,
    /// Offset just past the frame (`start_offset + bytes`).
    pub end_offset: u64,
    /// Encoded frame length, framing overhead included.
    pub bytes: u64,
    /// Whether this append's group-commit threshold issued an fsync.
    pub synced: bool,
}

struct WalShared {
    shards: Vec<ShardWal>,
    stats: StatsCells,
    stop_flusher: AtomicBool,
}

impl WalShared {
    /// Flushes every shard, counting fsyncs. Used by the interval
    /// flusher, explicit flushes, and the drop path.
    fn flush_all(&self) -> std::io::Result<u64> {
        let mut synced = 0;
        for shard in &self.shards {
            if shard.flush()? {
                synced += 1;
            }
        }
        self.stats.fsyncs.fetch_add(synced, Ordering::Relaxed);
        Ok(synced)
    }
}

/// A set of per-shard write-ahead logs under one directory, opened for a
/// specific shard layout.
///
/// Dropping the set stops the interval flusher (if any) and issues a
/// best-effort final flush, so in-policy data loss on clean shutdown is
/// zero even under `FlushPolicy::EveryInterval`.
pub struct Wal {
    shared: Arc<WalShared>,
    policy: FlushPolicy,
    dir: PathBuf,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("shards", &self.shared.shards.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl Wal {
    /// Opens (creating as needed) one log per shard under `dir`, replays
    /// each shard's snapshot and intact log tail, and truncates torn
    /// tails in place. Returns the recovered state per shard, in shard
    /// order, for the caller to apply before issuing new appends.
    ///
    /// Fails with [`WalError::LayoutMismatch`] if any existing file was
    /// written under a different `shard_count`.
    pub fn open(
        dir: &Path,
        shard_count: u32,
        policy: FlushPolicy,
    ) -> Result<(Self, Vec<ShardRecovery>), WalError> {
        assert!(shard_count > 0, "a WAL set needs at least one shard");
        if let FlushPolicy::EveryN(0) = policy {
            panic!("FlushPolicy::EveryN(0) would never flush; use EveryWrite");
        }
        std::fs::create_dir_all(dir).map_err(WalError::Io)?;

        let mut shards = Vec::with_capacity(shard_count as usize);
        let mut recoveries = Vec::with_capacity(shard_count as usize);
        let stats = StatsCells::default();
        for shard in 0..shard_count {
            let (wal, recovery) = ShardWal::open(dir, shard, shard_count)?;
            stats
                .recovered_entries
                .fetch_add(recovery.frames.len() as u64, Ordering::Relaxed);
            stats
                .recovered_truncated_bytes
                .fetch_add(recovery.truncated_bytes, Ordering::Relaxed);
            if recovery.snapshot.is_some() {
                stats.recovered_snapshots.fetch_add(1, Ordering::Relaxed);
            }
            shards.push(wal);
            recoveries.push(recovery);
        }

        let shared = Arc::new(WalShared {
            shards,
            stats,
            stop_flusher: AtomicBool::new(false),
        });

        let flusher = if let FlushPolicy::EveryInterval(interval) = policy {
            let interval = interval.max(Duration::from_millis(1));
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("medsen-wal-flush".into())
                    .spawn(move || run_flusher(shared, interval))
                    .map_err(WalError::Io)?,
            )
        } else {
            None
        };

        Ok((
            Self {
                shared,
                policy,
                dir: dir.to_path_buf(),
                flusher,
            },
            recoveries,
        ))
    }

    /// Directory the set was opened against.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards in the layout this set was opened with.
    pub fn shard_count(&self) -> u32 {
        self.shared.shards.len() as u32
    }

    /// The flush policy the set was opened with.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Appends one frame to `shard`'s log, fsyncing per the policy.
    /// Returns where the frame landed in the shard's log generation.
    ///
    /// # Panics
    /// Panics if `shard` is out of range for the layout.
    pub fn append(&self, shard: u32, kind: u8, payload: &[u8]) -> Result<AppendedFrame, WalError> {
        let wal = &self.shared.shards[shard as usize];
        let threshold = match self.policy {
            FlushPolicy::EveryWrite => Some(1),
            FlushPolicy::EveryN(n) => Some(n),
            FlushPolicy::EveryInterval(_) => None,
        };
        let started = Instant::now();
        let outcome = wal.append(kind, payload, threshold)?;
        let finished = Instant::now();
        // Span per append against the active request's trace (no-op when
        // no context is installed, e.g. replay or the interval flusher).
        medsen_telemetry::record(medsen_telemetry::Stage::WalAppend, shard, started, finished);
        let stats = &self.shared.stats;
        stats.appends.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_written
            .fetch_add(outcome.bytes, Ordering::Relaxed);
        if outcome.synced {
            stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            // The fsync is the tail of the append: attribute it separately
            // so group-commit stalls name the guilty stage.
            let sync_started = finished
                .checked_sub(Duration::from_nanos(outcome.sync_ns))
                .unwrap_or(started);
            medsen_telemetry::record(
                medsen_telemetry::Stage::WalFsync,
                shard,
                sync_started,
                finished,
            );
        }
        Ok(AppendedFrame {
            start_offset: outcome.end_offset - outcome.bytes,
            end_offset: outcome.end_offset,
            bytes: outcome.bytes,
            synced: outcome.synced,
        })
    }

    /// Forces every shard's unsynced appends to disk, regardless of
    /// policy. Returns the number of fsyncs issued.
    pub fn flush(&self) -> Result<u64, WalError> {
        self.shared.flush_all().map_err(WalError::Io)
    }

    /// Atomically replaces `shard`'s snapshot with `payload` and resets
    /// its log. The caller must hold whatever locks make `shard` quiesce
    /// (see [`ShardWal::install_snapshot`]).
    ///
    /// # Panics
    /// Panics if `shard` is out of range for the layout.
    pub fn install_snapshot(&self, shard: u32, payload: &[u8]) -> Result<(), WalError> {
        self.shared.shards[shard as usize]
            .install_snapshot(payload)
            .map_err(WalError::Io)?;
        self.shared
            .stats
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Cumulative counters since open (recovery counters are set once at
    /// open time).
    pub fn stats(&self) -> WalStats {
        let stats = &self.shared.stats;
        let (mut appended, mut durable) = (0, 0);
        for shard in &self.shared.shards {
            let (a, d) = shard.offsets();
            appended += a;
            durable += d;
        }
        WalStats {
            appends: stats.appends.load(Ordering::Relaxed),
            fsyncs: stats.fsyncs.load(Ordering::Relaxed),
            bytes_written: stats.bytes_written.load(Ordering::Relaxed),
            snapshots_written: stats.snapshots_written.load(Ordering::Relaxed),
            recovered_entries: stats.recovered_entries.load(Ordering::Relaxed),
            recovered_snapshots: stats.recovered_snapshots.load(Ordering::Relaxed),
            recovered_truncated_bytes: stats.recovered_truncated_bytes.load(Ordering::Relaxed),
            appended_bytes: appended,
            durable_bytes: durable,
        }
    }

    /// Byte offset past the header that appends to `shard` have reached
    /// in its current log generation. Replication ships frames against
    /// exactly these offsets, so lag is observable without reaching into
    /// file internals.
    ///
    /// # Panics
    /// Panics if `shard` is out of range for the layout.
    pub fn appended_offset(&self, shard: u32) -> u64 {
        self.shared.shards[shard as usize].offsets().0
    }

    /// Prefix of [`Wal::appended_offset`] made durable by an fsync.
    ///
    /// # Panics
    /// Panics if `shard` is out of range for the layout.
    pub fn durable_offset(&self, shard: u32) -> u64 {
        self.shared.shards[shard as usize].offsets().1
    }

    /// Current byte length of `shard`'s log file. Exposed for the
    /// fault-injection tests, which corrupt logs at precise offsets.
    pub fn log_len(&self, shard: u32) -> Result<u64, WalError> {
        self.shared.shards[shard as usize]
            .log_len()
            .map_err(WalError::Io)
    }

    /// Path of `shard`'s log file, likewise for test surgery.
    pub fn log_path(&self, shard: u32) -> &Path {
        self.shared.shards[shard as usize].log_path()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shared.stop_flusher.store(true, Ordering::Release);
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
        // Best effort: a failed flush here has nowhere to report, but the
        // frames are still in the OS page cache and recovery tolerates a
        // torn tail, so ignoring the error cannot corrupt the log.
        let _ = self.shared.flush_all();
    }
}

/// Interval-flusher loop: parks on the runtime's wall-clock timer wheel
/// between sweeps rather than `std::thread::sleep`, so the flusher shows
/// up in the same timer infrastructure as the rest of the system.
fn run_flusher(shared: Arc<WalShared>, interval: Duration) {
    let timer = medsen_runtime::Timer::wall();
    while !shared.stop_flusher.load(Ordering::Acquire) {
        timer.sleep_blocking(interval);
        if shared.stop_flusher.load(Ordering::Acquire) {
            break;
        }
        // An IO error here is retried on the next sweep; the writers'
        // fail-stop path reports persistent failures at append time.
        let _ = shared.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "medsen-walset-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn every_write_policy_syncs_each_append() {
        let dir = temp_dir("everywrite");
        let (wal, _) = Wal::open(&dir, 2, FlushPolicy::EveryWrite).expect("open");
        wal.append(0, 1, b"a").expect("append");
        wal.append(1, 1, b"b").expect("append");
        let stats = wal.stats();
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.fsyncs, 2);
        assert!(stats.bytes_written > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_policy_batches_fsyncs() {
        let dir = temp_dir("everyn");
        let (wal, _) = Wal::open(&dir, 1, FlushPolicy::EveryN(4)).expect("open");
        for i in 0..10u8 {
            wal.append(0, 1, &[i]).expect("append");
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, 10);
        assert_eq!(stats.fsyncs, 2, "10 appends at N=4 → syncs at 4 and 8");
        assert_eq!(wal.flush().expect("flush"), 1, "2 stragglers flushed");
        assert_eq!(wal.stats().fsyncs, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offset_accessors_expose_replication_lag() {
        let dir = temp_dir("offsets");
        let (wal, _) = Wal::open(&dir, 2, FlushPolicy::EveryN(2)).expect("open");
        let first = wal.append(0, 1, b"one").expect("append");
        assert_eq!(first.start_offset, 0);
        assert_eq!(first.end_offset, first.bytes);
        assert!(!first.synced, "N=2 defers the fsync");
        assert_eq!(wal.appended_offset(0), first.end_offset);
        assert_eq!(wal.durable_offset(0), 0, "N=2 defers the fsync");
        assert_eq!(wal.appended_offset(1), 0, "untouched shard stays at zero");
        wal.append(0, 1, b"two").expect("append");
        assert_eq!(wal.durable_offset(0), wal.appended_offset(0));
        let stats = wal.stats();
        assert_eq!(stats.appended_bytes, wal.appended_offset(0));
        assert_eq!(stats.durable_bytes, stats.appended_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_stats_survive_reopen() {
        let dir = temp_dir("recovery");
        {
            let (wal, _) = Wal::open(&dir, 2, FlushPolicy::EveryWrite).expect("open");
            wal.append(0, 1, b"left").expect("append");
            wal.append(1, 2, b"right").expect("append");
            wal.install_snapshot(1, b"right-snap").expect("snapshot");
        }
        let (wal, recoveries) = Wal::open(&dir, 2, FlushPolicy::EveryWrite).expect("reopen");
        assert_eq!(recoveries.len(), 2);
        assert_eq!(recoveries[0].frames.len(), 1);
        assert!(
            recoveries[1].frames.is_empty(),
            "snapshot compacted shard 1"
        );
        assert_eq!(recoveries[1].snapshot.as_deref(), Some(&b"right-snap"[..]));
        let stats = wal.stats();
        assert_eq!(stats.recovered_entries, 1);
        assert_eq!(stats.recovered_snapshots, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_policy_flushes_in_background() {
        let dir = temp_dir("interval");
        let (wal, _) = Wal::open(
            &dir,
            1,
            FlushPolicy::EveryInterval(Duration::from_millis(5)),
        )
        .expect("open");
        wal.append(0, 1, b"pending").expect("append");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while wal.stats().fsyncs == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "interval flusher never fired"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_flushes_stragglers() {
        let dir = temp_dir("dropflush");
        {
            let (wal, _) = Wal::open(&dir, 1, FlushPolicy::EveryN(100)).expect("open");
            wal.append(0, 1, b"unsynced").expect("append");
            assert_eq!(wal.stats().fsyncs, 0);
        }
        // The entry must be replayable after the graceful drop.
        let (_, recoveries) = Wal::open(&dir, 1, FlushPolicy::EveryWrite).expect("reopen");
        assert_eq!(recoveries[0].frames.len(), 1);
        assert_eq!(recoveries[0].frames[0].payload, b"unsynced");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
