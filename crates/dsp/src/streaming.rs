//! Streaming analysis for long acquisitions.
//!
//! The paper stress-tests MedSen with 3-hour runs producing ~600 MB of CSV
//! (Sec. VII-B). Holding such a trace in memory is wasteful; the cloud can
//! process it chunk by chunk instead. [`StreamingAnalyzer`] consumes sample
//! chunks of any size and emits peaks incrementally, producing the *same*
//! peaks as the batch pipeline: it buffers one detrend window plus overlap,
//! detrends each window exactly as [`detrend_segmented`] would, and carries
//! peak runs across window boundaries.
//!
//! [`detrend_segmented`]: crate::detrend::detrend_segmented

use crate::detrend::DetrendConfig;
use crate::peaks::{Peak, ThresholdDetector};
use crate::polyfit::{polyfit, polyfit_weighted};

/// Incremental, constant-memory peak analyzer.
///
/// Feed samples with [`push`](Self::push); collect emitted peaks from the
/// returned vectors; call [`finish`](Self::finish) at end of stream.
///
/// # Examples
///
/// ```
/// use medsen_dsp::StreamingAnalyzer;
///
/// // One dip at sample 2500 in a flat baseline.
/// let signal: Vec<f64> = (0..5000)
///     .map(|i| if (2498..2502).contains(&i) { 0.99 } else { 1.0 })
///     .collect();
/// let mut analyzer = StreamingAnalyzer::paper_default();
/// let mut peaks = Vec::new();
/// for chunk in signal.chunks(512) {
///     peaks.extend(analyzer.push(chunk));
/// }
/// peaks.extend(analyzer.finish());
/// assert_eq!(peaks.len(), 1);
/// assert!((2496..=2503).contains(&peaks[0].index));
/// ```
#[derive(Debug)]
pub struct StreamingAnalyzer {
    config: DetrendConfig,
    detector: ThresholdDetector,
    sample_rate: f64,
    /// Raw samples not yet emitted as depth (window + trailing overlap).
    buffer: Vec<f64>,
    /// Leading overlap carried from the previous window (fit context only).
    lead: Vec<f64>,
    /// Absolute index of buffer[0].
    buffer_start: usize,
    /// Depth samples pending peak detection (with run continuation state).
    pending_depth: Vec<f64>,
    /// Absolute index of pending_depth[0].
    pending_start: usize,
    total_pushed: usize,
}

impl StreamingAnalyzer {
    /// Creates a streaming analyzer.
    pub fn new(config: DetrendConfig, detector: ThresholdDetector, sample_rate: f64) -> Self {
        Self {
            config,
            detector,
            sample_rate,
            buffer: Vec::new(),
            lead: Vec::new(),
            buffer_start: 0,
            pending_depth: Vec::new(),
            pending_start: 0,
            total_pushed: 0,
        }
    }

    /// The paper-default streaming analyzer at 450 Hz.
    pub fn paper_default() -> Self {
        Self::new(
            DetrendConfig::paper_default(),
            ThresholdDetector::paper_default(),
            450.0,
        )
    }

    /// Total samples consumed so far.
    pub fn samples_consumed(&self) -> usize {
        self.total_pushed
    }

    /// Pushes a chunk of samples; returns any peaks finalized by this chunk.
    pub fn push(&mut self, samples: &[f64]) -> Vec<Peak> {
        self.total_pushed += samples.len();
        self.buffer.extend_from_slice(samples);
        let mut peaks = Vec::new();
        // Emit full windows while we have window + overlap lookahead.
        while self.buffer.len() >= self.config.window + self.config.overlap {
            let window_depth = self.detrend_window(self.config.window);
            self.append_depth(&window_depth, &mut peaks, false);
        }
        peaks
    }

    /// Flushes the tail of the stream, returning the final peaks.
    pub fn finish(mut self) -> Vec<Peak> {
        let mut peaks = Vec::new();
        while !self.buffer.is_empty() {
            let emit = self.buffer.len().min(self.config.window);
            let window_depth = self.detrend_window(emit);
            self.append_depth(&window_depth, &mut peaks, false);
        }
        // Final detection pass over any remaining pending depth.
        self.flush_pending(&mut peaks);
        peaks
    }

    /// Detrends the first `emit` samples of the buffer using lead + trailing
    /// overlap context, consumes them, and returns their depth values.
    fn detrend_window(&mut self, emit: usize) -> Vec<f64> {
        let trail = self
            .config
            .overlap
            .min(self.buffer.len().saturating_sub(emit));
        // Fit region: lead ++ buffer[..emit + trail].
        let mut fit: Vec<f64> = Vec::with_capacity(self.lead.len() + emit + trail);
        fit.extend_from_slice(&self.lead);
        fit.extend_from_slice(&self.buffer[..emit + trail]);
        let order = self.config.order;
        let poly = if fit.len() > order + 1 {
            // Robust two-pass fit, mirroring the batch detrender.
            let first = polyfit(&fit, order);
            let residuals: Vec<f64> = fit
                .iter()
                .enumerate()
                .map(|(i, &y)| 1.0 - y / first.eval_at_index(i))
                .collect();
            let mut abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
            abs.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
            let sigma = (1.4826 * abs[abs.len() / 2]).max(1e-9);
            let weights: Vec<f64> = residuals
                .iter()
                .map(|&r| if r > 3.0 * sigma { 0.0 } else { 1.0 })
                .collect();
            if weights.iter().filter(|&&w| w > 0.0).count() > order {
                polyfit_weighted(&fit, order, Some(&weights))
            } else {
                first
            }
        } else {
            // Degenerate tail: normalize by mean.
            let m = crate::stats::mean(&fit).max(1e-12);
            let depth: Vec<f64> = self.buffer[..emit].iter().map(|&y| 1.0 - y / m).collect();
            self.consume(emit);
            return depth;
        };
        let lead_len = self.lead.len();
        let depth: Vec<f64> = (0..emit)
            .map(|i| {
                let base = poly.eval_at_index(lead_len + i);
                1.0 - self.buffer[i] / base
            })
            .collect();
        self.consume(emit);
        depth
    }

    fn consume(&mut self, emit: usize) {
        // New lead = last `overlap` samples of the emitted region.
        let lead_from = emit.saturating_sub(self.config.overlap);
        self.lead = self.buffer[lead_from..emit].to_vec();
        self.buffer.drain(..emit);
        self.buffer_start += emit;
    }

    /// Appends depth samples to the pending run buffer and extracts every
    /// peak that is certainly complete (followed by a below-threshold gap).
    fn append_depth(&mut self, depth: &[f64], peaks: &mut Vec<Peak>, _final: bool) {
        if self.pending_depth.is_empty() {
            self.pending_start = self.buffer_start - depth.len();
        }
        self.pending_depth.extend_from_slice(depth);
        // Find the last below-threshold index; everything before it can be
        // finalized (no run can straddle past it).
        let cutoff = self
            .pending_depth
            .iter()
            .rposition(|&d| d <= self.detector.threshold);
        if let Some(cut) = cutoff {
            let (head, tail) = self.pending_depth.split_at(cut + 1);
            let mut found = self.detector.detect(head, self.sample_rate);
            for p in &mut found {
                p.index += self.pending_start;
                p.time_s = p.index as f64 / self.sample_rate;
            }
            peaks.extend(found);
            let tail: Vec<f64> = tail.to_vec();
            self.pending_start += cut + 1;
            self.pending_depth = tail;
        }
    }

    fn flush_pending(&mut self, peaks: &mut Vec<Peak>) {
        if self.pending_depth.is_empty() {
            return;
        }
        let mut found = self.detector.detect(&self.pending_depth, self.sample_rate);
        for p in &mut found {
            p.index += self.pending_start;
            p.time_s = p.index as f64 / self.sample_rate;
        }
        peaks.extend(found);
        self.pending_depth.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detrend::detrend_segmented;

    fn synthetic(n: usize, dip_every: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                let baseline = 1.0 + 3e-8 * x + 1.5e-3 * (x / 4_000.0).sin();
                let phase = i % dip_every;
                let dip = if (dip_every / 2..dip_every / 2 + 4).contains(&phase) {
                    8e-3
                } else {
                    0.0
                };
                baseline * (1.0 - dip)
            })
            .collect()
    }

    fn run_streaming(signal: &[f64], chunk: usize) -> Vec<Peak> {
        let mut analyzer = StreamingAnalyzer::paper_default();
        let mut peaks = Vec::new();
        for c in signal.chunks(chunk) {
            peaks.extend(analyzer.push(c));
        }
        peaks.extend(analyzer.finish());
        peaks
    }

    #[test]
    fn streaming_matches_batch_peak_count() {
        let signal = synthetic(30_000, 900);
        let batch_depth = detrend_segmented(&signal, &DetrendConfig::paper_default());
        let batch = ThresholdDetector::paper_default().detect(&batch_depth, 450.0);
        let streamed = run_streaming(&signal, 1_024);
        assert_eq!(streamed.len(), batch.len());
    }

    #[test]
    fn streaming_is_chunk_size_invariant() {
        let signal = synthetic(20_000, 700);
        let a = run_streaming(&signal, 64);
        let b = run_streaming(&signal, 4_096);
        let c = run_streaming(&signal, 19_999);
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
        }
    }

    #[test]
    fn streamed_peak_indices_are_absolute() {
        let signal = synthetic(15_000, 1_000);
        let peaks = run_streaming(&signal, 512);
        // Dips planted at i % 1000 in [500, 504).
        for p in &peaks {
            assert!(
                (p.index % 1_000).abs_diff(501) <= 4,
                "peak at {} not on the grid",
                p.index
            );
        }
        assert!(peaks.len() >= 13, "found {}", peaks.len());
    }

    #[test]
    fn short_streams_still_work() {
        let signal = synthetic(500, 200);
        let peaks = run_streaming(&signal, 100);
        assert!(!peaks.is_empty());
    }

    #[test]
    fn empty_stream_finishes_cleanly() {
        let analyzer = StreamingAnalyzer::paper_default();
        assert!(analyzer.finish().is_empty());
    }

    #[test]
    fn constant_memory_for_long_streams() {
        // The buffer never grows beyond window + 2×overlap + chunk.
        let mut analyzer = StreamingAnalyzer::paper_default();
        let chunk = vec![1.0f64; 1_000];
        for _ in 0..200 {
            let _ = analyzer.push(&chunk);
            assert!(
                analyzer.buffer.len() <= 2_000 + 400 + 1_000,
                "buffer grew to {}",
                analyzer.buffer.len()
            );
            assert!(analyzer.pending_depth.len() <= 3_400);
        }
        assert_eq!(analyzer.samples_consumed(), 200_000);
    }
}
