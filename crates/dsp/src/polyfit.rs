//! Least-squares polynomial fitting via the normal equations.
//!
//! The detrending stage fits a second-order polynomial to each signal
//! sub-sequence (Sec. VI-C). Fitting is performed on x-values mapped into
//! `[-1, 1]` to keep the Vandermonde system well-conditioned even for long
//! windows, then solved with Gaussian elimination and partial pivoting.

use serde::{Deserialize, Serialize};

/// A polynomial in the *normalized* coordinate of the fit window.
///
/// Callers evaluate it through [`Polynomial::eval_at_index`], which applies
/// the same index → `[-1, 1]` mapping used during fitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    /// Coefficients, lowest order first, in normalized coordinates.
    coeffs: Vec<f64>,
    /// Window length the normalization was built for.
    window_len: usize,
}

impl Polynomial {
    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Coefficients in the normalized coordinate, lowest order first.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates at the normalized coordinate `u ∈ [-1, 1]` (Horner).
    pub fn eval_normalized(&self, u: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * u + c)
    }

    /// Evaluates at sample index `i` of the original fit window.
    pub fn eval_at_index(&self, i: usize) -> f64 {
        self.eval_normalized(normalize_index(i, self.window_len))
    }
}

fn normalize_index(i: usize, len: usize) -> f64 {
    if len <= 1 {
        0.0
    } else {
        2.0 * i as f64 / (len - 1) as f64 - 1.0
    }
}

/// Fits a polynomial of the given `degree` to `ys` (indexed 0..len).
///
/// # Panics
///
/// Panics if `ys.len() <= degree` (underdetermined system).
pub fn polyfit(ys: &[f64], degree: usize) -> Polynomial {
    polyfit_weighted(ys, degree, None)
}

/// Weighted least-squares polynomial fit. `weights[i] = 0` excludes sample
/// `i` from the fit while preserving its x-position (used by the robust
/// detrender to mask particle dips out of the baseline estimate).
///
/// # Panics
///
/// Panics if the effective (positively weighted) sample count does not
/// exceed the degree, or if the weight slice length mismatches.
pub fn polyfit_weighted(ys: &[f64], degree: usize, weights: Option<&[f64]>) -> Polynomial {
    if let Some(w) = weights {
        assert_eq!(w.len(), ys.len(), "weights must match samples");
        let effective = w.iter().filter(|&&wi| wi > 0.0).count();
        assert!(
            effective > degree,
            "polyfit needs more weighted points ({effective}) than the degree ({degree})"
        );
    } else {
        assert!(
            ys.len() > degree,
            "polyfit needs more points ({}) than the degree ({degree})",
            ys.len()
        );
    }
    let n = degree + 1;
    // Build the normal equations AᵀWA c = AᵀWy where A is the Vandermonde
    // matrix of normalized x powers.
    let mut ata = vec![vec![0.0f64; n]; n];
    let mut aty = vec![0.0f64; n];
    let len = ys.len();
    let mut powers = vec![0.0f64; 2 * n - 1];
    for (i, &y) in ys.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        if w == 0.0 {
            continue;
        }
        let u = normalize_index(i, len);
        let mut p = w;
        for slot in powers.iter_mut() {
            *slot += p;
            p *= u;
        }
        let mut p = w;
        for item in aty.iter_mut() {
            *item += p * y;
            p *= u;
        }
    }
    for (r, row) in ata.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = powers[r + c];
        }
    }
    let coeffs = solve_linear(ata, aty);
    Polynomial {
        coeffs,
        window_len: len,
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Panics
///
/// Panics on a (numerically) singular system.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty system");
        if a[pivot_row][col].abs() < 1e-12 {
            panic!("singular system in polynomial fit");
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            let pivot_row_vals = a[col][col..n].to_vec();
            for (cell, pivot_val) in a[row][col..n].iter_mut().zip(&pivot_row_vals) {
                *cell -= factor * pivot_val;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_residual(ys: &[f64], p: &Polynomial) -> f64 {
        ys.iter()
            .enumerate()
            .map(|(i, &y)| (y - p.eval_at_index(i)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fits_constant() {
        let ys = vec![5.0; 100];
        let p = polyfit(&ys, 0);
        assert!(max_residual(&ys, &p) < 1e-10);
    }

    #[test]
    fn fits_line_exactly() {
        let ys: Vec<f64> = (0..50).map(|i| 2.0 + 0.3 * i as f64).collect();
        let p = polyfit(&ys, 1);
        assert!(max_residual(&ys, &p) < 1e-9);
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn fits_quadratic_exactly() {
        let ys: Vec<f64> = (0..200)
            .map(|i| {
                let x = i as f64;
                1.0 - 0.01 * x + 3e-5 * x * x
            })
            .collect();
        let p = polyfit(&ys, 2);
        assert!(max_residual(&ys, &p) < 1e-9);
    }

    #[test]
    fn higher_degree_still_recovers_lower_degree_data() {
        let ys: Vec<f64> = (0..100).map(|i| 4.0 + 0.5 * i as f64).collect();
        let p = polyfit(&ys, 4);
        assert!(max_residual(&ys, &p) < 1e-7);
    }

    #[test]
    fn long_window_remains_conditioned() {
        // A 100k-sample window would destroy a raw Vandermonde fit; the
        // [-1, 1] normalization keeps it stable.
        let n = 100_000;
        let ys: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64;
                1.0 + 1e-6 * x - 1e-12 * x * x
            })
            .collect();
        let p = polyfit(&ys, 2);
        assert!(max_residual(&ys, &p) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "needs more points")]
    fn underdetermined_fit_panics() {
        let _ = polyfit(&[1.0, 2.0], 2);
    }

    #[test]
    fn quadratic_fit_averages_through_noise() {
        // Deterministic "noise" should average out.
        let ys: Vec<f64> = (0..1000)
            .map(|i| {
                let x = i as f64;
                2.0 + 0.001 * x + if i % 2 == 0 { 0.01 } else { -0.01 }
            })
            .collect();
        let p = polyfit(&ys, 2);
        let mid = p.eval_at_index(500);
        assert!((mid - 2.5).abs() < 0.005, "mid {mid}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn exact_recovery_of_random_quadratics(
                a in -10.0f64..10.0,
                b in -1.0f64..1.0,
                c in -0.1f64..0.1,
                n in 10usize..500,
            ) {
                let ys: Vec<f64> = (0..n)
                    .map(|i| {
                        let x = i as f64;
                        a + b * x + c * x * x
                    })
                    .collect();
                let p = polyfit(&ys, 2);
                let worst = max_residual(&ys, &p);
                // Scale-aware tolerance.
                let scale = ys.iter().fold(1.0f64, |m, &y| m.max(y.abs()));
                prop_assert!(worst < 1e-8 * scale.max(1.0), "worst {worst}");
            }

            #[test]
            fn fit_is_idempotent_on_its_own_output(
                a in -5.0f64..5.0,
                b in -0.5f64..0.5,
                n in 20usize..200,
            ) {
                let ys: Vec<f64> = (0..n).map(|i| a + b * i as f64).collect();
                let p1 = polyfit(&ys, 2);
                let fitted: Vec<f64> = (0..n).map(|i| p1.eval_at_index(i)).collect();
                let p2 = polyfit(&fitted, 2);
                for i in 0..n {
                    prop_assert!((p1.eval_at_index(i) - p2.eval_at_index(i)).abs() < 1e-8);
                }
            }
        }
    }
}
