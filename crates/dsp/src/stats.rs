//! Elementary statistics used across the analysis pipeline and benches.

use serde::{Deserialize, Serialize};

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (0.0 for fewer than two samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation σ/µ (0.0 when the mean is zero).
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m.abs()
    }
}

/// `p`-th percentile (0–100) by linear interpolation on the sorted data.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Robust standard-deviation estimate via the median absolute deviation
/// (MAD × 1.4826). Insensitive to a minority of outliers such as particle
/// peaks riding on a noise floor. Returns 0.0 for empty input.
pub fn robust_sigma(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let median = sorted[sorted.len() / 2];
    let mut deviations: Vec<f64> = xs.iter().map(|x| (x - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    1.4826 * deviations[deviations.len() / 2]
}

/// Result of an ordinary least-squares straight-line fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least-squares regression of `ys` on `xs`.
///
/// # Panics
///
/// Panics if the slices differ in length or hold fewer than two points.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "regression needs at least two points");
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    assert!(sxx > 0.0, "regression needs x variation");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets.
/// Out-of-range samples are clamped into the end buckets.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = ((x - lo) / width).floor();
        let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
    }

    #[test]
    fn perfect_line_regression() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let fit = linear_regression(&xs, &ys);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 58.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_sub_unity_r2() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let fit = linear_regression(&xs, &ys);
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.9);
        assert!((fit.slope - 2.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn regression_rejects_single_point() {
        let _ = linear_regression(&[1.0], &[1.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [-1.0, 0.1, 0.2, 0.55, 0.9, 2.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h, vec![3, 3]);
    }

    #[test]
    fn robust_sigma_matches_stddev_on_clean_gaussianish_data() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 100) as f64 / 100.0 - 0.5)
            .collect();
        let classic = std_dev(&xs);
        let robust = robust_sigma(&xs);
        assert!(
            (robust / classic - 1.0).abs() < 0.35,
            "{robust} vs {classic}"
        );
    }

    #[test]
    fn robust_sigma_ignores_outliers() {
        let mut xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 100) as f64 / 1000.0)
            .collect();
        for i in 0..20 {
            xs[i * 50] = 100.0; // 2% wild outliers
        }
        assert!(robust_sigma(&xs) < 0.2);
        assert!(std_dev(&xs) > 1.0);
        assert_eq!(robust_sigma(&[]), 0.0);
    }

    #[test]
    fn cv_scales_with_spread() {
        let tight = [10.0, 10.1, 9.9];
        let wide = [10.0, 15.0, 5.0];
        assert!(coefficient_of_variation(&tight) < coefficient_of_variation(&wide));
    }
}
