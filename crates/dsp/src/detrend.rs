//! Segmented polynomial detrending (Sec. VI-C).
//!
//! "By partitioning the signal sequence into a smaller train of data
//! sub-sequences, the second order polynomial fitting line would be
//! sufficient to conform the baseline drifting of each section... The
//! sub-sequences of the signal are detrended with overlap sections to
//! minimize the error of the fitted polynomial at both ends... After fitting
//! the sub-sequence with a second order polynomial, the data section is
//! detrended and normalized by dividing the subsection of data by the fitted
//! polynomial. The baseline of the detrended sub-sequences has a mean value
//! of one. Peak detection is achieved by setting a minimum threshold on the
//! data section of one minus the detrended subsequence."
//!
//! [`detrend_segmented`] returns exactly that final quantity: the *depth
//! signal* `1 − (signal / fitted baseline)`, which is ≈ 0 on the baseline and
//! positive inside particle dips.

use crate::polyfit::{polyfit, polyfit_weighted, Polynomial};
use serde::{Deserialize, Serialize};

/// Robust two-pass fit: an initial fit, then a refit with samples that dip
/// more than 3 robust σ below the baseline masked out, so particle dips do
/// not drag the baseline estimate down (which otherwise manufactures
/// spurious "peaks" near segment edges).
fn robust_fit(ys: &[f64], order: usize) -> Polynomial {
    let first = polyfit(ys, order);
    // Depth residuals relative to the first fit.
    let residuals: Vec<f64> = ys
        .iter()
        .enumerate()
        .map(|(i, &y)| 1.0 - y / first.eval_at_index(i))
        .collect();
    // Robust scale: median absolute deviation.
    let mut abs: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
    abs.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
    let mad = abs[abs.len() / 2];
    let sigma = (1.4826 * mad).max(1e-9);
    let weights: Vec<f64> = residuals
        .iter()
        .map(|&r| if r > 3.0 * sigma { 0.0 } else { 1.0 })
        .collect();
    let effective = weights.iter().filter(|&&w| w > 0.0).count();
    if effective > order {
        polyfit_weighted(ys, order, Some(&weights))
    } else {
        first
    }
}

/// Configuration for segmented detrending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetrendConfig {
    /// Polynomial order per segment (paper: 2).
    pub order: usize,
    /// Segment length in samples.
    pub window: usize,
    /// Extra samples borrowed on each side of a segment for the fit.
    pub overlap: usize,
}

impl DetrendConfig {
    /// The paper's choice: order 2 on ~4.4 s windows (2000 samples at
    /// 450 Hz) with 10 % overlap.
    pub fn paper_default() -> Self {
        Self {
            order: 2,
            window: 2000,
            overlap: 200,
        }
    }

    /// A config with a different polynomial order (for the ablation bench).
    pub fn with_order(order: usize) -> Self {
        Self {
            order,
            ..Self::paper_default()
        }
    }
}

impl Default for DetrendConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Whole-trace detrend (no segmentation) — the under-fitting baseline the
/// paper rejects for long traces; kept for the ablation bench.
///
/// Returns the depth signal `1 − signal/fit`.
///
/// # Panics
///
/// Panics if the signal has fewer than `order + 1` samples.
pub fn detrend_whole(signal: &[f64], order: usize) -> Vec<f64> {
    let poly = robust_fit(signal, order);
    signal
        .iter()
        .enumerate()
        .map(|(i, &y)| {
            let base = poly.eval_at_index(i);
            1.0 - y / base
        })
        .collect()
}

/// Segmented detrend with overlap: the paper's algorithm.
///
/// Each `config.window`-sample segment is fitted (order `config.order`)
/// over the segment *plus* `config.overlap` samples on each side, then only
/// the segment itself is normalized by its fit and emitted. Returns the depth
/// signal `1 − signal/fit`, concatenated over all segments.
///
/// Signals shorter than one window fall back to a whole-trace fit.
pub fn detrend_segmented(signal: &[f64], config: &DetrendConfig) -> Vec<f64> {
    assert!(
        config.window > config.order,
        "window too small for the order"
    );
    if signal.len() <= config.window + config.order + 1 {
        if signal.len() > config.order + 1 {
            return detrend_whole(signal, config.order);
        }
        // Degenerate tiny input: normalize by its mean.
        let m = crate::stats::mean(signal);
        return signal
            .iter()
            .map(|&y| if m == 0.0 { 0.0 } else { 1.0 - y / m })
            .collect();
    }

    let n = signal.len();
    let mut depth = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + config.window).min(n);
        let fit_start = start.saturating_sub(config.overlap);
        let fit_end = (end + config.overlap).min(n);
        let poly = robust_fit(&signal[fit_start..fit_end], config.order);
        for (i, &y) in signal.iter().enumerate().take(end).skip(start) {
            let base = poly.eval_at_index(i - fit_start);
            depth.push(1.0 - y / base);
        }
        start = end;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A slow quadratic + sinusoidal baseline with dips at known locations.
    fn synthetic(n: usize, dip_at: &[usize], dip_depth: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                let baseline = 1.0 + 4e-5 * x - 1e-9 * x * x + 2e-3 * (x / 2_000.0).sin();
                let dip: f64 = dip_at
                    .iter()
                    .map(|&c| {
                        let d = (x - c as f64) / 3.0;
                        dip_depth * (-d * d).exp()
                    })
                    .sum();
                baseline * (1.0 - dip)
            })
            .collect()
    }

    #[test]
    fn baseline_detrends_to_near_zero() {
        let sig = synthetic(20_000, &[], 0.0);
        let depth = detrend_segmented(&sig, &DetrendConfig::paper_default());
        let worst = depth.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(worst < 5e-4, "residual baseline {worst}");
    }

    #[test]
    fn dips_survive_detrending_with_correct_depth() {
        let sig = synthetic(10_000, &[2_500, 7_500], 0.01);
        let depth = detrend_segmented(&sig, &DetrendConfig::paper_default());
        assert!((depth[2_500] - 0.01).abs() < 2e-3, "depth {}", depth[2_500]);
        assert!((depth[7_500] - 0.01).abs() < 2e-3, "depth {}", depth[7_500]);
    }

    #[test]
    fn whole_trace_order2_underfits_long_drift() {
        // The paper: "for the large sequence of the signal, a second order
        // polynomial line clearly under-fits the baseline drift".
        let sig = synthetic(100_000, &[], 0.0);
        let whole = detrend_whole(&sig, 2);
        let segmented = detrend_segmented(&sig, &DetrendConfig::paper_default());
        let worst = |d: &[f64]| d.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(
            worst(&whole) > 3.0 * worst(&segmented),
            "whole {} vs segmented {}",
            worst(&whole),
            worst(&segmented)
        );
    }

    #[test]
    fn high_order_deforms_peaks_more_than_order2() {
        // The paper rejects high orders because over-fitting "would cause the
        // peaks of the signal to deform to a larger degree": with short
        // windows the fit starts absorbing the dip itself.
        let sig = synthetic(4_000, &[2_000], 0.01);
        let cfg2 = DetrendConfig {
            order: 2,
            window: 500,
            overlap: 50,
        };
        let cfg12 = DetrendConfig {
            order: 12,
            window: 500,
            overlap: 50,
        };
        let d2 = detrend_segmented(&sig, &cfg2)[2_000];
        let d12 = detrend_segmented(&sig, &cfg12)[2_000];
        assert!(
            d12 < d2,
            "order 12 should absorb peak energy: d2={d2}, d12={d12}"
        );
    }

    #[test]
    fn short_signal_falls_back_to_whole_fit() {
        let sig = synthetic(500, &[250], 0.01);
        let depth = detrend_segmented(&sig, &DetrendConfig::paper_default());
        assert_eq!(depth.len(), 500);
        assert!(depth[250] > 0.005);
    }

    #[test]
    fn tiny_signal_normalizes_by_mean() {
        let sig = vec![2.0, 2.0];
        let depth = detrend_segmented(&sig, &DetrendConfig::paper_default());
        assert_eq!(depth, vec![0.0, 0.0]);
    }

    #[test]
    fn output_length_always_matches_input() {
        for n in [1usize, 2, 100, 1_999, 2_000, 2_001, 5_432] {
            let sig = synthetic(n, &[], 0.0);
            let depth = detrend_segmented(&sig, &DetrendConfig::paper_default());
            assert_eq!(depth.len(), n, "length mismatch at n={n}");
        }
    }

    #[test]
    fn segment_boundaries_do_not_create_spurious_peaks() {
        let sig = synthetic(10_000, &[], 0.0);
        let depth = detrend_segmented(&sig, &DetrendConfig::paper_default());
        // Check samples right at window boundaries.
        for b in [2_000usize, 4_000, 6_000, 8_000] {
            assert!(
                depth[b].abs() < 1e-3,
                "boundary artifact at {b}: {}",
                depth[b]
            );
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn pure_quadratic_baselines_detrend_to_zero(
                a in 0.5f64..2.0,
                b in -1e-5f64..1e-5,
                c in -1e-9f64..1e-9,
                n in 3_000usize..12_000,
            ) {
                let sig: Vec<f64> = (0..n)
                    .map(|i| {
                        let x = i as f64;
                        a + b * x + c * x * x
                    })
                    .collect();
                let depth = detrend_segmented(&sig, &DetrendConfig::paper_default());
                let worst = depth.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                prop_assert!(worst < 1e-6, "worst residual {worst}");
            }
        }
    }
}
