//! Multi-frequency feature extraction for particle classification.
//!
//! "All those impedance measurements for different bead types at different
//! frequencies are considered as features. MedSen uses the features for its
//! classification procedures to distinguish between different particles"
//! (Sec. VII-C). A feature vector is the peak's depth on every carrier
//! channel, measured in a small window around the peak's timestamp.

use crate::peaks::Peak;
use serde::{Deserialize, Serialize};

/// One peak's amplitudes across all carrier channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Sample index of the peak (on the reference channel).
    pub index: usize,
    /// Depth on each carrier channel, in channel order.
    pub amplitudes: Vec<f64>,
}

impl FeatureVector {
    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.amplitudes.len()
    }

    /// Amplitude ratio between two channels (∞-safe: returns 0 when the
    /// denominator is 0).
    pub fn ratio(&self, num: usize, den: usize) -> f64 {
        let d = self.amplitudes[den];
        if d == 0.0 {
            0.0
        } else {
            self.amplitudes[num] / d
        }
    }
}

/// For each peak found on a reference channel, measures the maximum depth of
/// every channel in a ±`half_window` window around the peak index.
///
/// `channels` are depth signals (already detrended), all the same length.
///
/// # Panics
///
/// Panics if `channels` is empty or lengths differ.
pub fn match_amplitudes(
    channels: &[Vec<f64>],
    peaks: &[Peak],
    half_window: usize,
) -> Vec<FeatureVector> {
    assert!(!channels.is_empty(), "need at least one channel");
    let n = channels[0].len();
    assert!(
        channels.iter().all(|c| c.len() == n),
        "all channels must be equally long"
    );
    peaks
        .iter()
        .map(|p| {
            let lo = p.index.saturating_sub(half_window);
            let hi = (p.index + half_window + 1).min(n);
            let amplitudes = channels
                .iter()
                .map(|c| c[lo..hi].iter().copied().fold(0.0f64, f64::max))
                .collect();
            FeatureVector {
                index: p.index,
                amplitudes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak_at(index: usize) -> Peak {
        Peak {
            index,
            time_s: index as f64 / 450.0,
            amplitude: 0.0,
            width_samples: 5,
            width_s: 5.0 / 450.0,
        }
    }

    fn bump(n: usize, c: usize, depth: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let d = (i as f64 - c as f64) / 2.0;
                depth * (-0.5 * d * d).exp()
            })
            .collect()
    }

    #[test]
    fn amplitudes_read_from_every_channel() {
        let ch0 = bump(200, 100, 0.010);
        let ch1 = bump(200, 100, 0.004);
        let fv = match_amplitudes(&[ch0, ch1], &[peak_at(100)], 5);
        assert_eq!(fv.len(), 1);
        assert!((fv[0].amplitudes[0] - 0.010).abs() < 1e-9);
        assert!((fv[0].amplitudes[1] - 0.004).abs() < 1e-9);
        assert_eq!(fv[0].dims(), 2);
    }

    #[test]
    fn window_tolerates_small_channel_misalignment() {
        // LPF group delay can shift channels by a sample or two.
        let ch0 = bump(200, 100, 0.010);
        let ch1 = bump(200, 103, 0.004);
        let fv = match_amplitudes(&[ch0, ch1], &[peak_at(100)], 5);
        assert!((fv[0].amplitudes[1] - 0.004).abs() < 1e-6);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let fv = FeatureVector {
            index: 0,
            amplitudes: vec![0.5, 0.0],
        };
        assert_eq!(fv.ratio(0, 1), 0.0);
        assert_eq!(fv.ratio(1, 0), 0.0);
    }

    #[test]
    fn window_clamps_at_signal_edges() {
        let ch = bump(50, 2, 0.01);
        let fv = match_amplitudes(&[ch], &[peak_at(2)], 10);
        assert!((fv[0].amplitudes[0] - 0.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn mismatched_channel_lengths_panic() {
        let _ = match_amplitudes(&[vec![0.0; 10], vec![0.0; 11]], &[peak_at(5)], 2);
    }

    #[test]
    fn multiple_peaks_produce_multiple_vectors() {
        let mut ch = bump(400, 100, 0.01);
        for (a, b) in ch.iter_mut().zip(bump(400, 300, 0.02)) {
            *a += b;
        }
        let fvs = match_amplitudes(&[ch], &[peak_at(100), peak_at(300)], 5);
        assert_eq!(fvs.len(), 2);
        assert!(fvs[1].amplitudes[0] > fvs[0].amplitudes[0]);
    }
}
