//! Threshold peak detection on the detrended depth signal.
//!
//! "Peak detection is achieved by setting a minimum threshold on the data
//! section of one minus the detrended subsequence" (Sec. VI-C). A peak is a
//! contiguous run of depth samples above the threshold; the detector reports
//! its amplitude (maximum depth), width, and timestamp — the three
//! characteristics the cipher deliberately randomizes.

use serde::{Deserialize, Serialize};

/// One detected peak in the depth signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Sample index of the maximum depth.
    pub index: usize,
    /// Timestamp of the maximum (seconds), given the caller's sample rate.
    pub time_s: f64,
    /// Maximum depth (normalized units; e.g. 0.004 = 0.4 % dip).
    pub amplitude: f64,
    /// Width in samples (run length above threshold).
    pub width_samples: usize,
    /// Width in seconds.
    pub width_s: f64,
}

/// Threshold-based peak detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdDetector {
    /// Minimum depth a sample must exceed to be inside a peak.
    pub threshold: f64,
    /// Minimum run length (samples) for a run to count as a peak — rejects
    /// single-sample noise spikes.
    pub min_width: usize,
    /// Minimum gap (samples) below threshold required to split two peaks;
    /// shorter gaps are merged into one peak.
    pub merge_gap: usize,
    /// Valley split ratio: an above-threshold run is cut at an interior
    /// local minimum when the valley is below `split_ratio` × the smaller of
    /// the two flanking maxima. Deep peaks' filter tails can hold the signal
    /// above the absolute threshold between two genuine dips; prominence
    /// splitting recovers them.
    pub split_ratio: f64,
}

impl ThresholdDetector {
    /// Detector tuned to the synthesiser's noise floor (σ = 3 × 10⁻⁴):
    /// a 3.3 σ threshold with a 2-sample width requirement (the width
    /// requirement suppresses the residual single-sample noise crossings, so
    /// the effective false-positive rate stays negligible while the smallest
    /// bead's LPF-attenuated dips remain detectable).
    pub fn paper_default() -> Self {
        Self {
            threshold: 1.0e-3,
            min_width: 2,
            merge_gap: 1,
            split_ratio: 0.5,
        }
    }

    /// A detector with a custom threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not strictly positive.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        Self {
            threshold,
            ..Self::paper_default()
        }
    }

    /// Detects peaks in a depth signal sampled at `sample_rate` Hz.
    pub fn detect(&self, depth: &[f64], sample_rate: f64) -> Vec<Peak> {
        let mut runs: Vec<(usize, usize)> = Vec::new(); // [start, end)
        let mut run_start: Option<usize> = None;
        for (i, &d) in depth.iter().enumerate() {
            if d > self.threshold {
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else if let Some(s) = run_start.take() {
                runs.push((s, i));
            }
        }
        if let Some(s) = run_start {
            runs.push((s, depth.len()));
        }

        // Merge runs separated by less than merge_gap.
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(runs.len());
        for run in runs {
            match merged.last_mut() {
                Some(last) if run.0 - last.1 <= self.merge_gap => last.1 = run.1,
                _ => merged.push(run),
            }
        }

        // Split runs at deep interior valleys (prominence segmentation).
        let mut segments: Vec<(usize, usize)> = Vec::with_capacity(merged.len());
        for (s, e) in merged {
            self.split_run(depth, s, e, &mut segments);
        }

        segments
            .into_iter()
            .filter(|&(s, e)| e - s >= self.min_width)
            .map(|(s, e)| {
                let (index, amplitude) = depth[s..e]
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| (s + k, v))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite depths"))
                    .expect("non-empty run");
                let width_samples = e - s;
                Peak {
                    index,
                    time_s: index as f64 / sample_rate,
                    amplitude,
                    width_samples,
                    width_s: width_samples as f64 / sample_rate,
                }
            })
            .collect()
    }

    /// Convenience: just the number of peaks.
    pub fn count(&self, depth: &[f64], sample_rate: f64) -> usize {
        self.detect(depth, sample_rate).len()
    }

    /// Recursively splits `[s, e)` at its deepest qualifying valley: an
    /// interior minimum whose flanks on both sides rise to at least
    /// `valley / split_ratio`.
    fn split_run(&self, depth: &[f64], s: usize, e: usize, out: &mut Vec<(usize, usize)>) {
        if e - s < 2 * self.min_width + 1 {
            out.push((s, e));
            return;
        }
        let run = &depth[s..e];
        let n = run.len();
        // Prefix/suffix running maxima for O(n) flank lookups.
        let mut prefix_max = vec![0.0f64; n];
        let mut acc = f64::NEG_INFINITY;
        for (i, &v) in run.iter().enumerate() {
            acc = acc.max(v);
            prefix_max[i] = acc;
        }
        let mut suffix_max = vec![0.0f64; n];
        let mut acc = f64::NEG_INFINITY;
        for (i, &v) in run.iter().enumerate().rev() {
            acc = acc.max(v);
            suffix_max[i] = acc;
        }
        let mut best: Option<(usize, f64)> = None;
        for i in 1..n - 1 {
            let flank = prefix_max[i - 1].min(suffix_max[i + 1]);
            if run[i] < self.split_ratio * flank {
                match best {
                    Some((_, bv)) if bv <= run[i] => {}
                    _ => best = Some((i, run[i])),
                }
            }
        }
        if let Some((vi, _)) = best {
            self.split_run(depth, s, s + vi, out);
            self.split_run(depth, s + vi + 1, e, out);
        } else {
            out.push((s, e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Places Gaussian bumps of `depth` at the given centres.
    fn depth_signal(n: usize, centers: &[usize], depth: f64, sigma: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                centers
                    .iter()
                    .map(|&c| {
                        let d = (i as f64 - c as f64) / sigma;
                        depth * (-0.5 * d * d).exp()
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn finds_isolated_peaks() {
        let sig = depth_signal(2_000, &[400, 1_200, 1_700], 0.01, 3.0);
        let peaks = ThresholdDetector::paper_default().detect(&sig, 450.0);
        assert_eq!(peaks.len(), 3);
        assert_eq!(peaks[0].index, 400);
        assert!((peaks[1].time_s - 1_200.0 / 450.0).abs() < 1e-9);
        assert!((peaks[2].amplitude - 0.01).abs() < 1e-6);
    }

    #[test]
    fn empty_and_flat_signals_have_no_peaks() {
        let det = ThresholdDetector::paper_default();
        assert_eq!(det.count(&[], 450.0), 0);
        assert_eq!(det.count(&vec![0.0; 1_000], 450.0), 0);
        assert_eq!(det.count(&vec![0.9e-3; 1_000], 450.0), 0); // below threshold
    }

    #[test]
    fn sub_threshold_peaks_are_ignored() {
        let sig = depth_signal(1_000, &[500], 0.9e-3, 3.0);
        assert_eq!(ThresholdDetector::paper_default().count(&sig, 450.0), 0);
    }

    #[test]
    fn single_sample_spikes_are_rejected() {
        let mut sig = vec![0.0; 1_000];
        sig[500] = 0.05; // one-sample glitch
        assert_eq!(ThresholdDetector::paper_default().count(&sig, 450.0), 0);
    }

    #[test]
    fn close_peaks_merge_while_separated_peaks_do_not() {
        let det = ThresholdDetector {
            merge_gap: 5,
            ..ThresholdDetector::paper_default()
        };
        // Two bumps 4 samples apart (gap below merge_gap after thresholding).
        let close = depth_signal(200, &[100, 104], 0.01, 1.5);
        // Two bumps 50 samples apart.
        let apart = depth_signal(400, &[100, 150], 0.01, 1.5);
        assert_eq!(det.count(&close, 450.0), 1);
        assert_eq!(det.count(&apart, 450.0), 2);
    }

    #[test]
    fn width_scales_with_pulse_sigma() {
        let det = ThresholdDetector::paper_default();
        let narrow = depth_signal(2_000, &[1_000], 0.01, 2.0);
        let wide = depth_signal(2_000, &[1_000], 0.01, 8.0);
        let wn = det.detect(&narrow, 450.0)[0].width_samples;
        let ww = det.detect(&wide, 450.0)[0].width_samples;
        assert!(ww > 2 * wn, "wide {ww} vs narrow {wn}");
    }

    #[test]
    fn peak_running_to_signal_end_is_captured() {
        let mut sig = vec![0.0; 100];
        for s in sig.iter_mut().skip(95) {
            *s = 0.01;
        }
        let peaks = ThresholdDetector::paper_default().detect(&sig, 450.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].width_samples, 5);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_non_positive_threshold() {
        let _ = ThresholdDetector::with_threshold(0.0);
    }

    #[test]
    fn amplitudes_are_reported_per_peak() {
        let det = ThresholdDetector::paper_default();
        let mut sig = depth_signal(1_000, &[300], 0.004, 3.0);
        let big = depth_signal(1_000, &[700], 0.016, 3.0);
        for (a, b) in sig.iter_mut().zip(big) {
            *a += b;
        }
        let peaks = det.detect(&sig, 450.0);
        assert_eq!(peaks.len(), 2);
        assert!(peaks[1].amplitude > 3.0 * peaks[0].amplitude);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn count_matches_planted_peaks(n_peaks in 1usize..20) {
                // Plant n well-separated peaks and verify exact recovery.
                let spacing = 100;
                let n = (n_peaks + 2) * spacing;
                let centers: Vec<usize> =
                    (1..=n_peaks).map(|k| k * spacing).collect();
                let sig = depth_signal(n, &centers, 0.01, 3.0);
                let det = ThresholdDetector::paper_default();
                prop_assert_eq!(det.count(&sig, 450.0), n_peaks);
            }
        }
    }
}
