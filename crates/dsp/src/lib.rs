//! Signal-processing toolkit for MedSen's cloud-side analysis.
//!
//! Section VI-C describes the paper's Matlab pipeline: the acquired signal is
//! *detrended* by fitting second-order polynomials to overlapping
//! sub-sequences (whole-trace fits under-fit; high orders over-fit and deform
//! peaks), then peaks are detected by *thresholding* "the data section of one
//! minus the detrended subsequence". This crate implements that pipeline from
//! scratch, plus the feature extraction and classification used to separate
//! bead types from blood cells (Figs. 15–16):
//!
//! * [`mod@polyfit`] — least-squares polynomial fitting (normal equations);
//! * [`detrend`] — segmented polynomial detrending with overlap;
//! * [`peaks`] — threshold peak detection with amplitude/width/timestamps;
//! * [`features`] — per-carrier amplitude feature vectors;
//! * [`classify`] — Gaussian nearest-centroid classifier;
//! * [`stats`] — means, variances, robust σ, linear regression, histograms;
//! * [`filter`] — moving-average and median smoothing;
//! * [`streaming`] — constant-memory chunked analysis for the paper's
//!   3-hour/600 MB stress regime.
//!
//! # Examples
//!
//! ```
//! use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
//! use medsen_dsp::peaks::ThresholdDetector;
//!
//! // A drifting baseline with one dip at sample 500.
//! let signal: Vec<f64> = (0..1000)
//!     .map(|i| {
//!         let drift = 1.0 + 1e-4 * i as f64;
//!         let dip = if (495..505).contains(&i) { 0.01 } else { 0.0 };
//!         drift - dip
//!     })
//!     .collect();
//! let depth = detrend_segmented(&signal, &DetrendConfig::paper_default());
//! let peaks = ThresholdDetector::paper_default().detect(&depth, 450.0);
//! assert_eq!(peaks.len(), 1);
//! ```

pub mod classify;
pub mod detrend;
pub mod features;
pub mod filter;
pub mod peaks;
pub mod polyfit;
pub mod stats;
pub mod streaming;

pub use classify::{ClassStats, Classifier, ConfusionMatrix};
pub use detrend::{detrend_segmented, detrend_whole, DetrendConfig};
pub use features::{match_amplitudes, FeatureVector};
pub use peaks::{Peak, ThresholdDetector};
pub use polyfit::{polyfit, Polynomial};
pub use stats::{histogram, linear_regression, mean, robust_sigma, std_dev, variance, LinearFit};
pub use streaming::StreamingAnalyzer;
