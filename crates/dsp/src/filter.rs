//! Simple smoothing filters used ahead of peak detection.

/// Centred moving average with an odd window of `2·half + 1` samples.
/// Edges use a shrunken window.
pub fn moving_average(xs: &[f64], half: usize) -> Vec<f64> {
    if xs.is_empty() || half == 0 {
        return xs.to_vec();
    }
    let n = xs.len();
    // Prefix sums for O(n).
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &x in xs {
        prefix.push(prefix.last().expect("non-empty prefix") + x);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect()
}

/// Centred median filter with an odd window of `2·half + 1` samples.
/// Edges use a shrunken window. Good at removing single-sample glitches
/// without widening peaks.
pub fn median_filter(xs: &[f64], half: usize) -> Vec<f64> {
    if xs.is_empty() || half == 0 {
        return xs.to_vec();
    }
    let n = xs.len();
    let mut scratch = Vec::with_capacity(2 * half + 1);
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            scratch.clear();
            scratch.extend_from_slice(&xs[lo..hi]);
            scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            scratch[scratch.len() / 2]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_preserves_constants() {
        let xs = vec![3.0; 50];
        assert_eq!(moving_average(&xs, 4), xs);
    }

    #[test]
    fn moving_average_smooths_alternation() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let smoothed = moving_average(&xs, 2);
        let peak = smoothed[10..90].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak < 0.25, "peak {peak}");
    }

    #[test]
    fn moving_average_zero_half_is_identity() {
        let xs = vec![1.0, 5.0, -2.0];
        assert_eq!(moving_average(&xs, 0), xs);
    }

    #[test]
    fn median_removes_single_glitch() {
        let mut xs = vec![0.0; 21];
        xs[10] = 100.0;
        let filtered = median_filter(&xs, 2);
        assert!(filtered.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn median_preserves_wide_step() {
        let mut xs = vec![0.0; 40];
        for x in xs.iter_mut().skip(20) {
            *x = 1.0;
        }
        let filtered = median_filter(&xs, 2);
        assert_eq!(filtered[10], 0.0);
        assert_eq!(filtered[30], 1.0);
    }

    #[test]
    fn filters_handle_empty_input() {
        assert!(moving_average(&[], 3).is_empty());
        assert!(median_filter(&[], 3).is_empty());
    }

    #[test]
    fn output_lengths_match_input() {
        let xs: Vec<f64> = (0..123).map(|i| i as f64).collect();
        assert_eq!(moving_average(&xs, 5).len(), xs.len());
        assert_eq!(median_filter(&xs, 5).len(), xs.len());
    }
}
