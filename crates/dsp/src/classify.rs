//! Gaussian nearest-centroid classification of particle feature vectors.
//!
//! Figure 16 shows the three populations (3.58 µm beads, 7.8 µm beads, blood
//! cells) separating "with clear margins" in amplitude space. A diagonal-
//! covariance Gaussian classifier (normalized-distance-to-centroid) is
//! sufficient for cleanly separated clusters and matches what a Matlab
//! prototype would use.

use crate::features::FeatureVector;
use serde::{Deserialize, Serialize};

/// Per-class feature statistics (diagonal covariance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class label.
    pub label: String,
    /// Per-dimension means.
    pub means: Vec<f64>,
    /// Per-dimension standard deviations (floored to avoid zero division).
    pub std_devs: Vec<f64>,
    /// Training sample count.
    pub count: usize,
}

impl ClassStats {
    /// Squared normalized (Mahalanobis-with-diagonal-covariance) distance of
    /// a feature vector to this class centroid.
    pub fn distance2(&self, fv: &FeatureVector) -> f64 {
        self.means
            .iter()
            .zip(&self.std_devs)
            .zip(&fv.amplitudes)
            .map(|((&m, &s), &x)| {
                let z = (x - m) / s;
                z * z
            })
            .sum()
    }

    /// Negative Gaussian log-likelihood (up to an additive constant):
    /// `Σ (z² + 2 ln σ)`. Unlike raw Mahalanobis distance, the `ln σ` term
    /// stops diffuse classes (e.g. biologically variable blood cells) from
    /// swallowing samples that sit squarely inside a tight, monodisperse
    /// bead cluster.
    pub fn neg_log_likelihood(&self, fv: &FeatureVector) -> f64 {
        self.distance2(fv) + 2.0 * self.std_devs.iter().map(|s| s.ln()).sum::<f64>()
    }
}

/// Errors from classifier training/prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifyError {
    /// No training data for any class.
    NoTrainingData,
    /// A class had no training vectors.
    EmptyClass(String),
    /// Feature dimensionality differs between samples or from training.
    DimensionMismatch {
        /// Dimensions the classifier was trained with.
        expected: usize,
        /// Dimensions of the offending vector.
        got: usize,
    },
}

impl core::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClassifyError::NoTrainingData => write!(f, "no training data provided"),
            ClassifyError::EmptyClass(label) => {
                write!(f, "class `{label}` has no training vectors")
            }
            ClassifyError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} feature dimensions, got {got}")
            }
        }
    }
}

impl std::error::Error for ClassifyError {}

/// A trained nearest-centroid classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classifier {
    classes: Vec<ClassStats>,
    dims: usize,
}

impl Classifier {
    /// Trains from `(label, vectors)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError`] when no data is given, a class is empty, or
    /// dimensions disagree.
    pub fn train(data: &[(&str, Vec<FeatureVector>)]) -> Result<Self, ClassifyError> {
        if data.is_empty() {
            return Err(ClassifyError::NoTrainingData);
        }
        if let Some((label, _)) = data.iter().find(|(_, vs)| vs.is_empty()) {
            return Err(ClassifyError::EmptyClass((*label).to_owned()));
        }
        let dims = data
            .iter()
            .flat_map(|(_, vs)| vs.first())
            .map(|v| v.dims())
            .next()
            .ok_or(ClassifyError::NoTrainingData)?;

        let mut classes = Vec::with_capacity(data.len());
        for (label, vectors) in data {
            if vectors.is_empty() {
                return Err(ClassifyError::EmptyClass((*label).to_owned()));
            }
            for v in vectors {
                if v.dims() != dims {
                    return Err(ClassifyError::DimensionMismatch {
                        expected: dims,
                        got: v.dims(),
                    });
                }
            }
            let n = vectors.len() as f64;
            let mut means = vec![0.0; dims];
            for v in vectors {
                for (m, &x) in means.iter_mut().zip(&v.amplitudes) {
                    *m += x / n;
                }
            }
            let mut vars = vec![0.0; dims];
            for v in vectors {
                for ((var, &m), &x) in vars.iter_mut().zip(&means).zip(&v.amplitudes) {
                    *var += (x - m) * (x - m) / n;
                }
            }
            // Floor σ at 5 % of the mean (or tiny absolute) so monodisperse
            // training sets don't produce degenerate distances.
            let std_devs = vars
                .iter()
                .zip(&means)
                .map(|(&v, &m)| v.sqrt().max(0.05 * m.abs()).max(1e-9))
                .collect();
            classes.push(ClassStats {
                label: (*label).to_owned(),
                means,
                std_devs,
                count: vectors.len(),
            });
        }
        Ok(Self { classes, dims })
    }

    /// Class statistics.
    pub fn classes(&self) -> &[ClassStats] {
        &self.classes
    }

    /// Predicts the best-matching class label for a feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError::DimensionMismatch`] on dimension mismatch.
    pub fn predict(&self, fv: &FeatureVector) -> Result<&str, ClassifyError> {
        if fv.dims() != self.dims {
            return Err(ClassifyError::DimensionMismatch {
                expected: self.dims,
                got: fv.dims(),
            });
        }
        Ok(self
            .classes
            .iter()
            .min_by(|a, b| {
                a.neg_log_likelihood(fv)
                    .partial_cmp(&b.neg_log_likelihood(fv))
                    .expect("finite scores")
            })
            .map(|c| c.label.as_str())
            .expect("trained classifier has classes"))
    }

    /// Classifies a batch and tallies a confusion matrix against true labels.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn evaluate(
        &self,
        labelled: &[(&str, Vec<FeatureVector>)],
    ) -> Result<ConfusionMatrix, ClassifyError> {
        let labels: Vec<String> = self.classes.iter().map(|c| c.label.clone()).collect();
        let mut counts = vec![vec![0usize; labels.len()]; labels.len()];
        for (true_label, vectors) in labelled {
            let row = labels
                .iter()
                .position(|l| l == true_label)
                .ok_or_else(|| ClassifyError::EmptyClass((*true_label).to_owned()))?;
            for v in vectors {
                let predicted = self.predict(v)?;
                let col = labels
                    .iter()
                    .position(|l| l == predicted)
                    .expect("prediction is a known class");
                counts[row][col] += 1;
            }
        }
        Ok(ConfusionMatrix { labels, counts })
    }
}

/// A confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Class labels in matrix order.
    pub labels: Vec<String>,
    /// Row = true class, column = predicted class.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Overall accuracy (diagonal mass / total mass).
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (correct / row total), in label order.
    pub fn recalls(&self) -> Vec<f64> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    0.0
                } else {
                    row[i] as f64 / total as f64
                }
            })
            .collect()
    }
}

impl core::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "true \\ predicted: {}", self.labels.join(", "))?;
        for (label, row) in self.labels.iter().zip(&self.counts) {
            writeln!(f, "{label:>18}: {row:?}")?;
        }
        write!(f, "accuracy: {:.3}", self.accuracy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(amplitudes: &[f64]) -> FeatureVector {
        FeatureVector {
            index: 0,
            amplitudes: amplitudes.to_vec(),
        }
    }

    fn cluster(center: &[f64], spread: f64, n: usize) -> Vec<FeatureVector> {
        // Deterministic pseudo-noise cluster.
        (0..n)
            .map(|i| {
                let amplitudes = center
                    .iter()
                    .enumerate()
                    .map(|(d, &c)| {
                        let wiggle = ((i * 31 + d * 17) % 13) as f64 / 13.0 - 0.5;
                        c * (1.0 + spread * wiggle)
                    })
                    .collect();
                FeatureVector {
                    index: i,
                    amplitudes,
                }
            })
            .collect()
    }

    #[test]
    fn separable_clusters_classify_perfectly() {
        let small = cluster(&[0.0025, 0.0025], 0.1, 40);
        let big = cluster(&[0.010, 0.010], 0.1, 40);
        let cells = cluster(&[0.005, 0.002], 0.15, 40);
        let clf = Classifier::train(&[
            ("3.58um", small.clone()),
            ("7.8um", big.clone()),
            ("cell", cells.clone()),
        ])
        .unwrap();
        let cm = clf
            .evaluate(&[("3.58um", small), ("7.8um", big), ("cell", cells)])
            .unwrap();
        assert_eq!(cm.accuracy(), 1.0, "{cm}");
    }

    #[test]
    fn overlapping_clusters_misclassify_some() {
        let a = cluster(&[1.0, 1.0], 0.8, 60);
        let b = cluster(&[1.2, 1.2], 0.8, 60);
        let clf = Classifier::train(&[("a", a.clone()), ("b", b.clone())]).unwrap();
        let cm = clf.evaluate(&[("a", a), ("b", b)]).unwrap();
        assert!(cm.accuracy() < 1.0);
        assert!(cm.accuracy() > 0.4);
    }

    #[test]
    fn predict_rejects_wrong_dimensions() {
        let clf = Classifier::train(&[("a", cluster(&[1.0, 1.0], 0.1, 5))]).unwrap();
        let err = clf.predict(&fv(&[1.0])).unwrap_err();
        assert_eq!(
            err,
            ClassifyError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn train_rejects_empty_inputs() {
        assert_eq!(
            Classifier::train(&[]).unwrap_err(),
            ClassifyError::NoTrainingData
        );
        assert_eq!(
            Classifier::train(&[("x", vec![])]).unwrap_err(),
            ClassifyError::EmptyClass("x".into())
        );
    }

    #[test]
    fn confusion_matrix_recalls() {
        let cm = ConfusionMatrix {
            labels: vec!["a".into(), "b".into()],
            counts: vec![vec![9, 1], vec![2, 8]],
        };
        assert_eq!(cm.recalls(), vec![0.9, 0.8]);
        assert!((cm.accuracy() - 0.85).abs() < 1e-12);
        assert!(cm.to_string().contains("accuracy: 0.850"));
    }

    #[test]
    fn degenerate_monodisperse_class_still_works() {
        // All training vectors identical: σ floor prevents NaN distances.
        let exact = vec![fv(&[0.004, 0.004]); 10];
        let other = cluster(&[0.016, 0.016], 0.1, 10);
        let clf = Classifier::train(&[("exact", exact), ("other", other)]).unwrap();
        assert_eq!(clf.predict(&fv(&[0.0041, 0.0039])).unwrap(), "exact");
    }

    #[test]
    fn class_stats_distance_is_zero_at_centroid() {
        let clf = Classifier::train(&[("a", cluster(&[2.0, 3.0], 0.0, 5))]).unwrap();
        let c = &clf.classes()[0];
        let d = c.distance2(&fv(&[c.means[0], c.means[1]]));
        assert!(d < 1e-18);
    }
}
