//! Threshold-based diagnostic rules.
//!
//! "MedSen simply decodes the number and determines the user's disease
//! condition through a simple threshold comparison" (Sec. II). The running
//! example throughout the paper is CD4+ T-cell counting for HIV staging —
//! "the white blood CD-4 cell count is the strongest predictor of HIV
//! progression".

use medsen_units::{Concentration, Microliters};
use serde::{Deserialize, Serialize};

/// A diagnostic verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The biomarker concentration is within the healthy band.
    Normal,
    /// The biomarker indicates disease at a given stage (1-based severity).
    Abnormal {
        /// Stage index, 1 = mildest.
        stage: usize,
        /// Human-readable stage name.
        label: String,
    },
}

impl Verdict {
    /// Whether the verdict is normal.
    pub fn is_normal(&self) -> bool {
        matches!(self, Verdict::Normal)
    }
}

/// A threshold ladder mapping a biomarker concentration to a verdict.
///
/// Thresholds are *lower bounds of the healthy direction*: a measurement
/// below `thresholds[i].0` lands in stage `i + 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticRule {
    /// What is being measured.
    pub marker: String,
    /// `(threshold, stage label)` pairs, descending thresholds.
    thresholds: Vec<(Concentration, String)>,
}

impl DiagnosticRule {
    /// CD4-style staging ladder (cells/µL of whole blood): ≥ 500 normal,
    /// 200–500 advanced infection, < 200 severe immunosuppression.
    pub fn cd4_staging() -> Self {
        Self {
            marker: "CD4+ T-cell count".into(),
            thresholds: vec![
                (Concentration::new(500.0), "advanced HIV infection".into()),
                (
                    Concentration::new(200.0),
                    "severe immunosuppression (AIDS)".into(),
                ),
            ],
        }
    }

    /// Builds a custom rule.
    ///
    /// # Errors
    ///
    /// Fails if thresholds are not strictly descending and positive.
    pub fn new(
        marker: impl Into<String>,
        thresholds: Vec<(Concentration, String)>,
    ) -> Result<Self, String> {
        let values: Vec<f64> = thresholds.iter().map(|(c, _)| c.value()).collect();
        if values.iter().any(|&v| v <= 0.0) {
            return Err("thresholds must be positive".into());
        }
        if values.windows(2).any(|w| w[1] >= w[0]) {
            return Err("thresholds must be strictly descending".into());
        }
        Ok(Self {
            marker: marker.into(),
            thresholds,
        })
    }

    /// Applies the rule to a measured concentration.
    pub fn evaluate(&self, measured: Concentration) -> Verdict {
        let mut verdict = Verdict::Normal;
        for (stage, (threshold, label)) in self.thresholds.iter().enumerate() {
            if measured.value() < threshold.value() {
                verdict = Verdict::Abnormal {
                    stage: stage + 1,
                    label: label.clone(),
                };
            }
        }
        verdict
    }

    /// Applies the rule to a decoded particle *count*: the count is converted
    /// back to a whole-blood concentration using the processed volume and
    /// the dilution applied during sample prep.
    pub fn evaluate_count(
        &self,
        decoded_count: u64,
        processed_volume: Microliters,
        dilution: f64,
    ) -> Verdict {
        let diluted = Concentration::new(decoded_count as f64 / processed_volume.value());
        self.evaluate(diluted * dilution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cd4_staging_bands() {
        let rule = DiagnosticRule::cd4_staging();
        assert!(rule.evaluate(Concentration::new(800.0)).is_normal());
        assert_eq!(
            rule.evaluate(Concentration::new(350.0)),
            Verdict::Abnormal {
                stage: 1,
                label: "advanced HIV infection".into()
            }
        );
        assert_eq!(
            rule.evaluate(Concentration::new(120.0)),
            Verdict::Abnormal {
                stage: 2,
                label: "severe immunosuppression (AIDS)".into()
            }
        );
    }

    #[test]
    fn boundary_values_stay_in_the_higher_band() {
        let rule = DiagnosticRule::cd4_staging();
        assert!(rule.evaluate(Concentration::new(500.0)).is_normal());
        assert_eq!(
            rule.evaluate(Concentration::new(200.0)),
            Verdict::Abnormal {
                stage: 1,
                label: "advanced HIV infection".into()
            }
        );
    }

    #[test]
    fn count_evaluation_undoes_dilution() {
        let rule = DiagnosticRule::cd4_staging();
        // 30 cells decoded from 0.05 µL processed at 1000× dilution
        // → 600 cells/µL diluted × ... wait: 30/0.05 = 600/µL diluted?
        // 30 / 0.05 µL = 600/µL; ×1 dilution → 600: normal.
        assert!(rule
            .evaluate_count(30, Microliters::new(0.05), 1.0)
            .is_normal());
        // Same count at 0.5 µL processed → 60/µL → severe at dilution 1.
        assert!(!rule
            .evaluate_count(30, Microliters::new(0.5), 1.0)
            .is_normal());
        // Dilution correction: 60/µL measured at 10× dilution → 600 → normal.
        assert!(rule
            .evaluate_count(30, Microliters::new(0.5), 10.0)
            .is_normal());
    }

    #[test]
    fn custom_rules_validate_threshold_order() {
        assert!(DiagnosticRule::new(
            "x",
            vec![
                (Concentration::new(100.0), "a".into()),
                (Concentration::new(200.0), "b".into())
            ]
        )
        .is_err());
        assert!(DiagnosticRule::new("x", vec![(Concentration::ZERO, "a".into())]).is_err());
        assert!(DiagnosticRule::new(
            "x",
            vec![
                (Concentration::new(200.0), "a".into()),
                (Concentration::new(100.0), "b".into())
            ]
        )
        .is_ok());
    }

    #[test]
    fn single_threshold_rule() {
        let rule = DiagnosticRule::new(
            "platelets",
            vec![(Concentration::new(150_000.0), "thrombocytopenia".into())],
        )
        .unwrap();
        assert!(rule.evaluate(Concentration::new(250_000.0)).is_normal());
        assert!(!rule.evaluate(Concentration::new(80_000.0)).is_normal());
    }
}
