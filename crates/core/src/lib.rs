//! MedSen's application layer: cyto-coded passwords, user enrollment,
//! diagnostic rules, and the end-to-end secure diagnostic pipeline.
//!
//! The lower crates provide the physics (`medsen-microfluidics`,
//! `medsen-impedance`), the trusted device (`medsen-sensor`), the untrusted
//! relay and analysis (`medsen-phone`, `medsen-cloud`), and the DSP
//! (`medsen-dsp`). This crate composes them into the system of Fig. 2:
//!
//! * [`CytoPassword`] — the bead-mixture credential alphabet (Sec. V),
//!   its password-space accounting and collision analysis;
//! * [`UserRegistry`]/[`PipetteBatch`] — provisioning pipettes that embed a
//!   user's identifier;
//! * [`DiagnosticRule`] — threshold-based verdicts (e.g. CD4-style staging);
//! * [`Pipeline`]/[`SessionReport`] — one full diagnostic session: mix →
//!   transport → encrypted acquisition → phone relay → cloud analysis →
//!   controller decryption → verdict, with the paper's timing breakdown;
//! * [`threat`] — leakage metrics for the security experiments.

pub mod diagnostics;
pub mod enrollment;
pub mod password;
pub mod pipeline;
pub mod sharing;
pub mod threat;

pub use diagnostics::{DiagnosticRule, Verdict};
pub use enrollment::{IdentifierScope, PipetteBatch, ScopedProvision, UserRegistry};
pub use password::{
    CredentialDecodeError, CytoPassword, PasswordAlphabet, PasswordError, CREDENTIAL_FORMAT_VERSION,
};
pub use pipeline::{Pipeline, PipelineConfig, SessionMode, SessionReport, TimingBreakdown};
pub use sharing::{DecryptionCapability, SealedCapability};
