//! Cyto-coded passwords (Sec. V, Sec. VII-C).
//!
//! "In conceptual comparison to traditional password paradigms, the number of
//! password characters would correspond to the number of bead types involved,
//! and specific character value within the password would correspond to the
//! number (concentration) of beads of a particular type. Therefore, having
//! larger number of bead types would increase the cyto-coded password space
//! size and hence the overall security."
//!
//! A password is a vector of concentration *levels*, one per bead type in the
//! alphabet. Level 0 means the type is absent; the all-absent password is
//! invalid. Levels map linearly onto concentrations; the level *step* must be
//! wide enough that the measurement tolerance cannot confuse two levels —
//! the collision analysis in [`PasswordAlphabet::max_unambiguous_level`].

use medsen_microfluidics::{BeadDose, ParticleKind};
use medsen_units::{Concentration, Microliters};
use serde::{Deserialize, Serialize};

/// Errors in password construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PasswordError {
    /// A level vector of the wrong arity for the alphabet.
    WrongArity {
        /// Expected number of bead types.
        expected: usize,
        /// Provided number of levels.
        got: usize,
    },
    /// A level exceeded the alphabet's maximum.
    LevelOutOfRange {
        /// The offending level.
        level: u8,
        /// The maximum allowed.
        max: u8,
    },
    /// All levels were zero — an empty password encodes nothing.
    Empty,
}

impl core::fmt::Display for PasswordError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PasswordError::WrongArity { expected, got } => {
                write!(f, "expected {expected} levels, got {got}")
            }
            PasswordError::LevelOutOfRange { level, max } => {
                write!(f, "level {level} exceeds maximum {max}")
            }
            PasswordError::Empty => write!(f, "password must use at least one bead type"),
        }
    }
}

impl std::error::Error for PasswordError {}

/// Errors decoding a wire-encoded credential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CredentialDecodeError {
    /// Fewer bytes than the header + payload + checksum require.
    Truncated {
        /// Bytes the encoding needs (`usize::MAX` when even the header is
        /// missing, so the arity is unknown).
        expected: usize,
        /// Bytes provided.
        got: usize,
    },
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion(u8),
    /// The trailing CRC32 does not match the header + payload.
    ChecksumMismatch {
        /// Checksum recomputed from the bytes.
        computed: u32,
        /// Checksum stored in the encoding.
        stored: u32,
    },
    /// The encoding was made for a different alphabet geometry.
    AlphabetMismatch {
        /// `max_level` recorded in the encoding.
        encoded_max_level: u8,
        /// `max_level` of the alphabet decoding it.
        alphabet_max_level: u8,
    },
    /// The checksum held but the levels are not a valid password for the
    /// alphabet (wrong arity, out-of-range level, all-zero).
    Invalid(PasswordError),
}

impl core::fmt::Display for CredentialDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CredentialDecodeError::Truncated { expected, got } => {
                if *expected == usize::MAX {
                    write!(f, "credential truncated: {got} bytes is shorter than the header")
                } else {
                    write!(f, "credential truncated: need {expected} bytes, got {got}")
                }
            }
            CredentialDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported credential format version {v}")
            }
            CredentialDecodeError::ChecksumMismatch { computed, stored } => {
                write!(f, "credential checksum mismatch: computed {computed:#010x}, stored {stored:#010x}")
            }
            CredentialDecodeError::AlphabetMismatch {
                encoded_max_level,
                alphabet_max_level,
            } => write!(
                f,
                "credential encoded for max level {encoded_max_level}, alphabet has {alphabet_max_level}"
            ),
            CredentialDecodeError::Invalid(e) => write!(f, "decoded levels invalid: {e}"),
        }
    }
}

impl std::error::Error for CredentialDecodeError {}

/// Version byte leading every encoded credential.
pub const CREDENTIAL_FORMAT_VERSION: u8 = 1;

// CRC32 (IEEE, reflected) over the header + payload — the workspace's
// single implementation in `medsen-wire`, shared with the WAL frames and
// the cross-tier message envelope so the three checksums cannot drift.
use medsen_wire::crc32;

/// The password alphabet: which bead types exist and how concentration
/// levels map to physical doses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PasswordAlphabet {
    /// The bead types, in symbol order.
    bead_types: Vec<ParticleKind>,
    /// Concentration per level step (beads/µL).
    pub level_step: Concentration,
    /// Maximum level per bead type.
    pub max_level: u8,
}

impl PasswordAlphabet {
    /// The paper's two-bead alphabet (3.58 µm and 7.8 µm MicroChem beads)
    /// with 8 levels of 500 beads/µL — sized so that a one-minute
    /// acquisition (≈ 0.08 µL processed) sees ≈ 40 beads per level step,
    /// enough for Poisson-stable counting.
    pub fn paper_default() -> Self {
        Self {
            bead_types: vec![ParticleKind::Bead358, ParticleKind::Bead78],
            level_step: Concentration::new(500.0),
            max_level: 8,
        }
    }

    /// Builds an alphabet.
    ///
    /// # Errors
    ///
    /// Fails if a non-bead species is listed, the list is empty or has
    /// duplicates, or the step/levels are non-positive.
    pub fn new(
        bead_types: Vec<ParticleKind>,
        level_step: Concentration,
        max_level: u8,
    ) -> Result<Self, String> {
        if bead_types.is_empty() {
            return Err("alphabet needs at least one bead type".into());
        }
        for (i, kind) in bead_types.iter().enumerate() {
            if !kind.is_password_bead() {
                return Err(format!("`{kind}` is not a synthetic password bead"));
            }
            if bead_types[i + 1..].contains(kind) {
                return Err(format!("`{kind}` listed twice"));
            }
        }
        if level_step.value() <= 0.0 {
            return Err("level step must be positive".into());
        }
        if max_level == 0 {
            return Err("need at least one level".into());
        }
        Ok(Self {
            bead_types,
            level_step,
            max_level,
        })
    }

    /// The bead types in symbol order.
    pub fn bead_types(&self) -> &[ParticleKind] {
        &self.bead_types
    }

    /// Total number of valid passwords: `(max_level + 1)^types − 1`
    /// (every level combination except all-zero).
    pub fn password_space(&self) -> u64 {
        (u64::from(self.max_level) + 1)
            .pow(self.bead_types.len() as u32)
            .saturating_sub(1)
    }

    /// Password entropy in bits.
    pub fn entropy_bits(&self) -> f64 {
        (self.password_space() as f64).log2()
    }

    /// The minimum relative measurement tolerance at which two *adjacent*
    /// levels of the same type become confusable: adjacent levels `ℓ` and
    /// `ℓ+1` collide when `tol × ℓ_step × ℓ ≥ step / 2`. Returns the highest
    /// level that stays unambiguous at `rel_tolerance` — the quantitative
    /// form of the paper's observation that "lower bead concentrations have
    /// less variance and improved resolution", so low levels pack more
    /// distinguishable symbols.
    pub fn max_unambiguous_level(&self, rel_tolerance: f64) -> u8 {
        if rel_tolerance <= 0.0 {
            return self.max_level;
        }
        let mut level = 0u8;
        while level < self.max_level {
            let next = level + 1;
            // Measured band of level `next` is ± tol × next × step; bands of
            // next and next+1 overlap when tol × (2·next + 1) ≥ 1.
            if rel_tolerance * (2.0 * f64::from(next) + 1.0) >= 1.0 {
                break;
            }
            level = next;
        }
        level
    }

    /// Generates all valid passwords whose pairwise level distance (L∞) is
    /// at least `min_separation` — the collision-free dictionary the paper
    /// needs ("we carefully chose different types of beads as well as
    /// specific bead concentrations ... to avoid any undesired case").
    pub fn collision_free_dictionary(&self, min_separation: u8) -> Vec<CytoPassword> {
        let sep = min_separation.max(1);
        let mut dictionary: Vec<CytoPassword> = Vec::new();
        let arity = self.bead_types.len();
        let mut levels = vec![0u8; arity];
        loop {
            if levels.iter().any(|&l| l > 0) {
                let candidate = CytoPassword {
                    levels: levels.clone(),
                };
                let distinct = dictionary.iter().all(|existing| {
                    existing
                        .levels
                        .iter()
                        .zip(&candidate.levels)
                        .map(|(&a, &b)| a.abs_diff(b))
                        .max()
                        .unwrap_or(0)
                        >= sep
                });
                if distinct {
                    dictionary.push(candidate);
                }
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == arity {
                    return dictionary;
                }
                if levels[i] < self.max_level {
                    levels[i] += 1;
                    break;
                }
                levels[i] = 0;
                i += 1;
            }
        }
    }
}

impl Default for PasswordAlphabet {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One user's cyto-coded password: a level per alphabet bead type.
///
/// # Examples
///
/// ```
/// use medsen_core::{CytoPassword, PasswordAlphabet};
///
/// let alphabet = PasswordAlphabet::paper_default();
/// // "two parts 3.58 µm beads, six parts 7.8 µm beads"
/// let password = CytoPassword::new(&alphabet, vec![2, 6])?;
/// assert_eq!(password.to_doses(&alphabet).len(), 2);
/// # Ok::<(), medsen_core::PasswordError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CytoPassword {
    levels: Vec<u8>,
}

impl CytoPassword {
    /// Creates a password from levels (one per alphabet symbol).
    ///
    /// # Errors
    ///
    /// Returns a [`PasswordError`] on arity mismatch, out-of-range level, or
    /// the all-zero password.
    pub fn new(alphabet: &PasswordAlphabet, levels: Vec<u8>) -> Result<Self, PasswordError> {
        if levels.len() != alphabet.bead_types().len() {
            return Err(PasswordError::WrongArity {
                expected: alphabet.bead_types().len(),
                got: levels.len(),
            });
        }
        if let Some(&level) = levels.iter().find(|&&l| l > alphabet.max_level) {
            return Err(PasswordError::LevelOutOfRange {
                level,
                max: alphabet.max_level,
            });
        }
        if levels.iter().all(|&l| l == 0) {
            return Err(PasswordError::Empty);
        }
        Ok(Self { levels })
    }

    /// The level vector.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// The physical doses to mix into a pipette for this password.
    pub fn to_doses(&self, alphabet: &PasswordAlphabet) -> Vec<BeadDose> {
        alphabet
            .bead_types()
            .iter()
            .zip(&self.levels)
            .filter(|(_, &level)| level > 0)
            .map(|(&kind, &level)| BeadDose {
                kind,
                concentration: alphabet.level_step * f64::from(level),
            })
            .collect()
    }

    /// The expected bead counts when `processed_volume` of the mixed sample
    /// actually flows past the sensor.
    pub fn expected_signature(
        &self,
        alphabet: &PasswordAlphabet,
        processed_volume: Microliters,
    ) -> medsen_cloud::BeadSignature {
        let mut sig = medsen_cloud::BeadSignature::new();
        for dose in self.to_doses(alphabet) {
            let count = dose.concentration.expected_count(processed_volume);
            sig.set(dose.kind, count.round() as u64);
        }
        sig
    }

    /// Encodes the credential for the wire / enrollment records:
    ///
    /// ```text
    /// [version:1][arity:1][max_level:1][levels:arity][crc32:4 LE]
    /// ```
    ///
    /// The CRC covers everything before it, so truncation, bit flips, and
    /// splices are rejected by [`CytoPassword::decode`] before the levels
    /// are even looked at. The alphabet's `max_level` is carried so an
    /// encoding cannot be silently re-interpreted under a different
    /// geometry.
    pub fn encode(&self, alphabet: &PasswordAlphabet) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(3 + self.levels.len() + 4);
        bytes.push(CREDENTIAL_FORMAT_VERSION);
        bytes.push(self.levels.len() as u8);
        bytes.push(alphabet.max_level);
        bytes.extend_from_slice(&self.levels);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Decodes a credential produced by [`CytoPassword::encode`],
    /// validating version, length, checksum, alphabet geometry, and
    /// finally the levels themselves.
    ///
    /// # Errors
    ///
    /// Returns a [`CredentialDecodeError`] naming the first check that
    /// failed. Never panics, for any input bytes.
    pub fn decode(
        alphabet: &PasswordAlphabet,
        bytes: &[u8],
    ) -> Result<Self, CredentialDecodeError> {
        if bytes.len() < 3 {
            return Err(CredentialDecodeError::Truncated {
                expected: usize::MAX,
                got: bytes.len(),
            });
        }
        if bytes[0] != CREDENTIAL_FORMAT_VERSION {
            return Err(CredentialDecodeError::UnsupportedVersion(bytes[0]));
        }
        let arity = usize::from(bytes[1]);
        let expected = 3 + arity + 4;
        if bytes.len() != expected {
            return Err(CredentialDecodeError::Truncated {
                expected,
                got: bytes.len(),
            });
        }
        let (body, crc_bytes) = bytes.split_at(expected - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("split at 4"));
        let computed = crc32(body);
        if computed != stored {
            return Err(CredentialDecodeError::ChecksumMismatch { computed, stored });
        }
        if bytes[2] != alphabet.max_level {
            return Err(CredentialDecodeError::AlphabetMismatch {
                encoded_max_level: bytes[2],
                alphabet_max_level: alphabet.max_level,
            });
        }
        CytoPassword::new(alphabet, body[3..].to_vec()).map_err(CredentialDecodeError::Invalid)
    }

    /// L∞ distance between two passwords' level vectors.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn distance(&self, other: &CytoPassword) -> u8 {
        assert_eq!(self.levels.len(), other.levels.len(), "arity mismatch");
        self.levels
            .iter()
            .zip(&other.levels)
            .map(|(&a, &b)| a.abs_diff(b))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet() -> PasswordAlphabet {
        PasswordAlphabet::paper_default()
    }

    #[test]
    fn paper_alphabet_space_and_entropy() {
        let a = alphabet();
        // Two types × 9 level values (0..=8) minus the empty password.
        assert_eq!(a.password_space(), 81 - 1);
        assert!((a.entropy_bits() - (80f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn more_bead_types_enlarge_the_space() {
        // "having larger number of bead types would increase the cyto-coded
        // password space size and hence the overall security".
        let two = alphabet().password_space();
        // A hypothetical third bead type: reuse Bead358/Bead78 impossible
        // (duplicates rejected), so compare two-type/8-level vs one-type.
        let one = PasswordAlphabet::new(vec![ParticleKind::Bead78], Concentration::new(100.0), 8)
            .unwrap()
            .password_space();
        assert!(two > one * 8);
    }

    #[test]
    fn alphabet_rejects_bad_inputs() {
        assert!(PasswordAlphabet::new(vec![], Concentration::new(100.0), 8).is_err());
        assert!(PasswordAlphabet::new(
            vec![ParticleKind::RedBloodCell],
            Concentration::new(100.0),
            8
        )
        .is_err());
        assert!(PasswordAlphabet::new(
            vec![ParticleKind::Bead78, ParticleKind::Bead78],
            Concentration::new(100.0),
            8
        )
        .is_err());
        assert!(PasswordAlphabet::new(vec![ParticleKind::Bead78], Concentration::ZERO, 8).is_err());
        assert!(
            PasswordAlphabet::new(vec![ParticleKind::Bead78], Concentration::new(100.0), 0)
                .is_err()
        );
    }

    #[test]
    fn password_validation() {
        let a = alphabet();
        assert!(CytoPassword::new(&a, vec![3, 5]).is_ok());
        assert_eq!(
            CytoPassword::new(&a, vec![3]).unwrap_err(),
            PasswordError::WrongArity {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            CytoPassword::new(&a, vec![3, 9]).unwrap_err(),
            PasswordError::LevelOutOfRange { level: 9, max: 8 }
        );
        assert_eq!(
            CytoPassword::new(&a, vec![0, 0]).unwrap_err(),
            PasswordError::Empty
        );
    }

    #[test]
    fn doses_skip_zero_levels_and_scale_linearly() {
        let a = alphabet();
        let pw = CytoPassword::new(&a, vec![0, 4]).unwrap();
        let doses = pw.to_doses(&a);
        assert_eq!(doses.len(), 1);
        assert_eq!(doses[0].kind, ParticleKind::Bead78);
        assert_eq!(doses[0].concentration.value(), 2000.0);
    }

    #[test]
    fn expected_signature_scales_with_volume() {
        let a = alphabet();
        let pw = CytoPassword::new(&a, vec![2, 1]).unwrap();
        let sig = pw.expected_signature(&a, Microliters::new(0.5));
        assert_eq!(sig.count(ParticleKind::Bead358), 500);
        assert_eq!(sig.count(ParticleKind::Bead78), 250);
    }

    #[test]
    fn distance_is_linf() {
        let a = alphabet();
        let p = CytoPassword::new(&a, vec![3, 5]).unwrap();
        let q = CytoPassword::new(&a, vec![5, 4]).unwrap();
        assert_eq!(p.distance(&q), 2);
    }

    #[test]
    fn low_levels_resolve_better_than_high_levels() {
        // Paper: "lower bead concentrations have less variance and improved
        // resolution" — the unambiguous level count shrinks as tolerance
        // grows, because high levels' absolute bands widen.
        let a = alphabet();
        assert_eq!(a.max_unambiguous_level(0.0), 8);
        let tight = a.max_unambiguous_level(0.05);
        let loose = a.max_unambiguous_level(0.25);
        assert!(tight > loose, "tight {tight} loose {loose}");
        assert!(loose >= 1);
    }

    #[test]
    fn collision_free_dictionary_respects_separation() {
        let a = alphabet();
        let dict = a.collision_free_dictionary(2);
        assert!(!dict.is_empty());
        for (i, p) in dict.iter().enumerate() {
            for q in &dict[i + 1..] {
                assert!(p.distance(q) >= 2, "{p:?} vs {q:?}");
            }
        }
        // Separation 1 = every password.
        assert_eq!(
            a.collision_free_dictionary(1).len() as u64,
            a.password_space()
        );
    }

    #[test]
    fn credential_round_trips_through_the_codec() {
        let a = alphabet();
        for levels in [vec![2, 6], vec![0, 1], vec![8, 8]] {
            let pw = CytoPassword::new(&a, levels).unwrap();
            let bytes = pw.encode(&a);
            assert_eq!(bytes.len(), 3 + 2 + 4);
            assert_eq!(CytoPassword::decode(&a, &bytes).unwrap(), pw);
        }
    }

    #[test]
    fn codec_rejects_truncation_and_bit_flips() {
        let a = alphabet();
        let bytes = CytoPassword::new(&a, vec![2, 6]).unwrap().encode(&a);
        for len in 0..bytes.len() {
            assert!(
                CytoPassword::decode(&a, &bytes[..len]).is_err(),
                "accepted {len}-byte prefix"
            );
        }
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert!(
                CytoPassword::decode(&a, &flipped).is_err(),
                "accepted flip of bit {bit}"
            );
        }
    }

    #[test]
    fn codec_rejects_foreign_alphabet_geometry() {
        let a = alphabet();
        let other = PasswordAlphabet::new(a.bead_types().to_vec(), a.level_step, 4).unwrap();
        let bytes = CytoPassword::new(&other, vec![2, 3])
            .unwrap()
            .encode(&other);
        assert_eq!(
            CytoPassword::decode(&a, &bytes),
            Err(CredentialDecodeError::AlphabetMismatch {
                encoded_max_level: 4,
                alphabet_max_level: 8,
            })
        );
    }

    #[test]
    fn dictionary_shrinks_with_separation() {
        let a = alphabet();
        let d1 = a.collision_free_dictionary(1).len();
        let d2 = a.collision_free_dictionary(2).len();
        let d4 = a.collision_free_dictionary(4).len();
        assert!(d1 > d2 && d2 > d4, "{d1} {d2} {d4}");
    }
}
