//! The end-to-end diagnostic pipeline (Fig. 2).
//!
//! One session walks the full MedSen path: the patient's diluted blood is
//! mixed with their password beads, pumped through the channel, acquired
//! under the cipher, CSV-serialized and LZW-compressed on the phone,
//! uploaded (modeled 4G), peak-analyzed in the cloud, and the peak report is
//! returned to the controller for decryption and a threshold verdict — with
//! the paper's timing breakdown collected along the way.

use crate::diagnostics::{DiagnosticRule, Verdict};
use crate::password::{CytoPassword, PasswordAlphabet};
use medsen_cloud::{AnalysisServer, AuthDecision, AuthService, BeadSignature};
use medsen_dsp::classify::Classifier;
use medsen_microfluidics::{
    mix_password_beads, ChannelGeometry, ParticleClass, ParticleKind, PeristalticPump, SampleSpec,
    TransportSimulator,
};
use medsen_phone::profile::DeviceProfile;
use medsen_phone::{
    compress, from_json, to_json, trace_from_csv, trace_to_csv, CompressionStats, Frame,
    MessageType, NetworkLink,
};
use medsen_sensor::{Controller, ControllerConfig, EncryptedAcquisition};
use medsen_units::{Microliters, Seconds};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Whether a session runs the cipher (diagnosis) or the encryption-off
/// authentication path (Sec. V: "the bead sample is fed to MedSen's
/// bio-sensor with the bio-sensor level encryption turned off").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionMode {
    /// Encrypted acquisition; the controller decrypts the returned count.
    EncryptedDiagnosis,
    /// Plaintext acquisition; the server classifies beads and authenticates.
    PlaintextAuthentication,
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Deterministic seed for transport, noise, and key generation.
    pub seed: u64,
    /// Blood dilution into PBS before the run.
    pub dilution: f64,
    /// Acquisition window.
    pub duration: Seconds,
    /// Session mode.
    pub mode: SessionMode,
    /// Controller policy.
    pub controller: ControllerConfig,
}

impl PipelineConfig {
    /// A representative one-minute encrypted diagnostic run. The 20 000×
    /// dilution keeps the particle rate low enough that the multiplied,
    /// width-randomized dip trains of different particles rarely overlap —
    /// the regime impedance cytometry needs anyway.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            seed,
            dilution: 20_000.0,
            duration: Seconds::new(60.0),
            mode: SessionMode::EncryptedDiagnosis,
            controller: ControllerConfig::paper_default(),
        }
    }

    /// An authentication run (plaintext path).
    pub fn auth_default(seed: u64) -> Self {
        Self {
            mode: SessionMode::PlaintextAuthentication,
            ..Self::paper_default(seed)
        }
    }
}

/// Post-acquisition timing breakdown (the paper's ≈ 0.2 s claim covers the
/// signal-processing path, not the fluidics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Acquisition (fluidics) window — excluded from the end-to-end figure.
    pub acquisition_s: f64,
    /// Measured wall-clock of CSV serialization + LZW compression.
    pub compression_s: f64,
    /// Modeled 4G upload of the compressed payload.
    pub upload_s: f64,
    /// Modeled cloud analysis time (Fig. 14 computer profile).
    pub analysis_s: f64,
    /// Modeled download of the peak report.
    pub download_s: f64,
    /// Measured wall-clock of controller-side decryption.
    pub decryption_s: f64,
}

impl TimingBreakdown {
    /// The paper's end-to-end metric: everything after acquisition.
    pub fn post_acquisition_s(&self) -> f64 {
        self.compression_s + self.upload_s + self.analysis_s + self.download_s + self.decryption_s
    }
}

/// Everything one session produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Session mode.
    pub mode: SessionMode,
    /// The user the pipette belongs to.
    pub user_id: String,
    /// Ground truth: blood cells that actually crossed the sensor.
    pub true_cells: usize,
    /// Ground truth: password beads that actually crossed the sensor.
    pub true_beads: usize,
    /// Peaks the cloud observed (the encrypted count).
    pub peak_count: usize,
    /// Decrypted particle count (encrypted mode only).
    pub decoded_total: Option<u64>,
    /// Decrypted *cell* count after subtracting the expected bead dose.
    pub decoded_cells: Option<u64>,
    /// Diagnostic verdict (encrypted mode only).
    pub verdict: Option<Verdict>,
    /// Authentication outcome (plaintext mode only).
    pub auth: Option<AuthDecision>,
    /// Bead signature the server measured (plaintext mode only).
    pub measured_signature: Option<BeadSignature>,
    /// Compression statistics of the uploaded payload.
    pub compression: CompressionStats,
    /// Timing breakdown.
    pub timing: TimingBreakdown,
}

/// The assembled MedSen system.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    alphabet: PasswordAlphabet,
    rule: DiagnosticRule,
    server: AnalysisServer,
    auth: AuthService,
    classifier: Option<Classifier>,
    link: NetworkLink,
    cloud_profile: DeviceProfile,
    session_counter: u64,
}

impl Pipeline {
    /// Builds a pipeline with the paper's defaults.
    pub fn new(config: PipelineConfig, alphabet: PasswordAlphabet, rule: DiagnosticRule) -> Self {
        Self {
            config,
            alphabet,
            rule,
            server: AnalysisServer::paper_default(),
            auth: AuthService::new(),
            classifier: None,
            link: NetworkLink::lte_uplink(),
            cloud_profile: DeviceProfile::paper_computer(),
            session_counter: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &PasswordAlphabet {
        &self.alphabet
    }

    /// The server-side auth service.
    pub fn auth(&self) -> &AuthService {
        &self.auth
    }

    /// Mutable access to the server-side auth service (for enrollment).
    pub fn auth_mut(&mut self) -> &mut AuthService {
        &mut self.auth
    }

    /// The volume of sample the pump processes during one session.
    pub fn processed_volume(&self) -> Microliters {
        PeristalticPump::paper_default()
            .profile()
            .rate_at(Seconds::ZERO)
            .volume_after(self.config.duration)
    }

    /// Trains the bead/cell classifier from plaintext calibration runs —
    /// the "training" the paper does when establishing Figs. 15–16. Must be
    /// called before authentication sessions.
    pub fn calibrate_classifier(&mut self) {
        let kinds = [
            ParticleKind::Bead358,
            ParticleKind::Bead78,
            ParticleKind::RedBloodCell,
            ParticleKind::WhiteBloodCell,
        ];
        let mut training: Vec<(&str, Vec<medsen_dsp::features::FeatureVector>)> = Vec::new();
        for (i, kind) in kinds.into_iter().enumerate() {
            let seed = self.config.seed.wrapping_add(1000 + i as u64);
            let mut sim = TransportSimulator::new(
                ChannelGeometry::paper_default(),
                PeristalticPump::paper_default(),
                seed,
            );
            let duration = Seconds::new(90.0);
            let events = sim.run_exact_count(kind, 80, duration);
            let mut controller = Controller::new(
                *EncryptedAcquisition::paper_default(seed).array(),
                self.config.controller,
                seed,
            );
            let schedule = controller.plaintext_schedule().clone();
            let mut acq = EncryptedAcquisition::paper_default(seed);
            let out = acq.run(&events, &schedule, duration);
            let report = self.server.analyze(&out.trace);
            let vectors: Vec<medsen_dsp::features::FeatureVector> = report
                .peaks
                .iter()
                .enumerate()
                .map(|(idx, p)| medsen_dsp::features::FeatureVector {
                    index: idx,
                    amplitudes: p.features.clone(),
                })
                .collect();
            training.push((kind.label(), vectors));
        }
        self.classifier = Some(Classifier::train(&training).expect("calibration produces peaks"));
    }

    /// Whether the classifier has been calibrated.
    pub fn is_calibrated(&self) -> bool {
        self.classifier.is_some()
    }

    /// Runs one complete diagnostic session for a user/password pair.
    ///
    /// # Panics
    ///
    /// Panics if an authentication session runs before
    /// [`Pipeline::calibrate_classifier`].
    pub fn run_session(&mut self, user_id: &str, password: &CytoPassword) -> SessionReport {
        self.session_counter += 1;
        let seed = self
            .config
            .seed
            .wrapping_add(self.session_counter.wrapping_mul(7919));

        // 1. Sample preparation: dilute blood, mix in the password beads.
        let blood = SampleSpec::whole_blood_dilution(Microliters::new(10.0), self.config.dilution);
        let doses = password.to_doses(&self.alphabet);
        let mixed = mix_password_beads(&blood, &doses).expect("password doses are valid beads");

        // 2. Fluidics: transport the sample through the channel.
        let mut sim = TransportSimulator::new(
            ChannelGeometry::paper_default(),
            PeristalticPump::paper_default(),
            seed,
        );
        let events = sim.run(&mixed, self.config.duration);

        // 3. Trusted acquisition under the session key schedule.
        let mut acq = EncryptedAcquisition::paper_default(seed);
        let mut controller = Controller::new(*acq.array(), self.config.controller, seed);
        let schedule = match self.config.mode {
            SessionMode::EncryptedDiagnosis => {
                controller.generate_schedule(self.config.duration).clone()
            }
            SessionMode::PlaintextAuthentication => controller.plaintext_schedule().clone(),
        };
        let output = acq.run(&events, &schedule, self.config.duration);
        let true_cells = output
            .true_counts()
            .iter()
            .filter(|(k, _)| k.class() == ParticleClass::Cell)
            .map(|(_, &n)| n)
            .sum();
        let true_beads = output
            .true_counts()
            .iter()
            .filter(|(k, _)| k.class() == ParticleClass::Bead)
            .map(|(_, &n)| n)
            .sum();

        // 4. Phone relay: CSV + LZW, modeled 4G upload.
        let t0 = Instant::now();
        let csv = trace_to_csv(&output.trace);
        let compressed = compress(csv.as_bytes());
        let compression_s = t0.elapsed().as_secs_f64();
        let compression = CompressionStats {
            raw_bytes: csv.len(),
            compressed_bytes: compressed.len(),
        };
        let upload_s = self.link.transfer_time(compressed.len()).value();

        // 5. Cloud: decompress, parse, analyze. Analysis wall time is
        //    measured here but the *reported* figure uses the Fig. 14 cloud
        //    profile so results are hardware-independent.
        let restored = medsen_phone::decompress(&compressed).expect("phone-encoded stream");
        let csv_text = String::from_utf8(restored).expect("CSV is UTF-8");
        let received = trace_from_csv(&csv_text).expect("phone-encoded CSV");
        let report = self.server.analyze(&received);
        let analysis_s = self.cloud_profile.predict(received.total_samples()).value();

        // The result travels back as a JSON body in an AnalysisResult frame
        // (cloud → phone → sensor), so the return path is as concrete as the
        // uplink.
        let result_json = to_json(&report).expect("peak reports are JSON-safe");
        let result_frame = Frame::new(MessageType::AnalysisResult, result_json.into_bytes());
        let wire = result_frame.encode();
        let download_s = self.link.transfer_time(wire.len()).value();
        let (received_frame, _) = Frame::decode(&wire).expect("frame round-trips");
        let report: medsen_cloud::PeakReport =
            from_json(std::str::from_utf8(&received_frame.payload).expect("JSON is UTF-8"))
                .expect("phone-encoded report parses");

        // 6. Mode-specific tail: decrypt + diagnose, or authenticate.
        let mut decoded_total = None;
        let mut decoded_cells = None;
        let mut verdict = None;
        let mut auth = None;
        let mut measured_signature = None;
        let t1 = Instant::now();
        match self.config.mode {
            SessionMode::EncryptedDiagnosis => {
                // Re-centre dips onto their arrival period: mean dip delay is
                // half the electrode-array span at the nominal velocity.
                let geometry = ChannelGeometry::paper_default();
                let nominal_v = PeristalticPump::paper_default().velocity_at(
                    Seconds::ZERO,
                    geometry.pore_width,
                    geometry.pore_height,
                );
                let delay = Seconds::new(acq.array().span(&geometry).value() / (2.0 * nominal_v));
                let decryptor = controller.decryptor_with_delay(delay);
                let decrypted = decryptor.decrypt(&report.reported_peaks());
                let total = decrypted.rounded();
                // The controller knows the pipette's bead dose and removes it
                // from the decoded total before diagnosis.
                let expected_beads: f64 = doses
                    .iter()
                    .map(|d| d.concentration.expected_count(self.processed_volume()))
                    .sum();
                let cells = (total as f64 - expected_beads).max(0.0).round() as u64;
                verdict = Some(self.rule.evaluate_count(
                    cells,
                    self.processed_volume(),
                    self.config.dilution,
                ));
                decoded_total = Some(total);
                decoded_cells = Some(cells);
            }
            SessionMode::PlaintextAuthentication => {
                let classifier = self
                    .classifier
                    .as_ref()
                    .expect("calibrate_classifier before authentication sessions");
                let signature = self.auth.measure_signature(&report, classifier);
                auth = Some(self.auth.authenticate(&signature));
                measured_signature = Some(signature);
            }
        }
        let decryption_s = t1.elapsed().as_secs_f64();

        SessionReport {
            mode: self.config.mode,
            user_id: user_id.to_owned(),
            true_cells,
            true_beads,
            peak_count: report.peak_count(),
            decoded_total,
            decoded_cells,
            verdict,
            auth,
            measured_signature,
            compression,
            timing: TimingBreakdown {
                acquisition_s: self.config.duration.value(),
                compression_s,
                upload_s,
                analysis_s,
                download_s,
                decryption_s,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::password::PasswordAlphabet;

    fn pipeline(mode: SessionMode, seed: u64) -> Pipeline {
        // Encrypted-diagnosis tests use a low-dose identifier alphabet: the
        // multiplied, width-stretched dip trains of the cipher need a sparse
        // particle stream to stay separable at the 450 Hz output rate (the
        // paper's own encrypted traces carry one bead per frame).
        let (config, alphabet) = match mode {
            SessionMode::EncryptedDiagnosis => (
                PipelineConfig {
                    duration: Seconds::new(30.0),
                    ..PipelineConfig::paper_default(seed)
                },
                PasswordAlphabet::new(
                    vec![
                        medsen_microfluidics::ParticleKind::Bead358,
                        medsen_microfluidics::ParticleKind::Bead78,
                    ],
                    medsen_units::Concentration::new(100.0),
                    8,
                )
                .expect("valid low-dose alphabet"),
            ),
            SessionMode::PlaintextAuthentication => (
                PipelineConfig {
                    duration: Seconds::new(20.0),
                    ..PipelineConfig::auth_default(seed)
                },
                PasswordAlphabet::paper_default(),
            ),
        };
        Pipeline::new(config, alphabet, DiagnosticRule::cd4_staging())
    }

    fn password(p: &Pipeline, levels: Vec<u8>) -> CytoPassword {
        CytoPassword::new(p.alphabet(), levels).expect("valid test password")
    }

    #[test]
    fn encrypted_session_recovers_particle_count() {
        let mut p = pipeline(SessionMode::EncryptedDiagnosis, 42);
        let pw = password(&p, vec![1, 1]);
        let report = p.run_session("alice", &pw);
        let truth = (report.true_cells + report.true_beads) as f64;
        let decoded = report.decoded_total.expect("encrypted mode decodes") as f64;
        assert!(truth > 10.0, "expected a populated run, got {truth}");
        let rel_err = (decoded - truth).abs() / truth;
        assert!(
            rel_err < 0.30,
            "decoded {decoded} vs truth {truth} (err {rel_err:.2})"
        );
        assert!(report.verdict.is_some());
    }

    #[test]
    fn encrypted_peak_count_exceeds_true_count() {
        // The whole point of the cipher: the cloud sees multiplied peaks.
        let mut p = pipeline(SessionMode::EncryptedDiagnosis, 43);
        let pw = password(&p, vec![1, 1]);
        let report = p.run_session("alice", &pw);
        let truth = report.true_cells + report.true_beads;
        assert!(
            report.peak_count as f64 > 1.5 * truth as f64,
            "peaks {} vs truth {truth}",
            report.peak_count
        );
    }

    #[test]
    fn auth_session_accepts_the_enrolled_user() {
        let mut p = pipeline(SessionMode::PlaintextAuthentication, 44);
        p.calibrate_classifier();
        let alice = password(&p, vec![2, 4]);
        let bob = password(&p, vec![6, 1]);
        let volume = p.processed_volume();
        let alphabet = p.alphabet().clone();
        p.auth_mut()
            .enroll("alice", alice.expected_signature(&alphabet, volume));
        p.auth_mut()
            .enroll("bob", bob.expected_signature(&alphabet, volume));
        let report = p.run_session("alice", &alice);
        assert_eq!(
            report.auth,
            Some(AuthDecision::Accepted {
                user_id: "alice".into()
            })
        );
    }

    #[test]
    fn auth_session_rejects_a_wrong_password() {
        let mut p = pipeline(SessionMode::PlaintextAuthentication, 45);
        p.calibrate_classifier();
        let alice = password(&p, vec![2, 4]);
        let volume = p.processed_volume();
        let alphabet = p.alphabet().clone();
        p.auth_mut()
            .enroll("alice", alice.expected_signature(&alphabet, volume));
        // An attacker with buffer only (no beads → empty signature path) or
        // the wrong mixture must not authenticate as alice.
        let wrong = password(&p, vec![7, 1]);
        let report = p.run_session("mallory", &wrong);
        assert_ne!(
            report.auth,
            Some(AuthDecision::Accepted {
                user_id: "alice".into()
            })
        );
    }

    #[test]
    fn compression_achieves_paper_band() {
        let mut p = pipeline(SessionMode::EncryptedDiagnosis, 46);
        let pw = password(&p, vec![1, 1]);
        let report = p.run_session("alice", &pw);
        let ratio = report.compression.ratio();
        assert!(ratio > 2.0, "compression ratio {ratio}");
    }

    #[test]
    fn timing_breakdown_is_populated_and_positive() {
        let mut p = pipeline(SessionMode::EncryptedDiagnosis, 47);
        let pw = password(&p, vec![1, 1]);
        let report = p.run_session("alice", &pw);
        let t = report.timing;
        assert!(t.compression_s > 0.0);
        assert!(t.upload_s > 0.0);
        assert!(t.analysis_s > 0.0);
        assert!(t.decryption_s >= 0.0);
        assert!(
            t.post_acquisition_s() < 60.0,
            "post-acq {}",
            t.post_acquisition_s()
        );
    }

    #[test]
    #[should_panic(expected = "calibrate_classifier")]
    fn auth_without_calibration_panics() {
        let mut p = pipeline(SessionMode::PlaintextAuthentication, 48);
        let pw = password(&p, vec![2, 4]);
        let _ = p.run_session("alice", &pw);
    }

    #[test]
    fn processed_volume_matches_pump_math() {
        let p = pipeline(SessionMode::EncryptedDiagnosis, 49);
        let expected = 0.08 * p.config().duration.value() / 60.0;
        let v = p.processed_volume().value();
        assert!((v - expected).abs() < 1e-12, "v = {v}, expected {expected}");
    }
}
