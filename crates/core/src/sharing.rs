//! Practitioner key sharing — the extension the paper describes but leaves
//! unimplemented: "MedSen's design also allows (not implemented) sharing of
//! the generated keys with trusted parties, e.g., the patient's
//! practitioners, so that they could also access the cloud-based analysis
//! outcomes remotely" (Sec. VII-B).
//!
//! Design: the controller never exports raw key material (`CipherKey` is not
//! even serializable). Instead it derives a **decryption capability** — the
//! per-period *multiplication factors* plus timing — which is the minimal
//! projection of the key needed to decrypt counts. The capability reveals
//! *how many* dips each period multiplies a particle into, but not *which
//! electrodes* were active, their gains, or the flow settings, so a leaked
//! capability does not let an attacker forge or re-shape ciphertexts.
//!
//! The capability travels inside a [`SealedCapability`]: an
//! authenticated stream-cipher envelope keyed by a secret shared between the
//! patient's controller and the practitioner. The envelope uses the ChaCha
//! keystream of Rust's `StdRng` plus a keyed Fletcher-style tag; it is a
//! faithful stand-in for an AEAD (the approved dependency set has no crypto
//! crate), and the sealing format is versioned so a real AEAD can replace it.

use crate::pipeline::SessionMode;
use medsen_sensor::{Controller, DecryptedCount, KeySchedule, ReportedPeak};
use medsen_units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The decryption capability: everything a practitioner needs to decrypt
/// counts, and nothing more.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecryptionCapability {
    /// Key rotation period (seconds); 0 encodes a static schedule.
    pub period_s: f64,
    /// Peak multiplication factor per period, in period order.
    pub multiplicities: Vec<u32>,
    /// Mean dip delay for period re-centring (seconds).
    pub dip_delay_s: f64,
}

impl DecryptionCapability {
    /// Derives the capability from a controller's installed schedule.
    ///
    /// # Panics
    ///
    /// Panics if the controller has no schedule installed.
    pub fn derive(controller: &Controller, dip_delay: Seconds) -> Self {
        let array = *controller.array();
        let schedule = controller
            .schedule()
            .expect("derive a capability after generating a schedule");
        match schedule {
            KeySchedule::Static(key) => Self {
                period_s: 0.0,
                multiplicities: vec![key.multiplicity(&array) as u32],
                dip_delay_s: dip_delay.value(),
            },
            KeySchedule::Periodic { period, keys } => Self {
                period_s: period.value(),
                multiplicities: keys.iter().map(|k| k.multiplicity(&array) as u32).collect(),
                dip_delay_s: dip_delay.value(),
            },
        }
    }

    /// Decrypts a peak report — the same per-period division the controller
    /// performs, reconstructed from the capability alone.
    pub fn decrypt(&self, peaks: &[ReportedPeak]) -> DecryptedCount {
        use std::collections::BTreeMap;
        let mut by_period: BTreeMap<usize, usize> = BTreeMap::new();
        for p in peaks {
            let t = (p.time_s - self.dip_delay_s).max(0.0);
            let idx = if self.period_s > 0.0 {
                (t / self.period_s).floor() as usize
            } else {
                0
            };
            *by_period.entry(idx).or_insert(0) += 1;
        }
        let mut estimated = 0.0;
        let mut periods = Vec::with_capacity(by_period.len());
        for (idx, count) in by_period {
            let multiplicity = if self.multiplicities.is_empty() {
                1
            } else {
                self.multiplicities[idx % self.multiplicities.len()].max(1) as usize
            };
            estimated += count as f64 / multiplicity as f64;
            periods.push((idx, count, multiplicity));
        }
        DecryptedCount { estimated, periods }
    }
}

/// Sealing/unsealing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// The envelope is too short to contain a header and tag.
    Truncated,
    /// Unknown envelope version.
    BadVersion(u8),
    /// Authentication tag mismatch (wrong secret or tampered envelope).
    BadTag,
    /// The plaintext did not decode as a capability.
    BadPayload,
}

impl core::fmt::Display for SealError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SealError::Truncated => write!(f, "sealed capability truncated"),
            SealError::BadVersion(v) => write!(f, "unsupported envelope version {v}"),
            SealError::BadTag => write!(f, "authentication failed (wrong secret or tampered)"),
            SealError::BadPayload => write!(f, "capability payload malformed"),
        }
    }
}

impl std::error::Error for SealError {}

/// An authenticated, encrypted capability envelope.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedCapability {
    bytes: Vec<u8>,
}

const ENVELOPE_VERSION: u8 = 1;
const TAG_LEN: usize = 8;

fn keystream(secret: u64, nonce: u64, len: usize) -> Vec<u8> {
    // ChaCha12 keystream via StdRng, keyed by secret ⊕ nonce mixing.
    let mut rng = StdRng::seed_from_u64(secret ^ nonce.rotate_left(17));
    (0..len).map(|_| rng.random::<u8>()).collect()
}

fn tag(secret: u64, nonce: u64, data: &[u8]) -> [u8; TAG_LEN] {
    // Keyed tag: absorb the data into a second keystream-fed accumulator.
    let mut rng = StdRng::seed_from_u64(secret.rotate_left(31) ^ nonce);
    let mut acc = [0u8; TAG_LEN];
    for (i, &b) in data.iter().enumerate() {
        let k: u8 = rng.random();
        acc[i % TAG_LEN] = acc[i % TAG_LEN].wrapping_mul(31).wrapping_add(b ^ k);
    }
    // Final stir.
    for slot in acc.iter_mut() {
        let k: u8 = rng.random();
        *slot ^= k;
    }
    acc
}

fn encode_capability(cap: &DecryptionCapability) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&cap.period_s.to_be_bytes());
    out.extend_from_slice(&cap.dip_delay_s.to_be_bytes());
    out.extend_from_slice(&(cap.multiplicities.len() as u32).to_be_bytes());
    for m in &cap.multiplicities {
        out.extend_from_slice(&m.to_be_bytes());
    }
    out
}

fn decode_capability(bytes: &[u8]) -> Option<DecryptionCapability> {
    if bytes.len() < 20 {
        return None;
    }
    let period_s = f64::from_be_bytes(bytes[0..8].try_into().ok()?);
    let dip_delay_s = f64::from_be_bytes(bytes[8..16].try_into().ok()?);
    let n = u32::from_be_bytes(bytes[16..20].try_into().ok()?) as usize;
    if bytes.len() != 20 + 4 * n {
        return None;
    }
    let multiplicities = (0..n)
        .map(|i| {
            let s = 20 + 4 * i;
            u32::from_be_bytes(bytes[s..s + 4].try_into().expect("bounds checked"))
        })
        .collect();
    if !period_s.is_finite() || !dip_delay_s.is_finite() || period_s < 0.0 {
        return None;
    }
    Some(DecryptionCapability {
        period_s,
        multiplicities,
        dip_delay_s,
    })
}

impl SealedCapability {
    /// Seals a capability under a shared secret with a caller-chosen nonce
    /// (must be unique per seal; e.g. a session counter).
    pub fn seal(cap: &DecryptionCapability, shared_secret: u64, nonce: u64) -> Self {
        let plain = encode_capability(cap);
        let ks = keystream(shared_secret, nonce, plain.len());
        let cipher: Vec<u8> = plain.iter().zip(&ks).map(|(p, k)| p ^ k).collect();
        let mut bytes = Vec::with_capacity(1 + 8 + cipher.len() + TAG_LEN);
        bytes.push(ENVELOPE_VERSION);
        bytes.extend_from_slice(&nonce.to_be_bytes());
        bytes.extend_from_slice(&cipher);
        bytes.extend_from_slice(&tag(shared_secret, nonce, &cipher));
        Self { bytes }
    }

    /// Unseals with the shared secret.
    ///
    /// # Errors
    ///
    /// Returns a [`SealError`] on truncation, version mismatch, tag failure
    /// (wrong secret or tampering), or payload corruption.
    pub fn unseal(&self, shared_secret: u64) -> Result<DecryptionCapability, SealError> {
        if self.bytes.len() < 1 + 8 + TAG_LEN {
            return Err(SealError::Truncated);
        }
        let version = self.bytes[0];
        if version != ENVELOPE_VERSION {
            return Err(SealError::BadVersion(version));
        }
        let nonce = u64::from_be_bytes(self.bytes[1..9].try_into().expect("length checked"));
        let body = &self.bytes[9..self.bytes.len() - TAG_LEN];
        let got_tag = &self.bytes[self.bytes.len() - TAG_LEN..];
        if tag(shared_secret, nonce, body) != *got_tag {
            return Err(SealError::BadTag);
        }
        let ks = keystream(shared_secret, nonce, body.len());
        let plain: Vec<u8> = body.iter().zip(&ks).map(|(c, k)| c ^ k).collect();
        decode_capability(&plain).ok_or(SealError::BadPayload)
    }

    /// Envelope size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Envelopes are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Convenience: derive + seal a capability for a session mode, straight from
/// the controller.
///
/// # Panics
///
/// Panics if the controller has no schedule.
pub fn share_with_practitioner(
    controller: &Controller,
    dip_delay: Seconds,
    mode: SessionMode,
    shared_secret: u64,
    nonce: u64,
) -> SealedCapability {
    debug_assert!(
        mode == SessionMode::EncryptedDiagnosis,
        "plaintext sessions need no capability"
    );
    let cap = DecryptionCapability::derive(controller, dip_delay);
    SealedCapability::seal(&cap, shared_secret, nonce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_sensor::{ControllerConfig, ElectrodeArray};

    fn controller_with_schedule(seed: u64) -> Controller {
        let mut c = Controller::new(
            ElectrodeArray::paper_prototype(),
            ControllerConfig::paper_default(),
            seed,
        );
        c.generate_schedule(Seconds::new(20.0));
        c
    }

    fn peaks_at(times: &[f64]) -> Vec<ReportedPeak> {
        times
            .iter()
            .map(|&t| ReportedPeak {
                time_s: t,
                amplitude: 0.004,
                width_s: 0.01,
            })
            .collect()
    }

    #[test]
    fn capability_decrypts_like_the_controller() {
        let c = controller_with_schedule(1);
        let cap = DecryptionCapability::derive(&c, Seconds::new(0.3));
        let peaks = peaks_at(&[0.5, 1.0, 2.0, 6.0, 7.0, 11.0, 12.5, 16.0]);
        let own = c.decryptor_with_delay(Seconds::new(0.3)).decrypt(&peaks);
        let shared = cap.decrypt(&peaks);
        assert!((own.estimated - shared.estimated).abs() < 1e-9);
        assert_eq!(own.periods, shared.periods);
    }

    #[test]
    fn seal_unseal_round_trip() {
        let c = controller_with_schedule(2);
        let cap = DecryptionCapability::derive(&c, Seconds::new(0.37));
        let sealed = SealedCapability::seal(&cap, 0xDEADBEEF, 42);
        let opened = sealed.unseal(0xDEADBEEF).expect("correct secret");
        assert_eq!(opened, cap);
    }

    #[test]
    fn wrong_secret_is_rejected() {
        let c = controller_with_schedule(3);
        let cap = DecryptionCapability::derive(&c, Seconds::ZERO);
        let sealed = SealedCapability::seal(&cap, 111, 1);
        assert_eq!(sealed.unseal(222).unwrap_err(), SealError::BadTag);
    }

    #[test]
    fn tampered_envelope_is_rejected() {
        let c = controller_with_schedule(4);
        let cap = DecryptionCapability::derive(&c, Seconds::ZERO);
        let mut sealed = SealedCapability::seal(&cap, 99, 7);
        let mid = sealed.bytes.len() / 2;
        sealed.bytes[mid] ^= 0x10;
        assert_eq!(sealed.unseal(99).unwrap_err(), SealError::BadTag);
    }

    #[test]
    fn truncated_and_versioned_envelopes_are_rejected() {
        let c = controller_with_schedule(5);
        let cap = DecryptionCapability::derive(&c, Seconds::ZERO);
        let sealed = SealedCapability::seal(&cap, 99, 7);
        let short = SealedCapability {
            bytes: sealed.bytes[..8].to_vec(),
        };
        assert_eq!(short.unseal(99).unwrap_err(), SealError::Truncated);
        let mut wrong_version = sealed.clone();
        wrong_version.bytes[0] = 9;
        assert_eq!(
            wrong_version.unseal(99).unwrap_err(),
            SealError::BadVersion(9)
        );
    }

    #[test]
    fn capability_hides_electrode_identities() {
        // Two different selections with the same multiplicity produce
        // identical capabilities — the practitioner learns only the factor.
        use medsen_sensor::{CipherKey, ElectrodeId, ElectrodeSelection, FlowLevel, GainLevel};
        let array = ElectrodeArray::paper_prototype();
        let mk = |ids: &[u8]| {
            KeySchedule::Static(CipherKey {
                selection: ElectrodeSelection::new(
                    &array,
                    &ids.iter().map(|&i| ElectrodeId(i)).collect::<Vec<_>>(),
                )
                .expect("valid ids"),
                gains: vec![GainLevel::unity(); 9],
                flow: FlowLevel::nominal(),
            })
        };
        // Electrodes {1} and {5}: both non-lead, multiplicity 2.
        let cap_of = |schedule: &KeySchedule| match schedule {
            KeySchedule::Static(k) => DecryptionCapability {
                period_s: 0.0,
                multiplicities: vec![k.multiplicity(&array) as u32],
                dip_delay_s: 0.0,
            },
            KeySchedule::Periodic { .. } => unreachable!(),
        };
        assert_eq!(cap_of(&mk(&[1])), cap_of(&mk(&[5])));
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let c = controller_with_schedule(6);
        let cap = DecryptionCapability::derive(&c, Seconds::ZERO);
        let a = SealedCapability::seal(&cap, 5, 1);
        let b = SealedCapability::seal(&cap, 5, 2);
        assert_ne!(a, b);
        assert_eq!(a.unseal(5).unwrap(), b.unseal(5).unwrap());
    }

    #[test]
    fn static_schedule_capability_works() {
        let mut c = Controller::new(
            ElectrodeArray::paper_prototype(),
            ControllerConfig::paper_default(),
            8,
        );
        c.plaintext_schedule();
        let cap = DecryptionCapability::derive(&c, Seconds::ZERO);
        assert_eq!(cap.period_s, 0.0);
        assert_eq!(cap.multiplicities, vec![1]);
        let d = cap.decrypt(&peaks_at(&[0.1, 0.2, 0.3]));
        assert_eq!(d.rounded(), 3);
    }
}
