//! User enrollment and pipette provisioning.
//!
//! "A set of miniaturized micro-pipettes purchased by the same user would
//! embed the same identifier. Patients do not need to enter any information
//! such as their credentials on the phone or controller" (Sec. VI-B). The
//! registry assigns each user a password from a collision-free dictionary
//! and pushes the corresponding expected signatures into the cloud's
//! [`AuthService`].
//!
//! [`AuthService`]: medsen_cloud::AuthService

use crate::password::{CytoPassword, PasswordAlphabet};
use medsen_cloud::AuthService;
use medsen_units::Microliters;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How widely one identifier is reused (Sec. V): "It can be associated
/// either to a single diagnostic (different identifiers per pipette),
/// several diagnostics (multiple pipettes carrying the same identifier) or
/// the entire set of diagnostics from a specific user ... depending on the
/// diagnostic privacy requirements."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdentifierScope {
    /// Every pipette of the user embeds the same identifier — convenient,
    /// but the cloud can link all of the user's diagnostics.
    PerUser,
    /// One fresh identifier per manufactured batch.
    PerBatch,
    /// One fresh identifier per pipette — maximal unlinkability; each
    /// diagnostic looks like a different anonymous identifier to the cloud.
    PerPipette,
}

/// A scoped provisioning result: the pipettes' identifiers plus the
/// anonymous aliases the cloud will know them by. Only the registry holds
/// the alias → user mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopedProvision {
    /// The owning user (private to the registry).
    pub user_id: String,
    /// The scope requested.
    pub scope: IdentifierScope,
    /// `(cloud alias, password)` per distinct identifier in the batch.
    pub identifiers: Vec<(String, CytoPassword)>,
    /// Pipettes manufactured per identifier.
    pub pipettes_per_identifier: usize,
}

/// A manufactured batch of pipettes all embedding one user's identifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipetteBatch {
    /// The owning user.
    pub user_id: String,
    /// Number of pipettes in the batch.
    pub count: usize,
    /// The embedded password.
    pub password: CytoPassword,
}

/// The provisioning-side user registry (lives with the pipette manufacturer
/// / enrollment authority, not in the cloud).
#[derive(Debug, Clone)]
pub struct UserRegistry {
    alphabet: PasswordAlphabet,
    dictionary: Vec<CytoPassword>,
    assignments: BTreeMap<String, CytoPassword>,
    /// Extra dictionary entries consumed by scoped (batch/pipette)
    /// identifiers, so they are never reassigned.
    scoped_allocations: Vec<CytoPassword>,
    alias_counter: u64,
}

impl UserRegistry {
    /// Creates a registry over an alphabet, pre-computing the collision-free
    /// dictionary at the given minimum level separation.
    pub fn new(alphabet: PasswordAlphabet, min_separation: u8) -> Self {
        let dictionary = alphabet.collision_free_dictionary(min_separation);
        Self {
            alphabet,
            dictionary,
            assignments: BTreeMap::new(),
            scoped_allocations: Vec::new(),
            alias_counter: 0,
        }
    }

    /// The alphabet in use.
    pub fn alphabet(&self) -> &PasswordAlphabet {
        &self.alphabet
    }

    /// Remaining unassigned capacity.
    pub fn capacity_left(&self) -> usize {
        self.dictionary.len() - self.assignments.len() - self.scoped_allocations.len()
    }

    fn next_free_password(&self) -> Option<CytoPassword> {
        self.dictionary
            .iter()
            .find(|p| {
                !self.assignments.values().any(|a| a == *p) && !self.scoped_allocations.contains(p)
            })
            .cloned()
    }

    /// Enrolls a user, assigning the next free dictionary password.
    ///
    /// # Errors
    ///
    /// Fails when the user already exists or the dictionary is exhausted.
    pub fn enroll(&mut self, user_id: impl Into<String>) -> Result<&CytoPassword, String> {
        let user_id = user_id.into();
        if self.assignments.contains_key(&user_id) {
            return Err(format!("user `{user_id}` already enrolled"));
        }
        let password = self
            .next_free_password()
            .ok_or_else(|| "password dictionary exhausted".to_owned())?;
        self.assignments.insert(user_id.clone(), password);
        Ok(&self.assignments[&user_id])
    }

    /// The password assigned to a user.
    pub fn password_of(&self, user_id: &str) -> Option<&CytoPassword> {
        self.assignments.get(user_id)
    }

    /// Manufactures a pipette batch for an enrolled user.
    ///
    /// # Errors
    ///
    /// Fails for unknown users or empty batches.
    pub fn provision(&self, user_id: &str, count: usize) -> Result<PipetteBatch, String> {
        if count == 0 {
            return Err("a batch needs at least one pipette".into());
        }
        let password = self
            .password_of(user_id)
            .ok_or_else(|| format!("user `{user_id}` not enrolled"))?;
        Ok(PipetteBatch {
            user_id: user_id.to_owned(),
            count,
            password: password.clone(),
        })
    }

    /// Provisions pipettes under an identifier scope. `PerUser` reuses the
    /// user's enrolled password; `PerBatch` and `PerPipette` consume fresh
    /// dictionary entries and return anonymous cloud aliases.
    ///
    /// # Errors
    ///
    /// Fails for unknown users, empty batches, or an exhausted dictionary.
    pub fn provision_scoped(
        &mut self,
        user_id: &str,
        count: usize,
        scope: IdentifierScope,
    ) -> Result<ScopedProvision, String> {
        if count == 0 {
            return Err("a batch needs at least one pipette".into());
        }
        if !self.assignments.contains_key(user_id) {
            return Err(format!("user `{user_id}` not enrolled"));
        }
        let n_identifiers = match scope {
            IdentifierScope::PerUser | IdentifierScope::PerBatch => 1,
            IdentifierScope::PerPipette => count,
        };
        let mut identifiers = Vec::with_capacity(n_identifiers);
        match scope {
            IdentifierScope::PerUser => {
                let pw = self.assignments[user_id].clone();
                identifiers.push((self.fresh_alias(), pw));
            }
            _ => {
                for _ in 0..n_identifiers {
                    let pw = self
                        .next_free_password()
                        .ok_or_else(|| "password dictionary exhausted".to_owned())?;
                    self.scoped_allocations.push(pw.clone());
                    identifiers.push((self.fresh_alias(), pw));
                }
            }
        }
        let pipettes_per_identifier = match scope {
            IdentifierScope::PerPipette => 1,
            _ => count,
        };
        Ok(ScopedProvision {
            user_id: user_id.to_owned(),
            scope,
            identifiers,
            pipettes_per_identifier,
        })
    }

    fn fresh_alias(&mut self) -> String {
        self.alias_counter += 1;
        format!("pipette-{:06}", self.alias_counter)
    }

    /// Enrolls a scoped provision's identifiers under their *anonymous
    /// aliases* — the cloud authenticates pipettes without learning which
    /// user they belong to; only the registry can map an alias back.
    pub fn sync_scoped_to_cloud(
        &self,
        provision: &ScopedProvision,
        auth: &mut AuthService,
        processed_volume: Microliters,
    ) {
        for (alias, password) in &provision.identifiers {
            auth.enroll(
                alias.clone(),
                password.expected_signature(&self.alphabet, processed_volume),
            );
        }
    }

    /// Pushes every enrolled user's *expected signature* (for the expected
    /// processed volume) into the cloud's authentication service.
    pub fn sync_to_cloud(&self, auth: &mut AuthService, processed_volume: Microliters) {
        for (user, password) in &self.assignments {
            auth.enroll(
                user.clone(),
                password.expected_signature(&self.alphabet, processed_volume),
            );
        }
    }

    /// Number of enrolled users.
    pub fn enrolled_count(&self) -> usize {
        self.assignments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_microfluidics::ParticleKind;

    fn registry() -> UserRegistry {
        UserRegistry::new(PasswordAlphabet::paper_default(), 2)
    }

    #[test]
    fn enrollment_assigns_distinct_passwords() {
        let mut r = registry();
        let a = r.enroll("alice").unwrap().clone();
        let b = r.enroll("bob").unwrap().clone();
        assert_ne!(a, b);
        assert!(a.distance(&b) >= 2);
        assert_eq!(r.enrolled_count(), 2);
    }

    #[test]
    fn duplicate_enrollment_is_rejected() {
        let mut r = registry();
        r.enroll("alice").unwrap();
        assert!(r.enroll("alice").is_err());
    }

    #[test]
    fn dictionary_exhaustion_is_reported() {
        let mut r = registry();
        let capacity = r.capacity_left();
        for i in 0..capacity {
            r.enroll(format!("user{i}")).unwrap();
        }
        assert_eq!(r.capacity_left(), 0);
        assert!(r.enroll("overflow").is_err());
    }

    #[test]
    fn provisioning_requires_enrollment() {
        let mut r = registry();
        assert!(r.provision("ghost", 5).is_err());
        r.enroll("alice").unwrap();
        let batch = r.provision("alice", 10).unwrap();
        assert_eq!(batch.count, 10);
        assert_eq!(&batch.password, r.password_of("alice").unwrap());
        assert!(r.provision("alice", 0).is_err());
    }

    #[test]
    fn cloud_sync_enrolls_expected_signatures() {
        let mut r = registry();
        r.enroll("alice").unwrap();
        r.enroll("bob").unwrap();
        let mut auth = AuthService::new();
        r.sync_to_cloud(&mut auth, Microliters::new(0.5));
        assert_eq!(auth.enrolled_count(), 2);
        // Alice's own expected signature authenticates as alice.
        let sig = r
            .password_of("alice")
            .unwrap()
            .expected_signature(r.alphabet(), Microliters::new(0.5));
        assert_eq!(
            auth.authenticate(&sig),
            medsen_cloud::AuthDecision::Accepted {
                user_id: "alice".into()
            }
        );
    }

    #[test]
    fn per_pipette_scope_gives_unlinkable_identifiers() {
        let mut r = registry();
        r.enroll("alice").unwrap();
        let provision = r
            .provision_scoped("alice", 3, IdentifierScope::PerPipette)
            .unwrap();
        assert_eq!(provision.identifiers.len(), 3);
        assert_eq!(provision.pipettes_per_identifier, 1);
        // All three identifiers distinct, none equal to alice's own password.
        let own = r.password_of("alice").unwrap();
        for (i, (alias, pw)) in provision.identifiers.iter().enumerate() {
            assert!(alias.starts_with("pipette-"));
            assert_ne!(pw, own);
            for (_, other) in &provision.identifiers[i + 1..] {
                assert_ne!(pw, other);
            }
        }
    }

    #[test]
    fn per_user_scope_reuses_the_enrolled_identifier() {
        let mut r = registry();
        r.enroll("alice").unwrap();
        let provision = r
            .provision_scoped("alice", 10, IdentifierScope::PerUser)
            .unwrap();
        assert_eq!(provision.identifiers.len(), 1);
        assert_eq!(provision.pipettes_per_identifier, 10);
        assert_eq!(&provision.identifiers[0].1, r.password_of("alice").unwrap());
    }

    #[test]
    fn scoped_allocations_consume_dictionary_capacity() {
        let mut r = registry();
        r.enroll("alice").unwrap();
        let before = r.capacity_left();
        r.provision_scoped("alice", 4, IdentifierScope::PerPipette)
            .unwrap();
        assert_eq!(r.capacity_left(), before - 4);
        // PerUser consumes nothing further.
        r.provision_scoped("alice", 4, IdentifierScope::PerUser)
            .unwrap();
        assert_eq!(r.capacity_left(), before - 4);
    }

    #[test]
    fn scoped_cloud_sync_authenticates_aliases_not_users() {
        let mut r = registry();
        r.enroll("alice").unwrap();
        let provision = r
            .provision_scoped("alice", 2, IdentifierScope::PerPipette)
            .unwrap();
        let mut auth = AuthService::new();
        r.sync_scoped_to_cloud(&provision, &mut auth, Microliters::new(0.5));
        assert_eq!(auth.enrolled_count(), 2);
        let (alias, pw) = &provision.identifiers[0];
        let sig = pw.expected_signature(r.alphabet(), Microliters::new(0.5));
        assert_eq!(
            auth.authenticate(&sig),
            medsen_cloud::AuthDecision::Accepted {
                user_id: alias.clone()
            }
        );
    }

    #[test]
    fn scoped_provisioning_validates_inputs() {
        let mut r = registry();
        assert!(r
            .provision_scoped("ghost", 2, IdentifierScope::PerBatch)
            .is_err());
        r.enroll("alice").unwrap();
        assert!(r
            .provision_scoped("alice", 0, IdentifierScope::PerBatch)
            .is_err());
    }

    #[test]
    fn assigned_passwords_use_only_alphabet_beads() {
        let mut r = registry();
        let pw = r.enroll("alice").unwrap().clone();
        for dose in pw.to_doses(r.alphabet()) {
            assert!(matches!(
                dose.kind,
                ParticleKind::Bead358 | ParticleKind::Bead78
            ));
        }
    }
}
