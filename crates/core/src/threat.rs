//! Leakage metrics for the security experiments.
//!
//! The cipher's goal is that the peak count the cloud observes carries no
//! usable information about the true particle count. These helpers quantify
//! that: across many runs with fresh keys, regress observed peaks against
//! the truth — plaintext acquisitions correlate almost perfectly, encrypted
//! ones should not.

use medsen_dsp::stats::linear_regression;

/// The correlation (R²) between observed peak counts and true particle
/// counts across runs, plus the fitted slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageEstimate {
    /// Coefficient of determination of peaks vs truth.
    pub r_squared: f64,
    /// Fitted peaks-per-particle slope.
    pub slope: f64,
    /// Number of runs analyzed.
    pub runs: usize,
}

/// Regresses `(true_count, observed_peaks)` pairs across runs.
///
/// # Panics
///
/// Panics with fewer than three runs (a two-point regression is always
/// perfect and therefore meaningless here).
pub fn estimate_leakage(pairs: &[(usize, usize)]) -> LeakageEstimate {
    assert!(pairs.len() >= 3, "need at least three runs");
    let xs: Vec<f64> = pairs.iter().map(|&(t, _)| t as f64).collect();
    let ys: Vec<f64> = pairs.iter().map(|&(_, p)| p as f64).collect();
    let fit = linear_regression(&xs, &ys);
    LeakageEstimate {
        r_squared: fit.r_squared,
        slope: fit.slope,
        runs: pairs.len(),
    }
}

/// Normalized count-guess advantage of an adversary who estimates the true
/// count as `observed / guessed_multiplicity`: returns the mean relative
/// error of the best fixed multiplicity guess in `1..=max_multiplicity`.
/// A cipher with per-period random multiplicities forces this above zero
/// even for the *best* fixed guess.
pub fn best_fixed_divisor_error(pairs: &[(usize, usize)], max_multiplicity: usize) -> f64 {
    assert!(!pairs.is_empty(), "need at least one run");
    (1..=max_multiplicity.max(1))
        .map(|m| {
            pairs
                .iter()
                .map(|&(truth, peaks)| {
                    if truth == 0 {
                        return 0.0;
                    }
                    let est = peaks as f64 / m as f64;
                    (est - truth as f64).abs() / truth as f64
                })
                .sum::<f64>()
                / pairs.len() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plaintext_like_pairs_correlate_perfectly() {
        let pairs: Vec<(usize, usize)> = (1..20).map(|n| (n, n)).collect();
        let leak = estimate_leakage(&pairs);
        assert!((leak.r_squared - 1.0).abs() < 1e-12);
        assert!((leak.slope - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_multiplicity_pairs_correlate_weakly() {
        // Truth ~ constant but peaks scattered by the key: R² collapses.
        let pairs: Vec<(usize, usize)> = vec![
            (10, 30),
            (11, 110),
            (10, 170),
            (12, 24),
            (11, 90),
            (10, 60),
            (12, 200),
            (11, 40),
        ];
        let leak = estimate_leakage(&pairs);
        assert!(leak.r_squared < 0.3, "r² = {}", leak.r_squared);
    }

    #[test]
    fn fixed_divisor_recovers_constant_multiplicity() {
        let pairs: Vec<(usize, usize)> = (1..20).map(|n| (n, 3 * n)).collect();
        let err = best_fixed_divisor_error(&pairs, 17);
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn fixed_divisor_fails_on_varying_multiplicity() {
        let pairs: Vec<(usize, usize)> = vec![(10, 10), (10, 170), (10, 50), (10, 90), (10, 130)];
        let err = best_fixed_divisor_error(&pairs, 17);
        assert!(err > 0.3, "err = {err}");
    }

    #[test]
    #[should_panic(expected = "at least three runs")]
    fn leakage_needs_enough_runs() {
        let _ = estimate_leakage(&[(1, 1), (2, 2)]);
    }
}
