/root/repo/target/release/examples/clinic_fleet-cce6d83b79e34d24.d: examples/clinic_fleet.rs

/root/repo/target/release/examples/clinic_fleet-cce6d83b79e34d24: examples/clinic_fleet.rs

examples/clinic_fleet.rs:
