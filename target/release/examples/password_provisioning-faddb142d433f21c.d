/root/repo/target/release/examples/password_provisioning-faddb142d433f21c.d: examples/password_provisioning.rs

/root/repo/target/release/examples/password_provisioning-faddb142d433f21c: examples/password_provisioning.rs

examples/password_provisioning.rs:
