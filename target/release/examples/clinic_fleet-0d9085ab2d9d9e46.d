/root/repo/target/release/examples/clinic_fleet-0d9085ab2d9d9e46.d: examples/clinic_fleet.rs

/root/repo/target/release/examples/clinic_fleet-0d9085ab2d9d9e46: examples/clinic_fleet.rs

examples/clinic_fleet.rs:
