/root/repo/target/release/examples/clinic_fleet-e07eef56f3ce55aa.d: examples/clinic_fleet.rs

/root/repo/target/release/examples/clinic_fleet-e07eef56f3ce55aa: examples/clinic_fleet.rs

examples/clinic_fleet.rs:
