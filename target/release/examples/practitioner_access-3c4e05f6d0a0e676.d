/root/repo/target/release/examples/practitioner_access-3c4e05f6d0a0e676.d: examples/practitioner_access.rs

/root/repo/target/release/examples/practitioner_access-3c4e05f6d0a0e676: examples/practitioner_access.rs

examples/practitioner_access.rs:
