/root/repo/target/release/examples/hiv_monitoring-3c60be83f9acfd2b.d: examples/hiv_monitoring.rs

/root/repo/target/release/examples/hiv_monitoring-3c60be83f9acfd2b: examples/hiv_monitoring.rs

examples/hiv_monitoring.rs:
