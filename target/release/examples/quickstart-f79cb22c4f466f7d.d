/root/repo/target/release/examples/quickstart-f79cb22c4f466f7d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f79cb22c4f466f7d: examples/quickstart.rs

examples/quickstart.rs:
