/root/repo/target/release/examples/quickstart-d682e218f703fc5e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d682e218f703fc5e: examples/quickstart.rs

examples/quickstart.rs:
