/root/repo/target/release/examples/adversary_audit-fb75826420806693.d: examples/adversary_audit.rs

/root/repo/target/release/examples/adversary_audit-fb75826420806693: examples/adversary_audit.rs

examples/adversary_audit.rs:
