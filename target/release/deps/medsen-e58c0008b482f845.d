/root/repo/target/release/deps/medsen-e58c0008b482f845.d: src/lib.rs

/root/repo/target/release/deps/libmedsen-e58c0008b482f845.rlib: src/lib.rs

/root/repo/target/release/deps/libmedsen-e58c0008b482f845.rmeta: src/lib.rs

src/lib.rs:
