/root/repo/target/release/deps/stress_3h-2318c4dbff2e426e.d: crates/bench/src/bin/stress_3h.rs

/root/repo/target/release/deps/stress_3h-2318c4dbff2e426e: crates/bench/src/bin/stress_3h.rs

crates/bench/src/bin/stress_3h.rs:
