/root/repo/target/release/deps/medsen_cli-1e544da7278b8cda.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmedsen_cli-1e544da7278b8cda.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmedsen_cli-1e544da7278b8cda.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
