/root/repo/target/release/deps/fig16_clusters-8807685cfe97a5b3.d: crates/bench/src/bin/fig16_clusters.rs

/root/repo/target/release/deps/fig16_clusters-8807685cfe97a5b3: crates/bench/src/bin/fig16_clusters.rs

crates/bench/src/bin/fig16_clusters.rs:
