/root/repo/target/release/deps/failure_injection-456185efb3ed4352.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-456185efb3ed4352: tests/failure_injection.rs

tests/failure_injection.rs:
