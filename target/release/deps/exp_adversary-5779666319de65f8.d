/root/repo/target/release/deps/exp_adversary-5779666319de65f8.d: crates/bench/src/bin/exp_adversary.rs

/root/repo/target/release/deps/exp_adversary-5779666319de65f8: crates/bench/src/bin/exp_adversary.rs

crates/bench/src/bin/exp_adversary.rs:
