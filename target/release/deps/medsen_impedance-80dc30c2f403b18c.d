/root/repo/target/release/deps/medsen_impedance-80dc30c2f403b18c.d: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

/root/repo/target/release/deps/libmedsen_impedance-80dc30c2f403b18c.rlib: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

/root/repo/target/release/deps/libmedsen_impedance-80dc30c2f403b18c.rmeta: crates/impedance/src/lib.rs crates/impedance/src/circuit.rs crates/impedance/src/excitation.rs crates/impedance/src/lockin.rs crates/impedance/src/noise.rs crates/impedance/src/pulse.rs crates/impedance/src/synth.rs crates/impedance/src/trace.rs

crates/impedance/src/lib.rs:
crates/impedance/src/circuit.rs:
crates/impedance/src/excitation.rs:
crates/impedance/src/lockin.rs:
crates/impedance/src/noise.rs:
crates/impedance/src/pulse.rs:
crates/impedance/src/synth.rs:
crates/impedance/src/trace.rs:
