/root/repo/target/release/deps/medsen-66963246a41c7d37.d: src/lib.rs

/root/repo/target/release/deps/medsen-66963246a41c7d37: src/lib.rs

src/lib.rs:
