/root/repo/target/release/deps/medsen_sensor-745824e1d8d15c2b.d: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

/root/repo/target/release/deps/libmedsen_sensor-745824e1d8d15c2b.rlib: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

/root/repo/target/release/deps/libmedsen_sensor-745824e1d8d15c2b.rmeta: crates/sensor/src/lib.rs crates/sensor/src/acquisition.rs crates/sensor/src/array.rs crates/sensor/src/controller.rs crates/sensor/src/decrypt.rs crates/sensor/src/keying.rs crates/sensor/src/mux.rs crates/sensor/src/tcb.rs

crates/sensor/src/lib.rs:
crates/sensor/src/acquisition.rs:
crates/sensor/src/array.rs:
crates/sensor/src/controller.rs:
crates/sensor/src/decrypt.rs:
crates/sensor/src/keying.rs:
crates/sensor/src/mux.rs:
crates/sensor/src/tcb.rs:
