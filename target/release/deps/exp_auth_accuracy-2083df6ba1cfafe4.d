/root/repo/target/release/deps/exp_auth_accuracy-2083df6ba1cfafe4.d: crates/bench/src/bin/exp_auth_accuracy.rs

/root/repo/target/release/deps/exp_auth_accuracy-2083df6ba1cfafe4: crates/bench/src/bin/exp_auth_accuracy.rs

crates/bench/src/bin/exp_auth_accuracy.rs:
