/root/repo/target/release/deps/medsen_microfluidics-403a6575face4124.d: crates/microfluidics/src/lib.rs crates/microfluidics/src/geometry.rs crates/microfluidics/src/losses.rs crates/microfluidics/src/mixing.rs crates/microfluidics/src/particle.rs crates/microfluidics/src/pump.rs crates/microfluidics/src/sample.rs crates/microfluidics/src/stochastic.rs crates/microfluidics/src/transport.rs

/root/repo/target/release/deps/libmedsen_microfluidics-403a6575face4124.rlib: crates/microfluidics/src/lib.rs crates/microfluidics/src/geometry.rs crates/microfluidics/src/losses.rs crates/microfluidics/src/mixing.rs crates/microfluidics/src/particle.rs crates/microfluidics/src/pump.rs crates/microfluidics/src/sample.rs crates/microfluidics/src/stochastic.rs crates/microfluidics/src/transport.rs

/root/repo/target/release/deps/libmedsen_microfluidics-403a6575face4124.rmeta: crates/microfluidics/src/lib.rs crates/microfluidics/src/geometry.rs crates/microfluidics/src/losses.rs crates/microfluidics/src/mixing.rs crates/microfluidics/src/particle.rs crates/microfluidics/src/pump.rs crates/microfluidics/src/sample.rs crates/microfluidics/src/stochastic.rs crates/microfluidics/src/transport.rs

crates/microfluidics/src/lib.rs:
crates/microfluidics/src/geometry.rs:
crates/microfluidics/src/losses.rs:
crates/microfluidics/src/mixing.rs:
crates/microfluidics/src/particle.rs:
crates/microfluidics/src/pump.rs:
crates/microfluidics/src/sample.rs:
crates/microfluidics/src/stochastic.rs:
crates/microfluidics/src/transport.rs:
