/root/repo/target/release/deps/figures_smoke-32b9990d429c5dfa.d: tests/figures_smoke.rs

/root/repo/target/release/deps/figures_smoke-32b9990d429c5dfa: tests/figures_smoke.rs

tests/figures_smoke.rs:
