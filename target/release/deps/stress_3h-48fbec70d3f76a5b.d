/root/repo/target/release/deps/stress_3h-48fbec70d3f76a5b.d: crates/bench/src/bin/stress_3h.rs

/root/repo/target/release/deps/stress_3h-48fbec70d3f76a5b: crates/bench/src/bin/stress_3h.rs

crates/bench/src/bin/stress_3h.rs:
