/root/repo/target/release/deps/medsen_gateway-e5c384e863595269.d: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/release/deps/libmedsen_gateway-e5c384e863595269.rlib: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/release/deps/libmedsen_gateway-e5c384e863595269.rmeta: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

crates/gateway/src/lib.rs:
crates/gateway/src/gateway.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/session.rs:
crates/gateway/src/wire.rs:
