/root/repo/target/release/deps/fig15_frequency_response-8aae1f902f0bb5fe.d: crates/bench/src/bin/fig15_frequency_response.rs

/root/repo/target/release/deps/fig15_frequency_response-8aae1f902f0bb5fe: crates/bench/src/bin/fig15_frequency_response.rs

crates/bench/src/bin/fig15_frequency_response.rs:
