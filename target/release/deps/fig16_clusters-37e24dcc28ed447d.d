/root/repo/target/release/deps/fig16_clusters-37e24dcc28ed447d.d: crates/bench/src/bin/fig16_clusters.rs

/root/repo/target/release/deps/fig16_clusters-37e24dcc28ed447d: crates/bench/src/bin/fig16_clusters.rs

crates/bench/src/bin/fig16_clusters.rs:
