/root/repo/target/release/deps/gateway_fleet-bcb0a2e8c7c73bd4.d: tests/gateway_fleet.rs

/root/repo/target/release/deps/gateway_fleet-bcb0a2e8c7c73bd4: tests/gateway_fleet.rs

tests/gateway_fleet.rs:
