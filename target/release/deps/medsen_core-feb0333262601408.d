/root/repo/target/release/deps/medsen_core-feb0333262601408.d: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs

/root/repo/target/release/deps/libmedsen_core-feb0333262601408.rlib: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs

/root/repo/target/release/deps/libmedsen_core-feb0333262601408.rmeta: crates/core/src/lib.rs crates/core/src/diagnostics.rs crates/core/src/enrollment.rs crates/core/src/password.rs crates/core/src/pipeline.rs crates/core/src/sharing.rs crates/core/src/threat.rs

crates/core/src/lib.rs:
crates/core/src/diagnostics.rs:
crates/core/src/enrollment.rs:
crates/core/src/password.rs:
crates/core/src/pipeline.rs:
crates/core/src/sharing.rs:
crates/core/src/threat.rs:
