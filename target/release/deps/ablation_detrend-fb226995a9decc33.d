/root/repo/target/release/deps/ablation_detrend-fb226995a9decc33.d: crates/bench/src/bin/ablation_detrend.rs

/root/repo/target/release/deps/ablation_detrend-fb226995a9decc33: crates/bench/src/bin/ablation_detrend.rs

crates/bench/src/bin/ablation_detrend.rs:
