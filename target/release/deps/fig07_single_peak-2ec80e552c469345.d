/root/repo/target/release/deps/fig07_single_peak-2ec80e552c469345.d: crates/bench/src/bin/fig07_single_peak.rs

/root/repo/target/release/deps/fig07_single_peak-2ec80e552c469345: crates/bench/src/bin/fig07_single_peak.rs

crates/bench/src/bin/fig07_single_peak.rs:
