/root/repo/target/release/deps/gateway_throughput-dba658cbb842265c.d: crates/bench/benches/gateway_throughput.rs

/root/repo/target/release/deps/gateway_throughput-dba658cbb842265c: crates/bench/benches/gateway_throughput.rs

crates/bench/benches/gateway_throughput.rs:
