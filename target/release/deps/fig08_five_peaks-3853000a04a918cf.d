/root/repo/target/release/deps/fig08_five_peaks-3853000a04a918cf.d: crates/bench/src/bin/fig08_five_peaks.rs

/root/repo/target/release/deps/fig08_five_peaks-3853000a04a918cf: crates/bench/src/bin/fig08_five_peaks.rs

crates/bench/src/bin/fig08_five_peaks.rs:
