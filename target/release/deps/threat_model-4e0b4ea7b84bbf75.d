/root/repo/target/release/deps/threat_model-4e0b4ea7b84bbf75.d: tests/threat_model.rs

/root/repo/target/release/deps/threat_model-4e0b4ea7b84bbf75: tests/threat_model.rs

tests/threat_model.rs:
