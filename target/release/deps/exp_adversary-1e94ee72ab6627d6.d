/root/repo/target/release/deps/exp_adversary-1e94ee72ab6627d6.d: crates/bench/src/bin/exp_adversary.rs

/root/repo/target/release/deps/exp_adversary-1e94ee72ab6627d6: crates/bench/src/bin/exp_adversary.rs

crates/bench/src/bin/exp_adversary.rs:
