/root/repo/target/release/deps/properties-23bd63143d12f16e.d: tests/properties.rs

/root/repo/target/release/deps/properties-23bd63143d12f16e: tests/properties.rs

tests/properties.rs:
