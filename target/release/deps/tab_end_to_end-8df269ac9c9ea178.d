/root/repo/target/release/deps/tab_end_to_end-8df269ac9c9ea178.d: crates/bench/src/bin/tab_end_to_end.rs

/root/repo/target/release/deps/tab_end_to_end-8df269ac9c9ea178: crates/bench/src/bin/tab_end_to_end.rs

crates/bench/src/bin/tab_end_to_end.rs:
