/root/repo/target/release/deps/medsen-03277e99368be7c9.d: src/lib.rs

/root/repo/target/release/deps/libmedsen-03277e99368be7c9.rlib: src/lib.rs

/root/repo/target/release/deps/libmedsen-03277e99368be7c9.rmeta: src/lib.rs

src/lib.rs:
