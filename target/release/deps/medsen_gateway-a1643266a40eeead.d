/root/repo/target/release/deps/medsen_gateway-a1643266a40eeead.d: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/release/deps/libmedsen_gateway-a1643266a40eeead.rlib: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

/root/repo/target/release/deps/libmedsen_gateway-a1643266a40eeead.rmeta: crates/gateway/src/lib.rs crates/gateway/src/gateway.rs crates/gateway/src/metrics.rs crates/gateway/src/session.rs crates/gateway/src/wire.rs

crates/gateway/src/lib.rs:
crates/gateway/src/gateway.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/session.rs:
crates/gateway/src/wire.rs:
