/root/repo/target/release/deps/idle_sessions-ed74d1fe7b620e71.d: crates/bench/benches/idle_sessions.rs

/root/repo/target/release/deps/idle_sessions-ed74d1fe7b620e71: crates/bench/benches/idle_sessions.rs

crates/bench/benches/idle_sessions.rs:
