/root/repo/target/release/deps/fig12_bead_counts_78-b60aac404111b54f.d: crates/bench/src/bin/fig12_bead_counts_78.rs

/root/repo/target/release/deps/fig12_bead_counts_78-b60aac404111b54f: crates/bench/src/bin/fig12_bead_counts_78.rs

crates/bench/src/bin/fig12_bead_counts_78.rs:
