/root/repo/target/release/deps/fig11_electrode_subsets-81fe710df20ed4c8.d: crates/bench/src/bin/fig11_electrode_subsets.rs

/root/repo/target/release/deps/fig11_electrode_subsets-81fe710df20ed4c8: crates/bench/src/bin/fig11_electrode_subsets.rs

crates/bench/src/bin/fig11_electrode_subsets.rs:
