/root/repo/target/release/deps/fig15_frequency_response-4827be6f0e68883e.d: crates/bench/src/bin/fig15_frequency_response.rs

/root/repo/target/release/deps/fig15_frequency_response-4827be6f0e68883e: crates/bench/src/bin/fig15_frequency_response.rs

crates/bench/src/bin/fig15_frequency_response.rs:
