/root/repo/target/release/deps/fig13_bead_counts_358-573500c5970bd380.d: crates/bench/src/bin/fig13_bead_counts_358.rs

/root/repo/target/release/deps/fig13_bead_counts_358-573500c5970bd380: crates/bench/src/bin/fig13_bead_counts_358.rs

crates/bench/src/bin/fig13_bead_counts_358.rs:
