/root/repo/target/release/deps/tab_key_length-e83dcc9592b8f65b.d: crates/bench/src/bin/tab_key_length.rs

/root/repo/target/release/deps/tab_key_length-e83dcc9592b8f65b: crates/bench/src/bin/tab_key_length.rs

crates/bench/src/bin/tab_key_length.rs:
