/root/repo/target/release/deps/fig07_single_peak-dcaa56a10688147c.d: crates/bench/src/bin/fig07_single_peak.rs

/root/repo/target/release/deps/fig07_single_peak-dcaa56a10688147c: crates/bench/src/bin/fig07_single_peak.rs

crates/bench/src/bin/fig07_single_peak.rs:
