/root/repo/target/release/deps/medsen_dsp-cc5eb909d0d0dc36.d: crates/dsp/src/lib.rs crates/dsp/src/classify.rs crates/dsp/src/detrend.rs crates/dsp/src/features.rs crates/dsp/src/filter.rs crates/dsp/src/peaks.rs crates/dsp/src/polyfit.rs crates/dsp/src/stats.rs crates/dsp/src/streaming.rs

/root/repo/target/release/deps/libmedsen_dsp-cc5eb909d0d0dc36.rlib: crates/dsp/src/lib.rs crates/dsp/src/classify.rs crates/dsp/src/detrend.rs crates/dsp/src/features.rs crates/dsp/src/filter.rs crates/dsp/src/peaks.rs crates/dsp/src/polyfit.rs crates/dsp/src/stats.rs crates/dsp/src/streaming.rs

/root/repo/target/release/deps/libmedsen_dsp-cc5eb909d0d0dc36.rmeta: crates/dsp/src/lib.rs crates/dsp/src/classify.rs crates/dsp/src/detrend.rs crates/dsp/src/features.rs crates/dsp/src/filter.rs crates/dsp/src/peaks.rs crates/dsp/src/polyfit.rs crates/dsp/src/stats.rs crates/dsp/src/streaming.rs

crates/dsp/src/lib.rs:
crates/dsp/src/classify.rs:
crates/dsp/src/detrend.rs:
crates/dsp/src/features.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/peaks.rs:
crates/dsp/src/polyfit.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/streaming.rs:
