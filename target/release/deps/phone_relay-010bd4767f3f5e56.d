/root/repo/target/release/deps/phone_relay-010bd4767f3f5e56.d: tests/phone_relay.rs

/root/repo/target/release/deps/phone_relay-010bd4767f3f5e56: tests/phone_relay.rs

tests/phone_relay.rs:
