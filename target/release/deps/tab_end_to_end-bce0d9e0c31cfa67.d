/root/repo/target/release/deps/tab_end_to_end-bce0d9e0c31cfa67.d: crates/bench/src/bin/tab_end_to_end.rs

/root/repo/target/release/deps/tab_end_to_end-bce0d9e0c31cfa67: crates/bench/src/bin/tab_end_to_end.rs

crates/bench/src/bin/tab_end_to_end.rs:
