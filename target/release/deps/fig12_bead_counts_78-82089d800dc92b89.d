/root/repo/target/release/deps/fig12_bead_counts_78-82089d800dc92b89.d: crates/bench/src/bin/fig12_bead_counts_78.rs

/root/repo/target/release/deps/fig12_bead_counts_78-82089d800dc92b89: crates/bench/src/bin/fig12_bead_counts_78.rs

crates/bench/src/bin/fig12_bead_counts_78.rs:
