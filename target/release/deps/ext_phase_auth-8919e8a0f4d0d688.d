/root/repo/target/release/deps/ext_phase_auth-8919e8a0f4d0d688.d: crates/bench/src/bin/ext_phase_auth.rs

/root/repo/target/release/deps/ext_phase_auth-8919e8a0f4d0d688: crates/bench/src/bin/ext_phase_auth.rs

crates/bench/src/bin/ext_phase_auth.rs:
