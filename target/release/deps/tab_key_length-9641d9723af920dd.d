/root/repo/target/release/deps/tab_key_length-9641d9723af920dd.d: crates/bench/src/bin/tab_key_length.rs

/root/repo/target/release/deps/tab_key_length-9641d9723af920dd: crates/bench/src/bin/tab_key_length.rs

crates/bench/src/bin/tab_key_length.rs:
