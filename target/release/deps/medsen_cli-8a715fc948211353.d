/root/repo/target/release/deps/medsen_cli-8a715fc948211353.d: crates/cli/src/main.rs

/root/repo/target/release/deps/medsen_cli-8a715fc948211353: crates/cli/src/main.rs

crates/cli/src/main.rs:
