/root/repo/target/release/deps/medsen-3a2ca982089bc44f.d: src/lib.rs

/root/repo/target/release/deps/libmedsen-3a2ca982089bc44f.rlib: src/lib.rs

/root/repo/target/release/deps/libmedsen-3a2ca982089bc44f.rmeta: src/lib.rs

src/lib.rs:
