/root/repo/target/release/deps/fig14_perf-706f1885c23c6825.d: crates/bench/src/bin/fig14_perf.rs

/root/repo/target/release/deps/fig14_perf-706f1885c23c6825: crates/bench/src/bin/fig14_perf.rs

crates/bench/src/bin/fig14_perf.rs:
