/root/repo/target/release/deps/medsen_runtime-a9fa539abce87409.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs

/root/repo/target/release/deps/libmedsen_runtime-a9fa539abce87409.rlib: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs

/root/repo/target/release/deps/libmedsen_runtime-a9fa539abce87409.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/executor.rs crates/runtime/src/task.rs crates/runtime/src/timer.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/task.rs:
crates/runtime/src/timer.rs:
