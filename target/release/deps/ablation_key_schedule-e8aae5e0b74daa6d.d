/root/repo/target/release/deps/ablation_key_schedule-e8aae5e0b74daa6d.d: crates/bench/src/bin/ablation_key_schedule.rs

/root/repo/target/release/deps/ablation_key_schedule-e8aae5e0b74daa6d: crates/bench/src/bin/ablation_key_schedule.rs

crates/bench/src/bin/ablation_key_schedule.rs:
