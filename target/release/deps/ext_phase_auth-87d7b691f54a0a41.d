/root/repo/target/release/deps/ext_phase_auth-87d7b691f54a0a41.d: crates/bench/src/bin/ext_phase_auth.rs

/root/repo/target/release/deps/ext_phase_auth-87d7b691f54a0a41: crates/bench/src/bin/ext_phase_auth.rs

crates/bench/src/bin/ext_phase_auth.rs:
