/root/repo/target/release/deps/fig11_electrode_subsets-353374d498232b4d.d: crates/bench/src/bin/fig11_electrode_subsets.rs

/root/repo/target/release/deps/fig11_electrode_subsets-353374d498232b4d: crates/bench/src/bin/fig11_electrode_subsets.rs

crates/bench/src/bin/fig11_electrode_subsets.rs:
