/root/repo/target/release/deps/ablation_gain_bits-8ce285dc4d096f36.d: crates/bench/src/bin/ablation_gain_bits.rs

/root/repo/target/release/deps/ablation_gain_bits-8ce285dc4d096f36: crates/bench/src/bin/ablation_gain_bits.rs

crates/bench/src/bin/ablation_gain_bits.rs:
