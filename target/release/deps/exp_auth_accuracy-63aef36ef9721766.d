/root/repo/target/release/deps/exp_auth_accuracy-63aef36ef9721766.d: crates/bench/src/bin/exp_auth_accuracy.rs

/root/repo/target/release/deps/exp_auth_accuracy-63aef36ef9721766: crates/bench/src/bin/exp_auth_accuracy.rs

crates/bench/src/bin/exp_auth_accuracy.rs:
