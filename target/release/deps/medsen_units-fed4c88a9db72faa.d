/root/repo/target/release/deps/medsen_units-fed4c88a9db72faa.d: crates/units/src/lib.rs crates/units/src/quantity.rs

/root/repo/target/release/deps/libmedsen_units-fed4c88a9db72faa.rlib: crates/units/src/lib.rs crates/units/src/quantity.rs

/root/repo/target/release/deps/libmedsen_units-fed4c88a9db72faa.rmeta: crates/units/src/lib.rs crates/units/src/quantity.rs

crates/units/src/lib.rs:
crates/units/src/quantity.rs:
