/root/repo/target/release/deps/medsen-924b62a9c4c44b25.d: src/lib.rs

/root/repo/target/release/deps/medsen-924b62a9c4c44b25: src/lib.rs

src/lib.rs:
