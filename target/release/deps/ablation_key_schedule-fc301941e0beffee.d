/root/repo/target/release/deps/ablation_key_schedule-fc301941e0beffee.d: crates/bench/src/bin/ablation_key_schedule.rs

/root/repo/target/release/deps/ablation_key_schedule-fc301941e0beffee: crates/bench/src/bin/ablation_key_schedule.rs

crates/bench/src/bin/ablation_key_schedule.rs:
