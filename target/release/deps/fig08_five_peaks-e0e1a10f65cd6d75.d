/root/repo/target/release/deps/fig08_five_peaks-e0e1a10f65cd6d75.d: crates/bench/src/bin/fig08_five_peaks.rs

/root/repo/target/release/deps/fig08_five_peaks-e0e1a10f65cd6d75: crates/bench/src/bin/fig08_five_peaks.rs

crates/bench/src/bin/fig08_five_peaks.rs:
