/root/repo/target/release/deps/ablation_gain_bits-eb425d561ca964ce.d: crates/bench/src/bin/ablation_gain_bits.rs

/root/repo/target/release/deps/ablation_gain_bits-eb425d561ca964ce: crates/bench/src/bin/ablation_gain_bits.rs

crates/bench/src/bin/ablation_gain_bits.rs:
