/root/repo/target/release/deps/medsen_cloud-439ce47fcaabf7f6.d: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

/root/repo/target/release/deps/libmedsen_cloud-439ce47fcaabf7f6.rlib: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

/root/repo/target/release/deps/libmedsen_cloud-439ce47fcaabf7f6.rmeta: crates/cloud/src/lib.rs crates/cloud/src/adversary.rs crates/cloud/src/api.rs crates/cloud/src/auth.rs crates/cloud/src/server.rs crates/cloud/src/service.rs crates/cloud/src/storage.rs

crates/cloud/src/lib.rs:
crates/cloud/src/adversary.rs:
crates/cloud/src/api.rs:
crates/cloud/src/auth.rs:
crates/cloud/src/server.rs:
crates/cloud/src/service.rs:
crates/cloud/src/storage.rs:
