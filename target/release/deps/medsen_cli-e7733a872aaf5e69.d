/root/repo/target/release/deps/medsen_cli-e7733a872aaf5e69.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmedsen_cli-e7733a872aaf5e69.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libmedsen_cli-e7733a872aaf5e69.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
