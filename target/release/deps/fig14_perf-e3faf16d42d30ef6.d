/root/repo/target/release/deps/fig14_perf-e3faf16d42d30ef6.d: crates/bench/src/bin/fig14_perf.rs

/root/repo/target/release/deps/fig14_perf-e3faf16d42d30ef6: crates/bench/src/bin/fig14_perf.rs

crates/bench/src/bin/fig14_perf.rs:
