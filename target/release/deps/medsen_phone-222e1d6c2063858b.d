/root/repo/target/release/deps/medsen_phone-222e1d6c2063858b.d: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

/root/repo/target/release/deps/libmedsen_phone-222e1d6c2063858b.rlib: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

/root/repo/target/release/deps/libmedsen_phone-222e1d6c2063858b.rmeta: crates/phone/src/lib.rs crates/phone/src/app.rs crates/phone/src/compress.rs crates/phone/src/csv.rs crates/phone/src/frame.rs crates/phone/src/json.rs crates/phone/src/network.rs crates/phone/src/profile.rs

crates/phone/src/lib.rs:
crates/phone/src/app.rs:
crates/phone/src/compress.rs:
crates/phone/src/csv.rs:
crates/phone/src/frame.rs:
crates/phone/src/json.rs:
crates/phone/src/network.rs:
crates/phone/src/profile.rs:
