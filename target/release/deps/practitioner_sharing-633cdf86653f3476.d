/root/repo/target/release/deps/practitioner_sharing-633cdf86653f3476.d: tests/practitioner_sharing.rs

/root/repo/target/release/deps/practitioner_sharing-633cdf86653f3476: tests/practitioner_sharing.rs

tests/practitioner_sharing.rs:
