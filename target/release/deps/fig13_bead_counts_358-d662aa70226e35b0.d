/root/repo/target/release/deps/fig13_bead_counts_358-d662aa70226e35b0.d: crates/bench/src/bin/fig13_bead_counts_358.rs

/root/repo/target/release/deps/fig13_bead_counts_358-d662aa70226e35b0: crates/bench/src/bin/fig13_bead_counts_358.rs

crates/bench/src/bin/fig13_bead_counts_358.rs:
