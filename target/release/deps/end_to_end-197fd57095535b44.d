/root/repo/target/release/deps/end_to_end-197fd57095535b44.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-197fd57095535b44: tests/end_to_end.rs

tests/end_to_end.rs:
