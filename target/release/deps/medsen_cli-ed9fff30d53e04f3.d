/root/repo/target/release/deps/medsen_cli-ed9fff30d53e04f3.d: crates/cli/src/main.rs

/root/repo/target/release/deps/medsen_cli-ed9fff30d53e04f3: crates/cli/src/main.rs

crates/cli/src/main.rs:
