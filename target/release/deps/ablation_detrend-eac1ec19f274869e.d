/root/repo/target/release/deps/ablation_detrend-eac1ec19f274869e.d: crates/bench/src/bin/ablation_detrend.rs

/root/repo/target/release/deps/ablation_detrend-eac1ec19f274869e: crates/bench/src/bin/ablation_detrend.rs

crates/bench/src/bin/ablation_detrend.rs:
