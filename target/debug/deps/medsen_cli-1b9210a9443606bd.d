/root/repo/target/debug/deps/medsen_cli-1b9210a9443606bd.d: crates/cli/src/lib.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/medsen_cli-1b9210a9443606bd: crates/cli/src/lib.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
