/root/repo/target/debug/deps/fig08_five_peaks-bb13ee9d5f0640be.d: crates/bench/src/bin/fig08_five_peaks.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_five_peaks-bb13ee9d5f0640be.rmeta: crates/bench/src/bin/fig08_five_peaks.rs Cargo.toml

crates/bench/src/bin/fig08_five_peaks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
