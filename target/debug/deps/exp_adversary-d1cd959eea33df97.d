/root/repo/target/debug/deps/exp_adversary-d1cd959eea33df97.d: crates/bench/src/bin/exp_adversary.rs

/root/repo/target/debug/deps/exp_adversary-d1cd959eea33df97: crates/bench/src/bin/exp_adversary.rs

crates/bench/src/bin/exp_adversary.rs:
