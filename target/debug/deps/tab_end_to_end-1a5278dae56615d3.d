/root/repo/target/debug/deps/tab_end_to_end-1a5278dae56615d3.d: crates/bench/src/bin/tab_end_to_end.rs

/root/repo/target/debug/deps/tab_end_to_end-1a5278dae56615d3: crates/bench/src/bin/tab_end_to_end.rs

crates/bench/src/bin/tab_end_to_end.rs:
