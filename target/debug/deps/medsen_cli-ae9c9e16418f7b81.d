/root/repo/target/debug/deps/medsen_cli-ae9c9e16418f7b81.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/medsen_cli-ae9c9e16418f7b81: crates/cli/src/main.rs

crates/cli/src/main.rs:
